//! Critical-edge analysis for infrastructure networks.
//!
//! In electric power networks (the paper cites cascading-failure and grid-
//! stability analyses [26, 59-61]) the effective resistance of an edge
//! measures how much of the connection between its endpoints flows *through
//! that edge*: r(e) close to 1 means the edge is nearly a bridge — removing it
//! severely degrades (or disconnects) the network — while r(e) near 0 means
//! plenty of parallel paths exist.
//!
//! This example builds a power-grid-like topology (a sparse mesh with a few
//! long-distance ties), scores every line through the `ResistanceService`
//! front door — once letting the planner pick and once forcing the HAY
//! spanning-tree backend, which answers the whole edge set from one pool of
//! trees — flags the most critical lines, and verifies the top-ranked edge
//! really is the most damaging single failure by measuring how much the
//! resistance across the cut grows after removing it.
//!
//! Run with `cargo run --release --example network_robustness`.

use effective_resistance::graph::{analysis, generators, Graph, GraphBuilder};
use effective_resistance::linalg::LaplacianSolver;
use effective_resistance::{Accuracy, BackendChoice, Query, Request, ResistanceService};

/// A synthetic transmission-grid topology: a 2D mesh (local distribution) plus
/// a handful of long "tie lines", with one corridor intentionally left thin so
/// the analysis has something to find.
fn build_grid() -> Graph {
    let rows = 14;
    let cols = 14;
    let mesh = generators::grid(rows, cols).expect("grid");
    let mut b = GraphBuilder::from_edges(mesh.num_nodes(), mesh.edges());
    // Diagonal reinforcements make the graph non-bipartite and better meshed.
    for r in 0..rows - 1 {
        for c in 0..cols - 1 {
            if (r + c) % 3 == 0 {
                b = b.add_edge(r * cols + c, (r + 1) * cols + c + 1);
            }
        }
    }
    // A second region connected through exactly two tie lines (the weak corridor).
    let offset = rows * cols;
    let region2 = generators::grid(6, 6).expect("grid");
    for (u, v) in region2.edges() {
        b = b.add_edge(offset + u, offset + v);
    }
    b = b.add_edge(offset, cols - 1); // tie line 1
    b = b.add_edge(offset + 7, 2 * cols - 1); // tie line 2
    b = b.add_edge(offset + 1, offset + 6 + 1); // make region 2 non-bipartite too
    b.build().expect("valid grid")
}

fn main() {
    let graph = build_grid();
    println!(
        "grid: {} buses, {} lines, connected: {}",
        graph.num_nodes(),
        graph.num_edges(),
        analysis::is_connected(&graph)
    );
    let service = ResistanceService::new(&graph).expect("ergodic graph");
    let epsilon = 0.05;
    let accuracy = Accuracy::epsilon(epsilon);

    // Score every line by effective resistance with two independent methods:
    // the planner's pick for this (small) grid, and the HAY spanning-tree
    // backend forced via the override knob. Both answer the edge list as ONE
    // edge-set query.
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    let planned = service
        .submit(&Request::new(Query::edge_set(edges.clone())).with_accuracy(accuracy))
        .expect("edge-set query");
    let by_hay = service
        .submit(
            &Request::new(Query::edge_set(edges.clone()))
                .with_accuracy(accuracy)
                .with_backend(BackendChoice::Hay),
        )
        .expect("edge-set query");
    println!(
        "planner chose {} for the edge set; HAY sampled {} spanning trees",
        planned.backend, by_hay.cost.spanning_trees
    );
    let mut scored: Vec<(usize, usize, f64, f64)> = edges
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| (u, v, planned.values[i], by_hay.values[i]))
        .collect();
    scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());

    println!("\nmost critical lines (highest effective resistance):");
    println!(
        "{:>8} {:>8} {:>10} {:>10}",
        "from", "to", planned.backend, "HAY"
    );
    for &(u, v, g, h) in scored.iter().take(5) {
        println!("{u:>8} {v:>8} {g:>10.3} {h:>10.3}");
        // the two backends should agree to within their epsilons
        assert!((g - h).abs() <= 2.0 * epsilon + 0.02, "backends agree");
    }

    // Verify the ranking is meaningful: removing the top-ranked line must
    // degrade the network more than removing a median-ranked line, measured by
    // the exact resistance between its endpoints after removal.
    let (u1, v1, _, _) = scored[0];
    let (u2, v2, _, _) = scored[scored.len() / 2];
    let degradation = |skip: (usize, usize)| -> f64 {
        let reduced = GraphBuilder::from_edges(
            graph.num_nodes(),
            graph
                .edges()
                .filter(|&e| e != skip && e != (skip.1, skip.0)),
        )
        .build()
        .expect("non-empty");
        if !analysis::is_connected(&reduced) {
            return f64::INFINITY; // losing the line splits the grid
        }
        LaplacianSolver::for_ground_truth(&reduced).effective_resistance(skip.0, skip.1)
    };
    let loss_top = degradation((u1, v1));
    let loss_mid = degradation((u2, v2));
    println!(
        "\nafter removing the top line ({u1},{v1}): endpoint resistance becomes {loss_top:.3}"
    );
    println!("after removing a median line ({u2},{v2}): endpoint resistance becomes {loss_mid:.3}");
    assert!(
        loss_top > loss_mid,
        "the ER ranking should identify the more damaging failure"
    );
}
