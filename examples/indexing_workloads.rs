//! Index-backed effective-resistance workloads.
//!
//! The per-pair estimators of the paper are the right tool for ad-hoc
//! queries; recurring workloads benefit from a thin indexing layer on top.
//! This example walks through the three index structures of `er-index` on one
//! graph:
//!
//! 1. [`ErIndex`] — single-source profiles and nearest-neighbour search,
//! 2. [`LandmarkIndex`] — O(k) bounds used as a filter in front of GEER,
//! 3. [`DynamicResistanceService`] — edge insertions/deletions interleaved
//!    with queries through the service front door,
//!
//! and cross-checks everything against the GEER estimator.
//!
//! Run with `cargo run --release --example indexing_workloads`.

use effective_resistance::graph::generators;
use effective_resistance::index::{ErIndex, LandmarkIndex, LandmarkSelection};
use effective_resistance::{
    Accuracy, ApproxConfig, BackendChoice, DynamicResistanceService, Query, Request,
    ResistanceService,
};

fn main() {
    let graph =
        generators::community_social_network(800, 12.0, 4, 0.02, 9).expect("graph generation");
    println!(
        "graph: {} nodes, {} edges, average degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );
    let config = ApproxConfig::with_epsilon(0.05);

    // 1. Single-source profile: rank the whole graph against one node.
    let mut index = ErIndex::build(&graph).expect("connected, non-bipartite");
    let source = 17;
    let nearest = index.nearest(source, 5).expect("profile");
    println!("\nfive nodes closest to node {source} in effective resistance:");
    for (node, r) in &nearest {
        println!(
            "  node {node:>5}   r = {r:.4}   degree = {}",
            graph.degree(*node)
        );
    }
    println!(
        "Kirchhoff index of the graph: {:.1}",
        index.kirchhoff_index()
    );

    // 2. Landmark bounds as a cheap filter in front of GEER (forced through
    //    the service's override knob so the comparison is explicit).
    let landmarks = LandmarkIndex::build(&graph, 12, LandmarkSelection::Mixed, 3)
        .expect("landmark construction");
    let service = ResistanceService::with_config(&graph, config).expect("spectral preprocessing");
    let query_pairs = [(17usize, 500usize), (3, 780), (250, 251), (600, 610)];
    println!(
        "\nlandmark bounds vs GEER ({} landmarks):",
        landmarks.landmarks().len()
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "s", "t", "lower", "upper", "GEER", "skip?"
    );
    let mut skipped = 0;
    for &(s, t) in &query_pairs {
        let bounds = landmarks.bounds(s, t).expect("bounds");
        let estimate = service
            .submit(
                &Request::new(Query::pair(s, t))
                    .with_accuracy(Accuracy::from(config))
                    .with_backend(BackendChoice::Geer),
            )
            .expect("query")
            .value();
        let skip = bounds.width() <= 2.0 * config.epsilon;
        if skip {
            skipped += 1;
        }
        println!(
            "{s:>8} {t:>8} {:>10.4} {:>10.4} {estimate:>10.4} {:>8}",
            bounds.lower,
            bounds.upper,
            if skip { "yes" } else { "no" }
        );
        assert!(
            estimate >= bounds.lower - config.epsilon && estimate <= bounds.upper + config.epsilon,
            "GEER must land inside the landmark bounds (up to its own ε)"
        );
    }
    println!(
        "{skipped} of {} queries could skip the estimator entirely",
        query_pairs.len()
    );

    // 3. Dynamic updates: resistances react to edge insertions/removals. The
    //    dynamic service rebuilds its planner/cache once per mutation burst.
    let dynamic = DynamicResistanceService::from_graph(&graph, config);
    let (s, t) = (40usize, 700usize);
    let before = dynamic.resistance(s, t).expect("query");
    dynamic.insert_edge(s, t).expect("insert");
    let after_insert = dynamic.resistance(s, t).expect("query");
    dynamic.remove_edge(s, t).expect("remove");
    let after_remove = dynamic.resistance(s, t).expect("query");
    println!("\ndynamic graph: r({s}, {t})");
    println!("  before any change:          {before:.4}");
    println!("  after inserting the edge:   {after_insert:.4}");
    println!("  after removing it again:    {after_remove:.4}");
    assert!(
        after_insert < before,
        "Rayleigh monotonicity: adding an edge lowers resistance"
    );
    assert!((after_remove - before).abs() <= 2.0 * config.epsilon + 0.02);
    println!(
        "  snapshot rebuilds: {} (mutations are lazy; queries pay the rebuild once)",
        dynamic.rebuilds()
    );
}
