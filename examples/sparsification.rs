//! Spectral graph sparsification by effective resistance.
//!
//! Spielman & Srivastava [62] showed that sampling edges with probability
//! proportional to w_e · r(e) (their "effective-resistance scores") yields a
//! spectral sparsifier: a reweighted subgraph whose Laplacian quadratic form
//! approximates the original on every vector. The paper cites this as a
//! primary application of fast ER computation (cut/flow approximation, linear
//! system solving).
//!
//! This example estimates the ER of every edge with one `ResistanceService`
//! edge-set request (GEER forced via the override knob), samples a
//! sparsifier, and verifies the quality by comparing Laplacian quadratic
//! forms on random test vectors and by checking connectivity.
//!
//! Run with `cargo run --release --example sparsification`.

use effective_resistance::graph::{analysis, generators, Graph, GraphBuilder};
use effective_resistance::linalg::{LaplacianOp, LinearOperator};
use effective_resistance::{Accuracy, BackendChoice, Query, Request, ResistanceService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Laplacian quadratic form x^T L x (with unit edge weights scaled by `weights`).
fn quadratic_form(graph: &Graph, weights: &[f64], x: &[f64]) -> f64 {
    graph
        .edges()
        .enumerate()
        .map(|(idx, (u, v))| {
            let d = x[u] - x[v];
            weights[idx] * d * d
        })
        .sum()
}

fn main() {
    let graph = generators::social_network_like(3_000, 20.0, 11).expect("graph generation");
    let m = graph.num_edges();
    println!("original graph: {} nodes, {m} edges", graph.num_nodes());

    // 1. Estimate the ER of every edge with GEER (epsilon = 0.05 is plenty:
    //    the scores only steer a sampling distribution) — one edge-set
    //    request through the service front door.
    let service = ResistanceService::new(&graph).expect("ergodic graph");
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    let response = service
        .submit(
            &Request::new(Query::edge_set(edges.clone()))
                .with_accuracy(Accuracy::epsilon(0.05))
                .with_backend(BackendChoice::Geer),
        )
        .expect("valid edge query");
    let scores: Vec<f64> = response.values.iter().map(|&r| r.max(1e-6)).collect();
    let total_score: f64 = scores.iter().sum();
    println!(
        "sum of edge ER scores = {total_score:.1} (Foster's theorem says the exact sum is n - 1 = {})",
        graph.num_nodes() - 1
    );

    // 2. Sample q = n ln n edges proportionally to their scores, with
    //    replacement, accumulating weights 1/(q p_e) as in [62]. (The theory
    //    asks for O(n log n / eps^2) samples; a single n log n keeps the demo
    //    visibly sparser than the input while preserving the spectrum well.)
    let n = graph.num_nodes();
    let q = (n as f64 * (n as f64).ln()) as usize;
    let mut rng = StdRng::seed_from_u64(3);
    let mut weights = vec![0.0; m];
    // cumulative distribution over edges
    let mut cumulative = Vec::with_capacity(m);
    let mut acc = 0.0;
    for &s in &scores {
        acc += s / total_score;
        cumulative.push(acc);
    }
    for _ in 0..q {
        let r: f64 = rng.gen();
        let idx = cumulative.partition_point(|&c| c < r).min(m - 1);
        let p = scores[idx] / total_score;
        weights[idx] += 1.0 / (q as f64 * p);
    }
    let kept: usize = weights.iter().filter(|&&w| w > 0.0).count();
    println!(
        "sparsifier keeps {kept} of {m} edges ({:.1}%)",
        100.0 * kept as f64 / m as f64
    );

    // 3. Verify: the sparsifier stays connected and preserves Laplacian
    //    quadratic forms on random test vectors.
    let sparsified = GraphBuilder::from_edges(
        n,
        edges
            .iter()
            .zip(&weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(&e, _)| e),
    )
    .build()
    .expect("non-empty sparsifier");
    assert!(
        analysis::is_connected(&sparsified),
        "sparsifier must stay connected"
    );

    let original_weights = vec![1.0; m];
    let mut worst_ratio: f64 = 1.0;
    for trial in 0..10 {
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        // remove the component along the all-ones null space
        let mean: f64 = x.iter().sum::<f64>() / n as f64;
        x.iter_mut().for_each(|xi| *xi -= mean);
        let original = quadratic_form(&graph, &original_weights, &x);
        let sparse = quadratic_form(&graph, &weights, &x);
        let ratio = sparse / original;
        worst_ratio = worst_ratio.max((ratio - 1.0).abs() + 1.0);
        if trial < 3 {
            println!("test vector {trial}: x^T L x = {original:.2} vs sparsified {sparse:.2} (ratio {ratio:.3})");
        }
    }
    println!("worst multiplicative distortion over 10 test vectors: {worst_ratio:.3}");

    // Smoke-check against the matrix-free Laplacian operator on one vector.
    let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) / 13.0).collect();
    let lx = LaplacianOp::new(&graph).apply_vec(&x);
    let via_operator: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
    let via_edges = quadratic_form(&graph, &original_weights, &x);
    assert!((via_operator - via_edges).abs() < 1e-6);
}
