//! Community detection by effective-resistance clustering.
//!
//! The paper cites graph clustering [2, 51, 79] as an application of
//! effective resistance: nodes inside a community are joined by many short
//! parallel paths (low resistance), nodes in different communities are
//! connected only through a thin cut (high resistance). This example plants
//! three communities, recovers them with resistance k-medoids, and reports
//! the standard quality measures.
//!
//! Run with `cargo run --release --example community_clustering`.

use effective_resistance::apps::{
    adjusted_rand_index, modularity, resistance_separation, ClusteringConfig, ResistanceClustering,
};
use effective_resistance::graph::generators;

fn main() {
    // Three Barabási–Albert communities joined by a thin layer of bridges.
    let n = 360;
    let communities = 3;
    let graph = generators::community_social_network(n, 10.0, communities, 0.01, 42)
        .expect("graph generation");
    let truth: Vec<usize> = (0..n).map(|v| v * communities / n).collect();
    println!(
        "graph: {} nodes, {} edges, {} planted communities",
        graph.num_nodes(),
        graph.num_edges(),
        communities
    );

    let config = ClusteringConfig {
        num_clusters: communities,
        max_iterations: 15,
        ..ClusteringConfig::default()
    };
    let result = ResistanceClustering::new(&graph, config)
        .run()
        .expect("clustering");

    println!(
        "\nclustering finished after {} iterations (converged: {})",
        result.iterations, result.converged
    );
    println!("cluster sizes: {:?}", result.sizes());
    println!("medoids: {:?}", result.medoids);

    let ari = adjusted_rand_index(&result.assignments, &truth);
    let q_found = modularity(&graph, &result.assignments);
    let q_truth = modularity(&graph, &truth);
    println!("\nadjusted Rand index vs planted labels: {ari:.3}");
    println!("modularity of discovered partition:   {q_found:.3}");
    println!("modularity of planted partition:      {q_truth:.3}");

    let (intra, inter) =
        resistance_separation(&graph, &result.assignments, 60, 7).expect("separation sampling");
    println!("\nmean effective resistance inside clusters:  {intra:.4}");
    println!("mean effective resistance across clusters:  {inter:.4}");
    println!(
        "separation ratio (inter / intra):           {:.2}",
        inter / intra
    );

    assert!(ari > 0.6, "the planted communities should be recovered");
    assert!(inter > intra, "clusters must be separated in resistance");
}
