//! Friend / item recommendation by effective-resistance proximity.
//!
//! The paper's introduction cites recommender systems [24, 36] as a core
//! application of effective resistance: a small r(s, t) means many short,
//! edge-disjoint connections between s and t, which is a much more robust
//! proximity signal than shortest-path distance or common-neighbour counts.
//!
//! This example builds a synthetic social network, picks a user, gathers the
//! user's 2-hop candidate pool, and ranks the candidates through one
//! `ResistanceService` batch request — exactly the "handful of pairwise
//! queries per request, all sharing one source" access pattern the service's
//! planner recognises as a repeated-source workload.
//!
//! Run with `cargo run --release --example recommendation`.

use effective_resistance::graph::generators;
use effective_resistance::graph::Graph;
use effective_resistance::{Accuracy, ApproxConfig, Query, Request, ResistanceService};
use std::collections::BTreeSet;

/// Collects the 2-hop neighbourhood of `user` (excluding direct friends and
/// the user itself) — the usual candidate pool for friend recommendation.
fn two_hop_candidates(graph: &Graph, user: usize) -> Vec<usize> {
    let friends: BTreeSet<usize> = graph.neighbors(user).iter().copied().collect();
    let mut candidates = BTreeSet::new();
    for &f in &friends {
        for &ff in graph.neighbors(f) {
            if ff != user && !friends.contains(&ff) {
                candidates.insert(ff);
            }
        }
    }
    candidates.into_iter().collect()
}

fn main() {
    let graph = generators::social_network_like(8_000, 14.0, 7).expect("graph generation");
    let config = ApproxConfig::with_epsilon(0.02);
    let service = ResistanceService::with_config(&graph, config).expect("ergodic graph");

    // Recommend for a mid-degree user (hubs are trivially similar to everyone).
    let user = graph
        .nodes()
        .find(|&v| graph.degree(v) >= 8 && graph.degree(v) <= 20)
        .expect("a mid-degree user exists");
    let candidates = two_hop_candidates(&graph, user);
    println!(
        "user {user} (degree {}) has {} two-hop candidates",
        graph.degree(user),
        candidates.len()
    );

    // Rank candidates by estimated effective resistance (ascending): one
    // batch request, planned and answered as a unit.
    let pool: Vec<usize> = candidates.iter().take(200).copied().collect(); // cap the demo pool
    let pairs: Vec<(usize, usize)> = pool.iter().map(|&c| (user, c)).collect();
    let response = service
        .submit(&Request::new(Query::batch(pairs)).with_accuracy(Accuracy::from(config)))
        .expect("valid batch");
    println!(
        "scored {} candidates via {} ({} walks, {} matvec ops)",
        pool.len(),
        response.backend,
        response.cost.random_walks,
        response.cost.matvec_ops
    );
    let mut scored: Vec<(usize, f64)> = pool
        .iter()
        .zip(&response.values)
        .map(|(&c, &r)| (c, r))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("\ntop-10 recommendations (lowest effective resistance first):");
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "node", "r(user,v)", "degree", "common friends"
    );
    for &(c, r) in scored.iter().take(10) {
        let common = graph
            .neighbors(user)
            .iter()
            .filter(|&&f| graph.has_edge(f, c))
            .count();
        println!(
            "{:>8} {:>10.4} {:>10} {:>14}",
            c,
            r,
            graph.degree(c),
            common
        );
    }

    // Sanity: the top recommendation should share at least one friend, and the
    // bottom of the ranking should have higher resistance than the top.
    let (best, best_r) = scored.first().copied().unwrap();
    let (_, worst_r) = scored.last().copied().unwrap();
    assert!(worst_r >= best_r);
    let common_best = graph
        .neighbors(user)
        .iter()
        .filter(|&&f| graph.has_edge(f, best))
        .count();
    println!(
        "\nbest candidate {best}: r = {best_r:.4}, {common_best} common friends; \
         worst candidate in pool: r = {worst_r:.4}"
    );
}
