//! Quickstart: answer ε-approximate pairwise effective-resistance queries with
//! GEER and compare against the exact value.
//!
//! Run with `cargo run --release --example quickstart`.

use effective_resistance::graph::generators;
use effective_resistance::{
    Amc, ApproxConfig, Exact, Geer, GraphContext, ResistanceEstimator, Smm,
};

fn main() {
    // 1. Build (or load) an undirected, connected, non-bipartite graph.
    //    Here: a 5 000-node synthetic social network with average degree ~16.
    let graph = generators::social_network_like(5_000, 16.0, 42).expect("graph generation");
    println!(
        "graph: {} nodes, {} edges, average degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    // 2. Preprocess once per graph: validates the assumptions and estimates
    //    lambda = max{|lambda_2|, |lambda_n|} (Section 3.1 of the paper).
    let ctx = GraphContext::preprocess(&graph).expect("ergodic graph");
    println!("lambda = {:.4}", ctx.lambda());

    // 3. Answer queries. epsilon is the additive error target; each estimator
    //    answers with probability >= 1 - delta within that error.
    let config = ApproxConfig::with_epsilon(0.05);
    let mut geer = Geer::new(&ctx, config);
    let mut amc = Amc::new(&ctx, config);
    let mut smm = Smm::new(&ctx, config);
    let mut exact = Exact::new(&ctx).expect("small enough for the dense pseudo-inverse");

    println!(
        "\n{:>6} {:>6} | {:>10} {:>10} {:>10} {:>10} | {:>12} {:>12}",
        "s", "t", "EXACT", "GEER", "AMC", "SMM", "GEER walks", "GEER matvec"
    );
    for &(s, t) in &[(0usize, 1usize), (0, 2_500), (17, 4_999), (123, 124)] {
        let truth = exact.estimate(s, t).unwrap().value;
        let g = geer.estimate(s, t).unwrap();
        let a = amc.estimate(s, t).unwrap();
        let m = smm.estimate(s, t).unwrap();
        println!(
            "{:>6} {:>6} | {:>10.5} {:>10.5} {:>10.5} {:>10.5} | {:>12} {:>12}",
            s, t, truth, g.value, a.value, m.value, g.cost.random_walks, g.cost.matvec_ops
        );
        assert!(
            (g.value - truth).abs() <= config.epsilon,
            "GEER within epsilon"
        );
    }
    println!(
        "\nall GEER answers were within epsilon = {} of the exact value",
        config.epsilon
    );
}
