//! Quickstart: answer pairwise effective-resistance queries through the
//! unified `ResistanceService` front door, compare backends, and let the
//! planner pick.
//!
//! Run with `cargo run --release --example quickstart`.

use effective_resistance::graph::generators;
use effective_resistance::{Accuracy, BackendChoice, Query, Request, ResistanceService};

fn main() {
    // 1. Build (or load) an undirected, connected, non-bipartite graph.
    //    Here: a 5 000-node synthetic social network with average degree ~16.
    let graph = generators::social_network_like(5_000, 16.0, 42).expect("graph generation");
    println!(
        "graph: {} nodes, {} edges, average degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    // 2. Build the service once per graph: it validates the assumptions,
    //    estimates lambda = max{|lambda_2|, |lambda_n|} (Section 3.1 of the
    //    paper) and lazily constructs backends as queries need them.
    let service = ResistanceService::new(&graph).expect("ergodic graph");
    println!("lambda = {:.4}", service.context().lambda());

    // 3. Submit typed queries. The accuracy target is part of the request;
    //    the planner routes each query to the cheapest capable backend and
    //    the response reports which one answered.
    let accuracy = Accuracy::epsilon(0.05);
    let pairs = [(0usize, 1usize), (0, 2_500), (17, 4_999), (123, 124)];

    println!(
        "\n{:>6} {:>6} | {:>10} {:>10} {:>10} {:>10} | planned backend",
        "s", "t", "EXACT", "planned", "GEER", "AMC"
    );
    for &(s, t) in &pairs {
        let exact = service
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(Accuracy::Exact))
            .unwrap();
        let planned = service
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))
            .unwrap();
        // The override knob forces specific estimators — useful for research
        // and benchmarking; everyday callers just take the planned answer.
        let geer = service
            .submit(
                &Request::new(Query::pair(s, t))
                    .with_accuracy(accuracy)
                    .with_backend(BackendChoice::Geer),
            )
            .unwrap();
        let amc = service
            .submit(
                &Request::new(Query::pair(s, t))
                    .with_accuracy(accuracy)
                    .with_backend(BackendChoice::Amc),
            )
            .unwrap();
        println!(
            "{:>6} {:>6} | {:>10.5} {:>10.5} {:>10.5} {:>10.5} | {}",
            s,
            t,
            exact.value(),
            planned.value(),
            geer.value(),
            amc.value(),
            planned.backend
        );
        assert!(
            (geer.value() - exact.value()).abs() <= 0.05,
            "GEER within epsilon"
        );
    }

    // 4. Shaped queries: one Laplacian column answers a whole source profile.
    let profile = service
        .submit(&Request::new(Query::top_k(0, 5)))
        .expect("top-k");
    println!(
        "\n5 nearest nodes to 0 (via {}): {:?}",
        profile.backend, profile.nodes
    );
    println!("all GEER answers were within epsilon = 0.05 of the exact value");
}
