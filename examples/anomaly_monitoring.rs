//! Anomaly detection on a stream of graph snapshots.
//!
//! The paper cites anomaly localisation in time-evolving graphs [64] among
//! the data-management applications of effective resistance. This example
//! monitors a small set of probe pairs across daily snapshots of a network
//! whose two regions are connected by three tie lines. Midway through the
//! stream two of the ties fail; the cross-region probe's resistance jumps and
//! the monitor flags the snapshot, while intra-region probes stay quiet.
//!
//! Run with `cargo run --release --example anomaly_monitoring`.

use effective_resistance::apps::ResistanceMonitor;
use effective_resistance::graph::{generators, transform, Graph, GraphBuilder};
use effective_resistance::ApproxConfig;

/// Two preferential-attachment regions joined by three tie lines.
fn build_network() -> (Graph, Vec<(usize, usize)>) {
    let left = generators::barabasi_albert(150, 4, 11).expect("generator");
    let right = generators::barabasi_albert(150, 4, 12).expect("generator");
    let mut builder = GraphBuilder::from_edges(300, left.edges());
    for (u, v) in right.edges() {
        builder = builder.add_edge(150 + u, 150 + v);
    }
    let ties = vec![(10, 160), (40, 200), (90, 260)];
    for &(u, v) in &ties {
        builder = builder.add_edge(u, v);
    }
    (builder.build().expect("valid graph"), ties)
}

fn main() {
    let (base, ties) = build_network();
    println!(
        "network: {} nodes, {} edges, {} tie lines between the regions",
        base.num_nodes(),
        base.num_edges(),
        ties.len()
    );

    // Probes: one pair spanning the two regions, two pairs inside a region.
    let probes = vec![(0usize, 299usize), (0, 75), (151, 280)];
    let config = ApproxConfig {
        epsilon: 0.05,
        ..ApproxConfig::default()
    };
    let mut monitor = ResistanceMonitor::new(probes.clone(), config, 4.0, 0.1);

    // Day 0..3: organic growth (a few new friendships per day).
    let mut snapshots = vec![base.clone()];
    let organic_edges = [
        (3, 17),
        (155, 290),
        (60, 120),
        (200, 244),
        (5, 141),
        (162, 299),
    ];
    for day in 1..4 {
        let previous = snapshots.last().unwrap();
        let new_edges = &organic_edges[2 * (day - 1)..2 * day];
        snapshots.push(transform::add_edges(previous, new_edges).expect("still valid"));
    }
    // Day 4: two of the three tie lines fail.
    let severed = transform::remove_edges(snapshots.last().unwrap(), &ties[..2]).expect("valid");
    snapshots.push(severed);
    // Day 5: quiet again.
    let after = transform::add_edges(snapshots.last().unwrap(), &[(20, 33)]).expect("valid");
    snapshots.push(after);

    println!(
        "\n{:>4} {:>12} {:>12} {:>12}  flags",
        "day", "r(0,299)", "r(0,75)", "r(151,280)"
    );
    let mut event_days = Vec::new();
    for (day, snapshot) in snapshots.iter().enumerate() {
        let report = monitor.observe(snapshot).expect("snapshot is ergodic");
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>12.4}  {:?}",
            day,
            report.resistances[0],
            report.resistances[1],
            report.resistances[2],
            report.flagged
        );
        if report.is_anomalous() {
            event_days.push(day);
        }
    }

    println!("\nflagged snapshots: {event_days:?} (the tie lines failed on day 4)");
    assert_eq!(event_days, vec![4], "exactly the failure day is flagged");
}
