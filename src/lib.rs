//! Facade crate for the effective-resistance workspace.
//!
//! This repository reproduces *"Efficient Estimation of Pairwise Effective
//! Resistance"* (Yang & Tang, SIGMOD 2023). The implementation is split into
//! focused crates; this facade re-exports the pieces a typical user needs so
//! examples and downstream code can depend on a single crate:
//!
//! * [`graph`] (= `er-graph`) — CSR graphs, generators, IO, query sets.
//! * [`linalg`] (= `er-linalg`) — sparse/dense linear algebra, Lanczos, CG.
//! * [`walks`] (= `er-walks`) — random-walk primitives.
//! * [`er_core`] (re-exported at the root) — the estimators: [`Geer`], [`Amc`]
//!   and every baseline the paper compares against.
//! * [`index`] (= `er-index`) — single-source / all-pairs ER, landmark
//!   bounds, query caching and dynamic graphs.
//! * [`sparsify`] (= `er-sparsify`) — Spielman–Srivastava sparsification
//!   driven by the estimators.
//! * [`apps`] (= `er-apps`) — clustering, recommendation, robustness,
//!   anomaly-detection and segmentation pipelines.
//!
//! # Example
//!
//! ```
//! use effective_resistance::{ApproxConfig, Geer, GraphContext, ResistanceEstimator};
//! use effective_resistance::graph::generators;
//!
//! let graph = generators::social_network_like(1_000, 10.0, 1).unwrap();
//! let ctx = GraphContext::preprocess(&graph).unwrap();
//! let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(0.1));
//! let r = geer.estimate(0, 500).unwrap().value;
//! assert!(r > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Graph substrate (re-export of the `er-graph` crate).
pub mod graph {
    pub use er_graph::*;
}

/// Linear-algebra substrate (re-export of the `er-linalg` crate).
pub mod linalg {
    pub use er_linalg::*;
}

/// Random-walk substrate (re-export of the `er-walks` crate).
pub mod walks {
    pub use er_walks::*;
}

/// Indexing layer: single-source/all-pairs ER, landmark bounds, query
/// caching/batching and dynamic graphs (re-export of the `er-index` crate).
pub mod index {
    pub use er_index::*;
}

/// Spectral sparsification by effective-resistance sampling (re-export of the
/// `er-sparsify` crate).
pub mod sparsify {
    pub use er_sparsify::*;
}

/// Application pipelines: clustering, recommendation, robustness, anomaly
/// detection and segmentation (re-export of the `er-apps` crate).
pub mod apps {
    pub use er_apps::*;
}

pub use er_core::*;
