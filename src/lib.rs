//! Facade crate for the effective-resistance workspace.
//!
//! This repository reproduces *"Efficient Estimation of Pairwise Effective
//! Resistance"* (Yang & Tang, SIGMOD 2023). The implementation is split into
//! focused crates; this facade re-exports the pieces a typical user needs so
//! examples and downstream code can depend on a single crate:
//!
//! * [`graph`] (= `er-graph`) — CSR graphs, generators, IO, query sets.
//! * [`linalg`] (= `er-linalg`) — sparse/dense linear algebra, Lanczos, CG.
//! * [`walks`] (= `er-walks`) — random-walk primitives.
//! * [`er_core`] (re-exported at the root) — the estimators: [`Geer`], [`Amc`]
//!   and every baseline the paper compares against.
//! * [`index`] (= `er-index`) — single-source / all-pairs ER, landmark
//!   bounds, query caching and dynamic graphs.
//! * [`service`] (= `er-service`) — the **unified query plane**: typed
//!   queries, capability-based planning, one front door
//!   ([`ResistanceService`], `&self`-submittable and `Send + Sync`) for
//!   every estimator, plus the concurrent serving front end
//!   ([`ResistanceServer`] with admission control, request dedup,
//!   cross-client coalescing and deadline-aware scheduling).
//! * [`shard`] (= `er-shard`) — the **sharded serving plane**: graph
//!   partitioning into balanced connected parts, one service per shard,
//!   and a boundary-landmark [`ShardRouter`] that answers intra-shard pairs
//!   bit-identically to an unsharded service and cross-shard pairs with
//!   sound stitched intervals plus exact-solve escalation
//!   ([`ShardedService`]).
//! * [`http`] (= `er-http`) — a std-only HTTP/1.1 front end
//!   ([`HttpServer`]) serving `POST /query`, `GET /metrics` and
//!   `GET /healthz` over a [`ServerHandle`], bit-identical to in-process
//!   submits.
//! * [`sparsify`] (= `er-sparsify`) — Spielman–Srivastava sparsification
//!   driven by the estimators.
//! * [`apps`] (= `er-apps`) — clustering, recommendation, robustness,
//!   anomaly-detection and segmentation pipelines.
//!
//! # Example
//!
//! Applications talk to the [`ResistanceService`]: describe *what* you want
//! (a typed [`Query`] plus an [`Accuracy`] target) and the planner decides
//! *how* to answer it, reporting the chosen backend and its cost.
//!
//! ```
//! use effective_resistance::{Accuracy, Query, Request, ResistanceService};
//! use effective_resistance::graph::generators;
//!
//! let graph = generators::social_network_like(1_000, 10.0, 1).unwrap();
//! let service = ResistanceService::new(&graph).unwrap();
//! let response = service
//!     .submit(&Request::new(Query::pair(0, 500)).with_accuracy(Accuracy::epsilon(0.1)))
//!     .unwrap();
//! assert!(response.value() > 0.0);
//! println!("r(0, 500) ≈ {:.4} via {}", response.value(), response.backend);
//! ```
//!
//! Direct estimator construction (`Geer::new(&ctx, config)`) remains
//! available for benchmarking and research, but applications should prefer
//! the service front door.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Graph substrate (re-export of the `er-graph` crate).
pub mod graph {
    pub use er_graph::*;
}

/// Linear-algebra substrate (re-export of the `er-linalg` crate).
pub mod linalg {
    pub use er_linalg::*;
}

/// Random-walk substrate (re-export of the `er-walks` crate).
pub mod walks {
    pub use er_walks::*;
}

/// Indexing layer: single-source/all-pairs ER, landmark bounds, query
/// caching/batching and dynamic graphs (re-export of the `er-index` crate).
pub mod index {
    pub use er_index::*;
}

/// The unified query plane: typed queries, capability-based planning and the
/// [`ResistanceService`] front door (re-export of the `er-service` crate).
pub mod service {
    pub use er_service::*;
}

/// Sharded serving: graph partitioning, per-shard services and the
/// cross-shard boundary-landmark router (re-export of the `er-shard` crate).
pub mod shard {
    pub use er_shard::*;
}

/// Cross-process serving: the std-only HTTP/1.1 front end over
/// [`ServerHandle`] (re-export of the `er-http` crate).
pub mod http {
    pub use er_http::*;
}

/// Spectral sparsification by effective-resistance sampling (re-export of the
/// `er-sparsify` crate).
pub mod sparsify {
    pub use er_sparsify::*;
}

/// Application pipelines: clustering, recommendation, robustness, anomaly
/// detection and segmentation (re-export of the `er-apps` crate).
pub mod apps {
    pub use er_apps::*;
}

pub use er_core::*;
pub use er_http::{HttpConfig, HttpServer};
pub use er_service::{
    Accuracy, Backend, BackendChoice, DynamicResistanceService, Planner, PlannerConfig,
    PlannerState, Priority, Query, QueryShape, QueryShapeSet, Request, ResistanceServer,
    ResistanceService, Response, ServerConfig, ServerHandle, ServerStats, ServiceEpoch,
    ServiceError, Session, SubmitOptions, Ticket,
};
pub use er_shard::{ShardConfig, ShardRouter, ShardedService};
