#!/usr/bin/env python3
"""Diff the newest bench-trajectory entry against the previous one.

Trajectory files (BENCH_walk_kernel.json, BENCH_service.json) are JSON
arrays with one entry per PR, keyed by git SHA; the bench binaries append to
them. One file may interleave entries from several bench binaries (the
`"bench"` tag — BENCH_service.json holds both `service_throughput` and
`http_service`), so entries are grouped by tag and the newest two entries
*per bench* are compared. This script prints the deltas per workload. It
never fails the build for perf (CI runners have noisy perf); regressions
beyond the threshold are surfaced as GitHub warning annotations. A
determinism failure in a newest entry is a hard error.

Workload rate extraction is format-agnostic: walk-kernel workloads carry
`kernel.walks_per_sec`, serving workloads carry
`throughput.requests_per_sec`, batched-GEER workloads carry
`throughput.pairs_per_sec`.

Metric polarity: most metrics are higher-is-better rates; latency-quantile
metrics (key ends in `_ms`, or contains `p50`/`p99`) are lower-is-better
and warned about when they *grow* beyond the inverse threshold.
"""

import json
import sys

REGRESSION_THRESHOLD = 0.80  # warn when the rate drops below 80% of the previous entry


def rate_of(workload):
    """The headline rate of a workload entry, with its unit label."""
    kernel = workload.get("kernel")
    if kernel and "walks_per_sec" in kernel:
        return kernel["walks_per_sec"], "walks/s"
    throughput = workload.get("throughput")
    if throughput and "requests_per_sec" in throughput:
        return throughput["requests_per_sec"], "req/s"
    if throughput and "pairs_per_sec" in throughput:
        return throughput["pairs_per_sec"], "pairs/s"
    return None, "?"


def lower_is_better(metric_key: str) -> bool:
    """Latency-quantile metrics improve by shrinking."""
    key = metric_key.lower()
    return key.endswith("_ms") or "p50" in key or "p99" in key


def diff_pair(path: str, prev, curr) -> None:
    print(
        f"{path}: diffing {curr.get('git_sha', '?')} (quick={curr.get('quick')}) "
        f"against {prev.get('git_sha', '?')} (quick={prev.get('quick')})"
    )
    comparable = curr.get("quick") == prev.get("quick")
    prev_workloads = {w["name"]: w for w in prev.get("workloads", [])}
    print(f"{'workload':<20} {'prev rate':>14} {'curr rate':>14} {'ratio':>8}")
    for workload in curr.get("workloads", []):
        name = workload["name"]
        before = prev_workloads.get(name)
        if before is None:
            print(f"{name:<20} {'(new)':>14}")
            continue
        prev_rate, unit = rate_of(before)
        curr_rate, _ = rate_of(workload)
        if prev_rate is None or curr_rate is None:
            print(f"{name:<20} {'(no rate)':>14}")
            continue
        ratio = curr_rate / prev_rate if prev_rate else float("inf")
        print(
            f"{name:<20} {prev_rate:>12.0f} {unit:<4} {curr_rate:>10.0f} {unit:<4} "
            f"{ratio:>5.2f}x"
        )
        if ratio < REGRESSION_THRESHOLD and comparable:
            print(
                f"::warning::workload '{name}' in {path} regressed to "
                f"{ratio:.2f}x of the previous entry "
                f"({prev_rate:.0f} -> {curr_rate:.0f} {unit})"
            )
    # Named headline metrics (e.g. mc_escape_walks_per_sec,
    # wilson_trees_per_sec, http_w4_p99_ms) are diffed key by key; keys
    # missing from the previous entry are reported as new. Values spanning
    # rates (millions) and ratios (~1.0) share a general format so small
    # metrics don't round away. Latency-quantile metrics are lower-is-better
    # and warned about when they grow.
    prev_metrics = prev.get("metrics", {})
    fmt = lambda v: f"{v:.0f}" if abs(v) >= 1000 else f"{v:g}"
    for key, curr_value in curr.get("metrics", {}).items():
        before = prev_metrics.get(key)
        if before is None:
            print(f"metric {key:<32} (new) {fmt(curr_value)}")
            continue
        ratio = curr_value / before if before else float("inf")
        print(f"metric {key:<32} {fmt(before):>12} -> {fmt(curr_value):>12} {ratio:>5.2f}x")
        if not comparable:
            continue
        if lower_is_better(key):
            if ratio > 1.0 / REGRESSION_THRESHOLD:
                print(
                    f"::warning::latency metric '{key}' in {path} grew to "
                    f"{ratio:.2f}x of the previous entry "
                    f"({fmt(before)} -> {fmt(curr_value)})"
                )
        elif ratio < REGRESSION_THRESHOLD:
            print(
                f"::warning::metric '{key}' in {path} regressed to "
                f"{ratio:.2f}x of the previous entry"
            )


def main(path: str) -> int:
    with open(path) as f:
        entries = json.load(f)
    if not isinstance(entries, list) or not entries:
        print(f"::warning::{path} is not a non-empty trajectory array")
        return 0
    status = 0
    # Group by bench tag so files shared by several bench binaries diff each
    # bench's own history.
    groups = {}
    for entry in entries:
        groups.setdefault(entry.get("bench", "?"), []).append(entry)
    for bench, group in groups.items():
        curr = group[-1]
        if len(group) < 2:
            sha = curr.get("git_sha", "?")
            print(f"only one '{bench}' entry ({sha}) in {path}; nothing to diff yet")
        else:
            diff_pair(path, group[-2], curr)
        determinism = curr.get("determinism", {})
        if not determinism.get("bit_identical", False):
            print(
                f"::error::newest '{bench}' entry in {path} reports a determinism failure"
            )
            status = 1
    return status


if __name__ == "__main__":
    paths = sys.argv[1:] or ["BENCH_walk_kernel.json"]
    sys.exit(max(main(p) for p in paths))
