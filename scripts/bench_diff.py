#!/usr/bin/env python3
"""Diff the newest walk-kernel bench entry against the previous one.

The trajectory file (BENCH_walk_kernel.json) is a JSON array with one entry
per PR, keyed by git SHA; the walk_kernel binary appends to it. This script
compares the last two entries per workload and prints the deltas. It never
fails the build (CI runners have noisy perf); regressions beyond the
threshold are surfaced as GitHub warning annotations instead.
"""

import json
import sys

REGRESSION_THRESHOLD = 0.80  # warn when kernel walks/sec drops below 80% of the previous entry


def main(path: str) -> int:
    with open(path) as f:
        entries = json.load(f)
    if not isinstance(entries, list) or not entries:
        print(f"::warning::{path} is not a non-empty trajectory array")
        return 0
    if len(entries) < 2:
        sha = entries[-1].get("git_sha", "?")
        print(f"only one entry ({sha}) in the trajectory; nothing to diff yet")
        return 0

    prev, curr = entries[-2], entries[-1]
    print(
        f"diffing {curr.get('git_sha', '?')} (quick={curr.get('quick')}) "
        f"against {prev.get('git_sha', '?')} (quick={prev.get('quick')})"
    )
    prev_workloads = {w["name"]: w for w in prev.get("workloads", [])}
    print(f"{'workload':<20} {'prev walks/s':>14} {'curr walks/s':>14} {'ratio':>8}")
    for workload in curr.get("workloads", []):
        name = workload["name"]
        before = prev_workloads.get(name)
        if before is None:
            print(f"{name:<20} {'(new)':>14}")
            continue
        prev_rate = before["kernel"]["walks_per_sec"]
        curr_rate = workload["kernel"]["walks_per_sec"]
        ratio = curr_rate / prev_rate if prev_rate else float("inf")
        print(f"{name:<20} {prev_rate:>14.0f} {curr_rate:>14.0f} {ratio:>7.2f}x")
        if ratio < REGRESSION_THRESHOLD and curr.get("quick") == prev.get("quick"):
            print(
                f"::warning::walk-kernel workload '{name}' regressed to "
                f"{ratio:.2f}x of the previous entry "
                f"({prev_rate:.0f} -> {curr_rate:.0f} walks/s)"
            )
    if not curr.get("determinism", {}).get("bit_identical", False):
        print("::error::newest bench entry reports a determinism failure")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_walk_kernel.json"))
