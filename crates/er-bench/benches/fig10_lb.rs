//! Criterion counterpart of Fig. 10: GEER latency as the SMM/AMC switch point
//! ℓ_b is moved away from the greedy choice ℓ*_b.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::geer::SwitchRule;
use er_core::{ApproxConfig, Geer, GraphContext, ResistanceEstimator};
use er_graph::{generators, NodePairQuerySet};

fn bench_switch_point(c: &mut Criterion) {
    let graph = generators::social_network_like(2_000, 16.0, 0xf10).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 8, 11);
    let pairs: Vec<(usize, usize)> = queries.pairs().iter().map(|p| (p.s, p.t)).collect();
    let config = ApproxConfig::with_epsilon(0.1);

    let mut group = c.benchmark_group("fig10_lb_offset");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &offset in &[-4isize, -2, 0, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("GEER", format!("lb*{offset:+}")),
            &offset,
            |b, &offset| {
                let mut est =
                    Geer::new(&ctx, config).with_switch_rule(SwitchRule::GreedyOffset(offset));
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_switch_point);
criterion_main!(benches);
