//! Criterion counterpart of Fig. 4: per-query latency of each method on
//! random node-pair queries, at reduced scale so `cargo bench` stays fast.
//!
//! The full sweep (all datasets, all ε, 100 queries, the paper's exclusion
//! rules) lives in the `fig4` binary; this bench pins down the per-query cost
//! of each method's code path on one small social-network-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::{
    Amc, ApproxConfig, Exact, Geer, GraphContext, ResistanceEstimator, Rp, Smm, Tp, Tpc,
};
use er_graph::{generators, NodePairQuerySet};

fn bench_random_queries(c: &mut Criterion) {
    let graph = generators::social_network_like(2_000, 20.0, 0xf16).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 16, 7);
    let pairs: Vec<(usize, usize)> = queries.pairs().iter().map(|p| (p.s, p.t)).collect();

    let mut group = c.benchmark_group("fig4_random_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &epsilon in &[0.5, 0.2] {
        let config = ApproxConfig::with_epsilon(epsilon);
        group.bench_with_input(BenchmarkId::new("GEER", epsilon), &epsilon, |b, _| {
            let mut est = Geer::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(BenchmarkId::new("AMC", epsilon), &epsilon, |b, _| {
            let mut est = Amc::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(BenchmarkId::new("SMM", epsilon), &epsilon, |b, _| {
            let mut est = Smm::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        // TP and TPC with their faithful budgets are orders of magnitude
        // slower (that is the paper's point); cap their walks so the bench
        // terminates while still exercising the full code path.
        group.bench_with_input(BenchmarkId::new("TP(capped)", epsilon), &epsilon, |b, _| {
            let mut est = Tp::new(&ctx, config).with_walk_budget(200_000);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(
            BenchmarkId::new("TPC(capped)", epsilon),
            &epsilon,
            |b, _| {
                let mut est = Tpc::new(&ctx, config).with_walk_budget(200_000);
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
    }
    // Query-time-only baselines (preprocessing excluded, as in the paper).
    let config = ApproxConfig::with_epsilon(0.5);
    let mut exact = Exact::new(&ctx).unwrap();
    group.bench_function("EXACT/query_only", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            exact.estimate(s, t).unwrap().value
        })
    });
    let mut rp = Rp::new(&ctx, config).unwrap();
    group.bench_function("RP/query_only", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            rp.estimate(s, t).unwrap().value
        })
    });
    group.finish();
}

criterion_group!(benches, bench_random_queries);
criterion_main!(benches);
