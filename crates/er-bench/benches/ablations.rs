//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group isolates one mechanism of the paper's estimators (or of the
//! layers built on top) and compares it against the variant the paper argues
//! against:
//!
//! * `amc_walk_length` — AMC's sampling loop with the refined per-pair ℓ of
//!   Theorem 3.1 versus Peng et al.'s generic ℓ (Eq. 5). Complements Fig. 11,
//!   which makes the same comparison inside SMM.
//! * `amc_adaptive_tau` — AMC with the adaptive multi-batch scheme (τ = 5)
//!   versus a single Hoeffding-sized batch (τ = 1); Section 3.2's motivation.
//! * `geer_switch_rule` — GEER's greedy switch (Eq. 17) versus degenerate
//!   fixed choices: ℓ_b = 0 (pure Monte Carlo) and a large positive offset
//!   (pushed towards pure SMM); the mechanism behind Fig. 10.
//! * `edge_score_methods` — per-edge ER scoring strategies of the
//!   sparsification pipeline (exact solves vs GEER vs spanning trees).
//! * `point_query_backends` — one pairwise query through GEER, the exact
//!   column index and the landmark bounds, the trade-off the indexing layer
//!   documents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::{
    amc, length, Amc, ApproxConfig, Geer, GraphContext, ResistanceEstimator, SwitchRule,
};
use er_graph::{generators, NodePairQuerySet};
use er_index::{ErIndex, LandmarkIndex, LandmarkSelection};
use er_sparsify::{EdgeScores, ScoreMethod};
use er_walks::WalkEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_amc_walk_length(c: &mut Criterion) {
    let graph = generators::social_network_like(3_000, 30.0, 0xab1).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let epsilon = 0.2;
    let config = ApproxConfig::with_epsilon(epsilon);
    let pairs: Vec<(usize, usize)> = NodePairQuerySet::uniform(&graph, 6, 3)
        .pairs()
        .iter()
        .map(|p| (p.s, p.t))
        .collect();

    let mut group = c.benchmark_group("amc_walk_length");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, use_refined) in [("refined-ell", true), ("peng-ell", false)] {
        group.bench_function(BenchmarkId::new("amc", label), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                let ell = if use_refined {
                    length::refined_length(epsilon, ctx.lambda(), graph.degree(s), graph.degree(t))
                } else {
                    length::peng_length(epsilon, ctx.lambda())
                };
                let mut s_vec = vec![0.0; graph.num_nodes()];
                let mut t_vec = vec![0.0; graph.num_nodes()];
                s_vec[s] = 1.0;
                t_vec[t] = 1.0;
                let params = amc::AmcParameters::from_config(&config, ell);
                amc::run_amc(&graph, s, t, &s_vec, &t_vec, &params, &mut rng).r_f
            })
        });
    }
    group.finish();
}

fn bench_amc_adaptive_tau(c: &mut Criterion) {
    let graph = generators::social_network_like(3_000, 20.0, 0xab2).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let pairs: Vec<(usize, usize)> = NodePairQuerySet::uniform(&graph, 6, 5)
        .pairs()
        .iter()
        .map(|p| (p.s, p.t))
        .collect();

    let mut group = c.benchmark_group("amc_adaptive_tau");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tau in &[1usize, 5] {
        let config = ApproxConfig {
            epsilon: 0.2,
            tau,
            ..ApproxConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("amc", tau), &tau, |b, _| {
            let mut est = Amc::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
    }
    group.finish();
}

fn bench_geer_switch_rule(c: &mut Criterion) {
    let graph = generators::community_social_network(4_000, 18.0, 4, 0.02, 0xab3).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.1);
    let pairs: Vec<(usize, usize)> = NodePairQuerySet::uniform(&graph, 6, 9)
        .pairs()
        .iter()
        .map(|p| (p.s, p.t))
        .collect();

    let mut group = c.benchmark_group("geer_switch_rule");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let rules = [
        ("greedy", SwitchRule::Greedy),
        ("pure-monte-carlo", SwitchRule::Fixed(0)),
        ("greedy-plus-4", SwitchRule::GreedyOffset(4)),
    ];
    for (label, rule) in rules {
        group.bench_function(BenchmarkId::new("geer", label), |b| {
            let mut est = Geer::new(&ctx, config).with_switch_rule(rule);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
    }
    group.finish();
}

fn bench_edge_score_methods(c: &mut Criterion) {
    let graph = generators::social_network_like(400, 10.0, 0xab4).unwrap();
    let mut group = c.benchmark_group("edge_score_methods");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let methods = [
        ("exact-solves", ScoreMethod::Exact),
        ("geer", ScoreMethod::Geer { epsilon: 0.1 }),
        (
            "spanning-trees",
            ScoreMethod::SpanningTrees { samples: 100 },
        ),
    ];
    for (label, method) in methods {
        group.bench_function(BenchmarkId::new("scores", label), |b| {
            b.iter(|| EdgeScores::compute(&graph, method, 1).unwrap().total())
        });
    }
    group.finish();
}

fn bench_point_query_backends(c: &mut Criterion) {
    let graph = generators::community_social_network(2_000, 14.0, 4, 0.02, 0xab5).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.1);
    let pairs: Vec<(usize, usize)> = NodePairQuerySet::uniform(&graph, 16, 2)
        .pairs()
        .iter()
        .map(|p| (p.s, p.t))
        .collect();

    let mut group = c.benchmark_group("point_query_backends");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("geer_query", |b| {
        let mut est = Geer::new(&ctx, config);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            est.estimate(s, t).unwrap().value
        })
    });

    // The index pays one CG solve per *new source*; cycling over the fixed
    // pair set measures the amortised per-query cost of the cached columns.
    group.bench_function("er_index_query", |b| {
        let mut index = ErIndex::build(&graph)
            .unwrap()
            .with_column_capacity(pairs.len());
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            index.resistance(s, t).unwrap()
        })
    });

    group.bench_function("landmark_bounds_query", |b| {
        let landmarks = LandmarkIndex::build(&graph, 8, LandmarkSelection::Mixed, 1).unwrap();
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            landmarks.bounds(s, t).unwrap().estimate()
        })
    });

    // Raw walk throughput on the same graph, as a floor for the Monte Carlo
    // estimators' cost model.
    group.bench_function("walk_engine_1k_endpoints", |b| {
        let mut engine = WalkEngine::new(&graph);
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            engine
                .endpoint_histogram(pairs[0].0, 16, 1_000, &mut rng)
                .num_walks()
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_amc_walk_length,
    bench_amc_adaptive_tau,
    bench_geer_switch_rule,
    bench_edge_score_methods,
    bench_point_query_backends
);
criterion_main!(benches);
