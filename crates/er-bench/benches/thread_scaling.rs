//! Thread-scaling of the deterministic parallel sampling layer.
//!
//! Sweeps 1/2/4/8 worker threads over a fixed bulk-walk workload on a
//! generated social-network graph, so future PRs have a perf baseline to
//! beat. The `thread_scaling` binary (`cargo run --release -p er-bench --bin
//! thread_scaling`) prints the same sweep as a walks/sec table with speedup
//! factors; this bench feeds the numbers into the shared criterion-style
//! output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_graph::generators;
use er_walks::WalkEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_thread_scaling(c: &mut Criterion) {
    let graph = generators::social_network_like(20_000, 20.0, 0x5ca1e).unwrap();
    let mut group = c.benchmark_group("thread_scaling");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let walks = 50_000u64;
    let len = 32usize;
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("endpoint_histogram", threads),
            &threads,
            |b, &threads| {
                let mut engine = WalkEngine::new(&graph).with_threads(threads);
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    engine
                        .endpoint_histogram(0, len, walks, &mut rng)
                        .num_walks()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
