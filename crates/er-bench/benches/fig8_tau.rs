//! Criterion counterpart of Figs. 8–9: AMC and GEER latency as the batch
//! count τ varies (ε = 0.2 here; the binaries sweep both ε = 0.2 and 0.02).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::{Amc, ApproxConfig, Geer, GraphContext, ResistanceEstimator};
use er_graph::{generators, NodePairQuerySet};

fn bench_tau(c: &mut Criterion) {
    let graph = generators::social_network_like(2_000, 8.0, 0xf08).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 8, 5);
    let pairs: Vec<(usize, usize)> = queries.pairs().iter().map(|p| (p.s, p.t)).collect();

    let mut group = c.benchmark_group("fig8_tau");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tau in &[1usize, 3, 5, 8] {
        let config = ApproxConfig {
            epsilon: 0.2,
            tau,
            ..ApproxConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("GEER", tau), &tau, |b, _| {
            let mut est = Geer::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(BenchmarkId::new("AMC", tau), &tau, |b, _| {
            let mut est = Amc::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tau);
criterion_main!(benches);
