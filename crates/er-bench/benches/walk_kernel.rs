//! Criterion-style comparison of the PR-1 bulk-sampling path against the
//! zero-allocation walk kernel.
//!
//! A smaller graph than the `walk_kernel` binary (so the bench suite stays
//! fast); the binary is the canonical source of the numbers recorded in
//! `BENCH_walk_kernel.json`. Three benches per thread-count-free workload:
//! the old path (per-walk `StdRng`, `gen_range` stepping, dense tallies), the
//! kernel path through `WalkEngine`, and the kernel's raw batched driver.

use criterion::{criterion_group, criterion_main, Criterion};
use er_bench::baseline::pr1_endpoint_histogram;
use er_graph::generators;
use er_walks::kernel::{par_tally, ScratchPool, WalkKernel};
use er_walks::WalkEngine;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn bench_walk_kernel(c: &mut Criterion) {
    let graph = generators::barabasi_albert(20_000, 8, 0xba).unwrap();
    let mut group = c.benchmark_group("walk_kernel");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let (walks, len) = (2_000u64, 16usize);

    group.bench_function("old_path_histogram", |b| {
        b.iter(|| pr1_endpoint_histogram(&graph, 0, len, walks, 7).0[0])
    });
    group.bench_function("kernel_engine_histogram", |b| {
        let mut engine = WalkEngine::new(&graph).with_threads(1);
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let hist = engine.endpoint_histogram(0, len, walks, &mut rng);
            hist.count(0)
        })
    });
    group.bench_function("kernel_batched_tally", |b| {
        let kernel = WalkKernel::new(&graph);
        let pool = ScratchPool::new(graph.num_nodes());
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let fan_seed = rng.next_u64();
            let (counts, _steps) = par_tally(walks, 1, &pool, |range, scratch| {
                kernel.batch_endpoints(0, len, fan_seed, range, &mut |_, end, steps| {
                    scratch.bump(end);
                    scratch.add_steps(steps);
                });
            });
            counts[0]
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walk_kernel);
criterion_main!(benches);
