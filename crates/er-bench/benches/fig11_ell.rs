//! Criterion counterpart of Fig. 11: SMM with the refined walk length of
//! Eq. (6) versus Peng et al.'s length of Eq. (5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::{ApproxConfig, GraphContext, ResistanceEstimator, Smm};
use er_graph::{generators, NodePairQuerySet};

fn bench_lengths(c: &mut Criterion) {
    // High average degree is where the refined length wins most (Fig. 11).
    let graph = generators::social_network_like(2_000, 40.0, 0xf11).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 8, 13);
    let pairs: Vec<(usize, usize)> = queries.pairs().iter().map(|p| (p.s, p.t)).collect();

    let mut group = c.benchmark_group("fig11_ell");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &epsilon in &[0.5, 0.05] {
        let config = ApproxConfig::with_epsilon(epsilon);
        group.bench_with_input(
            BenchmarkId::new("SMM-our-ell", epsilon),
            &epsilon,
            |b, _| {
                let mut est = Smm::new(&ctx, config);
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("SMM-peng-ell", epsilon),
            &epsilon,
            |b, _| {
                let mut est = Smm::with_peng_length(&ctx, config);
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lengths);
criterion_main!(benches);
