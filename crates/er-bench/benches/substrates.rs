//! Microbenchmarks of the substrates every estimator is built on: sparse
//! transition steps (SMM's inner loop), truncated random walks (AMC's inner
//! loop), escape walks (MC), Wilson spanning trees (HAY), CG Laplacian solves
//! (ground truth / RP) and the Lanczos preprocessing.

use criterion::{criterion_group, criterion_main, Criterion};
use er_core::smm;
use er_graph::generators;
use er_linalg::{lanczos, LaplacianSolver};
use er_walks::{hitting, spanning, truncated};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_substrates(c: &mut Criterion) {
    let graph = generators::social_network_like(5_000, 16.0, 0x5b).unwrap();
    let n = graph.num_nodes();

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("smm_transition_step_dense_frontier", |b| {
        let x = vec![1.0 / n as f64; n];
        let mut out = vec![0.0; n];
        b.iter(|| smm::transition_step(&graph, &x, &mut out))
    });

    group.bench_function("truncated_walk_len32", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| truncated::walk_endpoint(&graph, 0, 32, &mut rng))
    });

    group.bench_function("escape_walk", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| hitting::escape_walk(&graph, 0, n / 2, 1_000_000, &mut rng))
    });

    group.bench_function("wilson_spanning_tree", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| spanning::sample_spanning_tree(&graph, 0, &mut rng).num_nodes())
    });

    group.bench_function("cg_laplacian_solve", |b| {
        let solver = LaplacianSolver::new(&graph, 1e-8, 10 * n);
        b.iter(|| solver.effective_resistance(0, n / 2))
    });

    group.bench_function("lanczos_spectral_bounds", |b| {
        b.iter(|| lanczos::spectral_bounds(&graph, 60, 4))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
