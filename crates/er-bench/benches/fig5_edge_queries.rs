//! Criterion counterpart of Fig. 5: per-query latency of the edge-query
//! methods (GEER, AMC, SMM, MC2, HAY) at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::{Amc, ApproxConfig, Geer, GraphContext, Hay, Mc2, ResistanceEstimator, Smm};
use er_graph::{generators, EdgeQuerySet};

fn bench_edge_queries(c: &mut Criterion) {
    let graph = generators::social_network_like(2_000, 20.0, 0xf05).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let queries = EdgeQuerySet::uniform(&graph, 16, 9);
    let pairs: Vec<(usize, usize)> = queries.pairs().iter().map(|p| (p.s, p.t)).collect();

    let mut group = c.benchmark_group("fig5_edge_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &epsilon in &[0.5, 0.2] {
        let config = ApproxConfig::with_epsilon(epsilon);
        group.bench_with_input(BenchmarkId::new("GEER", epsilon), &epsilon, |b, _| {
            let mut est = Geer::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(BenchmarkId::new("AMC", epsilon), &epsilon, |b, _| {
            let mut est = Amc::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(BenchmarkId::new("SMM", epsilon), &epsilon, |b, _| {
            let mut est = Smm::new(&ctx, config);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                est.estimate(s, t).unwrap().value
            })
        });
        group.bench_with_input(
            BenchmarkId::new("MC2(capped)", epsilon),
            &epsilon,
            |b, _| {
                let mut est = Mc2::new(&ctx, config).with_walk_budget(50_000);
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("HAY(capped)", epsilon),
            &epsilon,
            |b, _| {
                let mut est = Hay::new(&ctx, config).with_tree_budget(20);
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    est.estimate(s, t).unwrap().value
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_edge_queries);
criterion_main!(benches);
