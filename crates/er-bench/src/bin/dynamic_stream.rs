//! Dynamic-serving benchmark: a zipf query mix interleaved with an edge
//! stream, comparing **rebuild-per-burst** (refresh interval 1 — the
//! pre-incremental behaviour) against **incremental** serving
//! (Sherman–Morrison carried INDEX state, overlay snapshots, warm-started
//! Lanczos, epoch swap) on a Barabási–Albert graph.
//!
//! Before any timing, the refresh contract is asserted on a small graph:
//! after a full (interval-reaching) refresh, answers must be
//! **bit-identical** to a service built cold on the equivalent static
//! graph. Timing then replays the same mutation/query stream through both
//! modes and records `mutations_per_sec`, `post_mutation_p50_ms` (latency
//! of the first query after each burst — the one that pays the refresh)
//! and `full_rebuilds` per mode.
//!
//! The incremental mode seeds resident INDEX state the way a warmed-up
//! serving tier would hold it — a Hutchinson-estimated L⁺ diagonal plus a
//! handful of CG-solved resident columns — and the stream mutates edges
//! between resident sources, so rank-1 updates come from column
//! differences instead of fresh solves.
//!
//! `BENCH_dynamic.json` (current directory — the repo root in CI) is an
//! **append-only trajectory** keyed by git SHA; `scripts/bench_diff.py`
//! diffs the newest two entries with the `_ms` metrics treated as
//! lower-is-better.
//!
//! Run with `cargo run --release -p er-bench --bin dynamic_stream
//! [--quick] [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_core::ApproxConfig;
use er_graph::transform::{add_edges, remove_edges};
use er_graph::{generators, Graph};
use er_linalg::LaplacianSolver;
use er_service::{Accuracy, DynamicResistanceService, Query, Request};
use std::collections::VecDeque;
use std::time::Instant;

/// One SplitMix64 step (the workspace's seeding primitive).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf(1) rank sampler via inverse CDF, as in the other serving benches.
struct ZipfNodes {
    cumulative: Vec<f64>,
}

impl ZipfNodes {
    fn new(n: usize) -> ZipfNodes {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / (rank as f64 + 1.0);
            cumulative.push(total);
        }
        ZipfNodes { cumulative }
    }

    fn draw(&self, state: &mut u64) -> usize {
        let total = *self.cumulative.last().expect("non-empty graph");
        let u = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// The replayed stream: bursts of edge mutations, each followed by queries.
enum Step {
    Insert(usize, usize),
    Remove(usize, usize),
    /// Marks the end of a burst: the next query pays the refresh.
    Query(usize, usize),
}

/// Builds one deterministic mutation/query stream. Mutated edges connect
/// *resident* sources (so the incremental mode updates from column
/// differences); deletes replay earlier inserts, guaranteeing non-bridges.
fn build_stream(
    graph: &Graph,
    resident: &[usize],
    bursts: usize,
    queries_per_burst: usize,
    seed: u64,
) -> Vec<Step> {
    let n = graph.num_nodes();
    let zipf = ZipfNodes::new(n);
    let spread: Vec<usize> = (0..n).map(|rank| (rank * 31 + 17) % n).collect();
    let mut state = seed | 1;
    let mut stream = Vec::new();
    let mut fresh: VecDeque<(usize, usize)> = VecDeque::new();
    let mut present: Vec<(usize, usize)> = Vec::new();
    for _ in 0..bursts {
        // Two inserts between resident sources not currently connected.
        for _ in 0..2 {
            let pair = loop {
                let u = resident[(splitmix(&mut state) as usize) % resident.len()];
                let v = resident[(splitmix(&mut state) as usize) % resident.len()];
                let key = (u.min(v), u.max(v));
                if u != v && !graph.has_edge(u, v) && !present.contains(&key) {
                    break key;
                }
            };
            present.push(pair);
            fresh.push_back(pair);
            stream.push(Step::Insert(pair.0, pair.1));
        }
        // One delete of an edge inserted by an earlier burst (non-bridge:
        // the base graph already connects its endpoints).
        if fresh.len() > 2 {
            let (u, v) = fresh.pop_front().expect("non-empty");
            present.retain(|&p| p != (u, v));
            stream.push(Step::Remove(u, v));
        }
        for _ in 0..queries_per_burst {
            let s = spread[zipf.draw(&mut state)];
            let t = spread[zipf.draw(&mut state)];
            if s != t {
                stream.push(Step::Query(s, t));
            }
        }
    }
    stream
}

/// Exact centred `L⁺ e_source` via CG on the static graph.
fn exact_column(solver: &LaplacianSolver, n: usize, source: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    b[source] = 1.0;
    let (column, outcome) = solver.solve(&b);
    assert!(outcome.converged, "resident-column solve must converge");
    column
}

/// Hutchinson estimate of `diag(L⁺)` from `probes` Rademacher solves.
fn hutchinson_diagonal(solver: &LaplacianSolver, n: usize, probes: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    let mut diag = vec![0.0; n];
    for _ in 0..probes {
        let z: Vec<f64> = (0..n)
            .map(|_| {
                if splitmix(&mut state) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let (x, _) = solver.solve(&z);
        for ((d, &zi), &xi) in diag.iter_mut().zip(&z).zip(&x) {
            *d += zi * xi;
        }
    }
    for d in &mut diag {
        *d /= probes as f64;
    }
    diag
}

struct ModeResult {
    name: &'static str,
    mutations: u64,
    queries: u64,
    secs: f64,
    post_mutation_ms: Vec<f64>,
    full_rebuilds: u64,
    snapshot_rebuilds: u64,
    service_refreshes: u64,
    sm_updates: u64,
    cg_fallbacks: u64,
}

impl ModeResult {
    fn mutations_per_sec(&self) -> f64 {
        self.mutations as f64 / self.secs
    }

    fn post_mutation_p50_ms(&self) -> f64 {
        let mut sorted = self.post_mutation_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[sorted.len() / 2]
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"mutations\": {},\n      \
             \"queries\": {},\n      \"mutations_per_sec\": {:.2},\n      \
             \"post_mutation_p50_ms\": {:.3},\n      \"full_rebuilds\": {},\n      \
             \"snapshot_rebuilds\": {},\n      \"service_refreshes\": {},\n      \
             \"sm_updates\": {},\n      \"cg_fallbacks\": {}\n    }}",
            self.name,
            self.mutations,
            self.queries,
            self.mutations_per_sec(),
            self.post_mutation_p50_ms(),
            self.full_rebuilds,
            self.snapshot_rebuilds,
            self.service_refreshes,
            self.sm_updates,
            self.cg_fallbacks
        )
    }
}

/// Replays the stream through one serving mode and measures it.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    name: &'static str,
    graph: &Graph,
    approx: ApproxConfig,
    accuracy: Accuracy,
    stream: &[Step],
    refresh_interval: u64,
    resident: &[usize],
    probes: usize,
    seed: u64,
) -> ModeResult {
    let dynamic =
        DynamicResistanceService::from_graph(graph, approx).with_refresh_interval(refresh_interval);
    // Warm-up: install the first epoch outside the timed stream.
    dynamic
        .submit(&Request::new(Query::pair(0, 1)).with_accuracy(accuracy))
        .expect("warm-up query");
    if !resident.is_empty() {
        // Seed the resident INDEX tier a warmed-up server would hold.
        eprintln!(
            "  [{name}] seeding {} resident columns + {probes}-probe diagonal ...",
            resident.len()
        );
        let solver = LaplacianSolver::for_ground_truth(graph);
        let n = graph.num_nodes();
        let columns: Vec<(usize, Vec<f64>)> = resident
            .iter()
            .map(|&s| (s, exact_column(&solver, n, s)))
            .collect();
        let diagonal = hutchinson_diagonal(&solver, n, probes, seed ^ 0xd1a);
        dynamic
            .seed_index_state(diagonal, columns)
            .expect("seeding resident state");
    }
    let baseline_rebuilds = dynamic.snapshot_full_rebuilds();
    let mut mutations = 0u64;
    let mut queries = 0u64;
    let mut post_mutation_ms = Vec::new();
    let mut pending_refresh = false;
    let start = Instant::now();
    for step in stream {
        match *step {
            Step::Insert(u, v) => {
                assert!(
                    dynamic.insert_edge(u, v).expect("insert"),
                    "stream replays cleanly"
                );
                mutations += 1;
                pending_refresh = true;
            }
            Step::Remove(u, v) => {
                assert!(
                    dynamic.remove_edge(u, v).expect("remove"),
                    "stream replays cleanly"
                );
                mutations += 1;
                pending_refresh = true;
            }
            Step::Query(s, t) => {
                let begin = Instant::now();
                dynamic
                    .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))
                    .expect("stream query");
                if pending_refresh {
                    post_mutation_ms.push(begin.elapsed().as_secs_f64() * 1e3);
                    pending_refresh = false;
                }
                queries += 1;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ModeResult {
        name,
        mutations,
        queries,
        secs,
        post_mutation_ms,
        full_rebuilds: dynamic.snapshot_full_rebuilds() - baseline_rebuilds,
        snapshot_rebuilds: dynamic.snapshot_rebuilds(),
        service_refreshes: dynamic.service_refreshes(),
        sm_updates: dynamic.sm_updates(),
        cg_fallbacks: dynamic.cg_fallbacks(),
    }
}

/// Pre-timing contract gate: after an interval-reaching (full) refresh the
/// dynamic service must answer bit-identically to a cold build on the
/// equivalent static graph.
fn assert_full_refresh_bit_identity(seed: u64) -> bool {
    let g = generators::social_network_like(150, 8.0, seed ^ 0x5eed).expect("gate graph");
    let config = ApproxConfig {
        epsilon: 0.1,
        ..ApproxConfig::default()
    };
    let dynamic = DynamicResistanceService::from_graph(&g, config).with_refresh_interval(4);
    dynamic.resistance(0, 75).expect("gate query");
    let inserts = [(0usize, 75usize), (10, 90), (20, 100)];
    let removed = g.edges().nth(7).expect("edge");
    for &(u, v) in &inserts {
        dynamic.insert_edge(u, v).expect("gate insert");
    }
    dynamic
        .remove_edge(removed.0, removed.1)
        .expect("gate remove");
    dynamic.refresh().expect("gate refresh");
    let mutated = add_edges(&g, &inserts).expect("add");
    let mutated = remove_edges(&mutated, &[removed]).expect("remove");
    let cold = DynamicResistanceService::from_graph(&mutated, config);
    [(0usize, 75usize), (5, 120), (33, 140)]
        .iter()
        .all(|&(s, t)| {
            dynamic.resistance(s, t).expect("warm").to_bits()
                == cold.resistance(s, t).expect("cold").to_bits()
        })
}

fn main() {
    let args = BenchArgs::from_env();
    let (nodes, m_attach, bursts, resident_count, probes) = if args.quick {
        (2_000usize, 4usize, 4usize, 8usize, 2usize)
    } else {
        (100_000, 4, 8, 16, 4)
    };
    let bit_identical = assert_full_refresh_bit_identity(args.seed);
    eprintln!("verified: full refresh bit-identical to cold rebuild = {bit_identical}");

    eprintln!("generating barabasi_albert({nodes}, {m_attach}) ...");
    let graph = generators::barabasi_albert(nodes, m_attach, 9).expect("generator");
    let n = graph.num_nodes();
    // Resident sources, spread over the id space like the query mix.
    let resident: Vec<usize> = (0..resident_count).map(|r| (r * 31 + 17) % n).collect();
    let stream = build_stream(&graph, &resident, bursts, 2, args.seed);
    let total_mutations = stream
        .iter()
        .filter(|s| !matches!(s, Step::Query(_, _)))
        .count();
    eprintln!(
        "graph: n = {}, m = {}, stream = {} steps ({} mutations over {} bursts), quick = {}",
        n,
        graph.num_edges(),
        stream.len(),
        total_mutations,
        bursts,
        args.quick
    );
    let approx = ApproxConfig {
        epsilon: 0.2,
        seed: args.seed,
        threads: args.threads,
        ..ApproxConfig::default()
    };
    // A fixed walk budget keeps per-query work constant across modes, so
    // the stream time differences isolate refresh + mutation cost.
    let accuracy = Accuracy::WalkBudget(20_000);

    // Baseline: every burst pays a full rebuild at its first query (the
    // pre-incremental serving behaviour), no resident state to carry.
    let rebuild = run_mode(
        "rebuild_per_burst",
        &graph,
        approx,
        accuracy,
        &stream,
        1,
        &[],
        0,
        args.seed,
    );
    eprintln!(
        "rebuild-per-burst: {:.2} mutations/sec, post-mutation p50 {:.1} ms, {} full rebuilds",
        rebuild.mutations_per_sec(),
        rebuild.post_mutation_p50_ms(),
        rebuild.full_rebuilds
    );
    // Incremental: Sherman–Morrison carried state over resident columns,
    // overlay snapshots and warm Lanczos; full rebuild only every 64th
    // mutation.
    let incremental = run_mode(
        "incremental",
        &graph,
        approx,
        accuracy,
        &stream,
        64,
        &resident,
        probes,
        args.seed,
    );
    eprintln!(
        "incremental:       {:.2} mutations/sec, post-mutation p50 {:.1} ms, {} full rebuilds",
        incremental.mutations_per_sec(),
        incremental.post_mutation_p50_ms(),
        incremental.full_rebuilds
    );
    let speedup = incremental.mutations_per_sec() / rebuild.mutations_per_sec();
    println!(
        "{:<20} {:>16} {:>20} {:>14}",
        "mode", "mutations/sec", "post-mutation p50", "full rebuilds"
    );
    for r in [&rebuild, &incremental] {
        println!(
            "{:<20} {:>16.2} {:>17.1} ms {:>14}",
            r.name,
            r.mutations_per_sec(),
            r.post_mutation_p50_ms(),
            r.full_rebuilds
        );
    }
    println!("incremental vs rebuild-per-burst: {speedup:.1}x mutations/sec");

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let entry = format!(
        "{{\n  \"bench\": \"dynamic_stream\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"barabasi_albert\", \"nodes\": {}, \"edges\": {}}},\n  \
         \"workload\": {{\"bursts\": {}, \"mutations\": {}, \"resident_columns\": {}, \
         \"walk_budget\": 20000, \"skew\": \"zipf1_spread\"}},\n  \
         \"determinism\": {{\"checked\": \"full_refresh_vs_cold_rebuild\", \
         \"bit_identical\": {bit_identical}}},\n  \
         \"metrics\": {{\"dynamic_mutations_per_sec\": {:.2}, \
         \"dynamic_rebuild_mutations_per_sec\": {:.2}, \
         \"dynamic_speedup\": {:.2}, \
         \"dynamic_post_mutation_p50_ms\": {:.3}, \
         \"dynamic_rebuild_post_mutation_p50_ms\": {:.3}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        n,
        graph.num_edges(),
        bursts,
        total_mutations,
        resident.len(),
        incremental.mutations_per_sec(),
        rebuild.mutations_per_sec(),
        speedup,
        incremental.post_mutation_p50_ms(),
        rebuild.post_mutation_p50_ms(),
        [&rebuild, &incremental]
            .iter()
            .map(|r| r.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_dynamic.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
