//! Fig. 8 — effect of the batch count τ on AMC and GEER at ε = 0.2.
//!
//! The paper sweeps τ ∈ \[1, 8\] on DBLP, YouTube and Orkut. A reasonable τ lets
//! the empirical-Bernstein early termination fire without paying for many
//! tiny batches; the paper's takeaway is that τ = 5 works well everywhere.
//!
//! Run with `cargo run -p er-bench --release --bin fig8`.

use er_bench::sweeps::tau_sweep;
use er_bench::{print_table, write_csv, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let runs = match tau_sweep(&args, 0.2) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_table("Fig. 8: running time (ms) vs tau (epsilon = 0.2)", &runs);
    match write_csv("fig8_tau_eps02", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
