//! Fig. 2 — the running example.
//!
//! Reproduces the right-hand table of Fig. 2: on the 11-node toy graph, the
//! number of distinct walks (#path) of length 1..=8 starting at `s` and at `t`
//! (obtainable by deterministic traversal) versus the number of random-walk
//! samples η* that AMC would require at ε = 0.5, δ = 0.1 for the same maximum
//! length. The point of the figure: for short lengths deterministic traversal
//! touches fewer states than sampling, while for long lengths the walk-count
//! explosion from the high-degree endpoint `t` makes sampling cheaper — the
//! observation that motivates GEER's hybrid design.
//!
//! Run with `cargo run -p er-bench --release --bin fig2`.

use er_core::amc;
use er_graph::{analysis, generators};
use er_linalg::vector;

fn main() {
    let graph = generators::fig2_toy();
    let s = 0usize;
    let t = 1usize;
    let max_len = 8usize;
    let epsilon = 0.5;
    let delta = 0.1;

    let paths_s = analysis::count_walks_from(&graph, s, max_len);
    let paths_t = analysis::count_walks_from(&graph, t, max_len);

    println!(
        "toy graph: n={} m={} d(s)={} d(t)={}  (epsilon={epsilon}, delta={delta})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.degree(s),
        graph.degree(t)
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>10}",
        "ell_f", "#path(s)", "#path(t)", "#path(s)+(t)", "eta*"
    );
    let n = graph.num_nodes();
    let s_vec = vector::unit(n, s);
    let t_vec = vector::unit(n, t);
    let mut csv = String::from("ell_f,paths_s,paths_t,paths_total,eta_star\n");
    for ell in 1..=max_len {
        let psi = amc::psi_bound(&s_vec, &t_vec, graph.degree(s), graph.degree(t), ell);
        // Single-batch worst case (tau = 1), matching the figure's framing of
        // "the number of random walks required by AMC".
        let eta = amc::eta_star(psi, epsilon, delta, 1);
        let total = paths_s[ell - 1].saturating_add(paths_t[ell - 1]);
        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>10}",
            ell,
            paths_s[ell - 1],
            paths_t[ell - 1],
            total,
            eta
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            ell,
            paths_s[ell - 1],
            paths_t[ell - 1],
            total,
            eta
        ));
    }
    println!(
        "\nObservation (Section 4): for small ell_f the deterministic traversal \
         (#path columns) is cheaper than sampling (eta*), while the walk count \
         from the high-degree node t eventually outgrows eta*."
    );
    let dir = er_bench::report::experiments_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join("fig2.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("wrote {}", path.display());
}
