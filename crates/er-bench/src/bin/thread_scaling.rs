//! Thread-scaling report for the deterministic parallel sampling layer.
//!
//! Sweeps 1/2/4/8 worker threads (clamped to the machine) over two workloads
//! on a generated social-network graph and reports walks/sec plus speedup vs
//! one thread:
//!
//! * raw bulk walks through `WalkEngine::endpoint_histogram`,
//! * end-to-end AMC queries (the walk-pair loop of Algorithm 1).
//!
//! It also cross-checks determinism: the histogram and the AMC estimate must
//! be bit-identical at every thread count.
//!
//! Run with `cargo run --release -p er-bench --bin thread_scaling
//! [--queries N] [--seed N]`.

use er_bench::args::BenchArgs;
use er_core::{Amc, ApproxConfig, GraphContext, ResistanceEstimator};
use er_graph::generators;
use er_walks::WalkEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args = BenchArgs::from_env();
    let graph = generators::social_network_like(20_000, 20.0, 0x5ca1e).expect("generator");
    let ctx = GraphContext::preprocess(&graph).expect("ergodic graph");
    eprintln!(
        "graph: n = {}, m = {}, lambda = {:.4}",
        graph.num_nodes(),
        graph.num_edges(),
        ctx.lambda()
    );

    let walks = 200_000u64;
    let len = 32usize;
    let queries = args.queries.max(1);

    println!(
        "{:>8} {:>16} {:>10} {:>16} {:>10}",
        "threads", "walks/sec", "speedup", "amc queries/sec", "speedup"
    );
    let mut base_walk_rate = 0.0;
    let mut base_query_rate = 0.0;
    let mut reference: Option<(Vec<u64>, Vec<f64>)> = None;
    for &threads in &[1usize, 2, 4, 8] {
        // Bulk walks.
        let mut engine = WalkEngine::new(&graph).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let start = Instant::now();
        let hist = engine.endpoint_histogram(0, len, walks, &mut rng);
        let walk_rate = walks as f64 / start.elapsed().as_secs_f64();
        let counts: Vec<u64> = (0..graph.num_nodes()).map(|v| hist.count(v)).collect();

        // End-to-end AMC queries. A pessimistic lambda forces a non-trivial
        // walk length so the timing reflects real sampling work.
        let slow_ctx = GraphContext::with_lambda(&graph, 0.9).expect("lambda in range");
        let config = ApproxConfig::with_epsilon(0.2)
            .reseeded(args.seed)
            .with_threads(threads);
        let mut amc = Amc::new(&slow_ctx, config);
        let start = Instant::now();
        let mut values = Vec::with_capacity(queries);
        for q in 0..queries {
            let s = (q * 37) % graph.num_nodes();
            let t = (q * 101 + graph.num_nodes() / 2) % graph.num_nodes();
            values.push(amc.estimate(s, t).expect("valid query").value);
        }
        let query_rate = queries as f64 / start.elapsed().as_secs_f64();

        match &reference {
            None => {
                base_walk_rate = walk_rate;
                base_query_rate = query_rate;
                reference = Some((counts, values));
            }
            Some((ref_counts, ref_values)) => {
                assert_eq!(
                    ref_counts, &counts,
                    "histogram differs at {threads} threads"
                );
                let identical = ref_values
                    .iter()
                    .zip(&values)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "AMC estimates differ at {threads} threads");
            }
        }
        println!(
            "{threads:>8} {walk_rate:>16.0} {:>9.2}x {query_rate:>16.2} {:>9.2}x",
            walk_rate / base_walk_rate,
            query_rate / base_query_rate
        );
    }
    println!("\ndeterminism: all thread counts produced bit-identical results");
}
