//! Fig. 6 — average absolute error vs ε for **random** pairwise queries.
//!
//! Same sweep as Fig. 4 but reporting the measured error against ground
//! truth. Every point must fall below the dashed `error = ε` diagonal of the
//! paper's figure; the table prints the measured averages so that claim can be
//! checked directly.
//!
//! Run with `cargo run -p er-bench --release --bin fig6`.

use er_bench::methods::MethodKind;
use er_bench::report::print_error_table;
use er_bench::sweeps::{epsilon_sweep, WorkloadKind};
use er_bench::{write_csv, BenchArgs};

const DEFAULT_EPSILONS: [f64; 4] = [0.5, 0.2, 0.1, 0.05];

fn main() {
    let args = BenchArgs::from_env();
    let epsilons = args.epsilons_or(&DEFAULT_EPSILONS);
    let runs = match epsilon_sweep(
        &args,
        &epsilons,
        &MethodKind::random_query_lineup(),
        WorkloadKind::RandomPairs,
    ) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_error_table(
        "Fig. 6: average absolute error vs epsilon, random queries",
        &runs,
    );
    let violations: Vec<_> = runs
        .iter()
        .filter(|r| r.avg_abs_error.is_some_and(|e| e > r.epsilon))
        .collect();
    if violations.is_empty() {
        println!("\nall completed points are below the error threshold (successful queries)");
    } else {
        println!("\npoints above the error threshold:");
        for r in violations {
            println!(
                "  {} / {} eps={} avg_err={:.5}",
                r.dataset,
                r.method,
                r.epsilon,
                r.avg_abs_error.unwrap()
            );
        }
    }
    match write_csv("fig6_random_query_error", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
