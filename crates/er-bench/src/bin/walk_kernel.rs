//! Walk-kernel micro-benchmark: the PR-1 bulk-sampling path vs the
//! zero-allocation kernel, on a 100k-node Barabási–Albert graph.
//!
//! Two workloads, both single-threaded so the numbers isolate the per-walk
//! constant factor rather than parallel speedup:
//!
//! * `histogram_query` — many medium-sized `endpoint_histogram` queries (the
//!   shape TP/AMC issue per query): the old path pays a per-query O(n) dense
//!   tally on top of per-walk `StdRng` construction and `gen_range` stepping.
//! * `bulk_walks` — one large bulk call, measuring steady-state walks/sec
//!   where stepping dominates and the kernel's lane-interleaved lockstep
//!   hides the dependent cache-miss chain of each walk.
//!
//! The old path is reproduced inline exactly as `WalkEngine` ran it before
//! the kernel landed (per-walk `StdRng::seed_from_u64(mix_seed(seed, i))`,
//! `Graph::random_neighbor` stepping, `vec![0; n]` tally). The binary also
//! cross-checks that the kernel path stays bit-identical at 1/2/8 threads.
//!
//! `BENCH_walk_kernel.json` (current directory — the repo root in CI) is an
//! **append-only trajectory**: a JSON array with one entry per PR, keyed by
//! git SHA. The binary appends its entry, replacing an existing entry for
//! the same SHA (re-runs must not duplicate), and never drops history — so
//! CI can diff the newest entry against the previous one. Override the key
//! with `BENCH_GIT_SHA=<sha>` when git is unavailable.
//!
//! Run with `cargo run --release -p er-bench --bin walk_kernel [--quick]
//! [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::baseline::pr1_endpoint_histogram;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_graph::{generators, Graph};
use er_walks::WalkEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for `work`, which must return its
/// walk count (used as an optimisation barrier and sanity check).
fn best_secs(reps: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut walks = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        walks = work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, walks)
}

struct WorkloadResult {
    name: &'static str,
    queries: u64,
    walks_per_query: u64,
    walk_len: usize,
    old_secs: f64,
    kernel_secs: f64,
}

impl WorkloadResult {
    fn total_walks(&self) -> u64 {
        self.queries * self.walks_per_query
    }
    fn old_walks_per_sec(&self) -> f64 {
        self.total_walks() as f64 / self.old_secs
    }
    fn kernel_walks_per_sec(&self) -> f64 {
        self.total_walks() as f64 / self.kernel_secs
    }
    fn old_query_ms(&self) -> f64 {
        1e3 * self.old_secs / self.queries as f64
    }
    fn kernel_query_ms(&self) -> f64 {
        1e3 * self.kernel_secs / self.queries as f64
    }
    fn speedup(&self) -> f64 {
        self.old_secs / self.kernel_secs
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"queries\": {},\n      \
             \"walks_per_query\": {},\n      \"walk_len\": {},\n      \
             \"old\": {{\"walks_per_sec\": {:.0}, \"query_ms\": {:.4}}},\n      \
             \"kernel\": {{\"walks_per_sec\": {:.0}, \"query_ms\": {:.4}}},\n      \
             \"speedup\": {:.3}\n    }}",
            self.name,
            self.queries,
            self.walks_per_query,
            self.walk_len,
            self.old_walks_per_sec(),
            self.old_query_ms(),
            self.kernel_walks_per_sec(),
            self.kernel_query_ms(),
            self.speedup()
        )
    }
}

fn run_workload(
    graph: &Graph,
    name: &'static str,
    queries: u64,
    walks_per_query: u64,
    walk_len: usize,
    seed: u64,
    reps: usize,
) -> WorkloadResult {
    // Both paths consume one fan seed per query from the same caller RNG
    // position, mirroring how estimators drive the engine.
    let (old_secs, old_walks) = best_secs(reps, || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0;
        for q in 0..queries {
            let start = (q as usize * 131) % graph.num_nodes();
            let fan_seed = rand::RngCore::next_u64(&mut rng);
            let (counts, _) =
                pr1_endpoint_histogram(graph, start, walk_len, walks_per_query, fan_seed);
            total += counts.iter().sum::<u64>();
        }
        total
    });
    let (kernel_secs, kernel_walks) = best_secs(reps, || {
        let mut engine = WalkEngine::new(graph).with_threads(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0;
        for q in 0..queries {
            let start = (q as usize * 131) % graph.num_nodes();
            let hist = engine.endpoint_histogram(start, walk_len, walks_per_query, &mut rng);
            total += (0..graph.num_nodes()).map(|v| hist.count(v)).sum::<u64>();
        }
        total
    });
    assert_eq!(old_walks, queries * walks_per_query, "old path lost walks");
    assert_eq!(kernel_walks, queries * walks_per_query, "kernel lost walks");
    WorkloadResult {
        name,
        queries,
        walks_per_query,
        walk_len,
        old_secs,
        kernel_secs,
    }
}

/// Bit-identity of the kernel path across thread counts, on the bench graph.
fn check_determinism(graph: &Graph, seed: u64) -> bool {
    let run = |threads: usize| {
        let mut engine = WalkEngine::new(graph).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = engine.endpoint_histogram(1, 12, 20_000, &mut rng);
        (0..graph.num_nodes())
            .map(|v| hist.count(v))
            .collect::<Vec<_>>()
    };
    let base = run(1);
    [2usize, 8].iter().all(|&t| run(t) == base)
}

fn main() {
    let args = BenchArgs::from_env();
    let attach = 8;
    let nodes = 100_000;
    eprintln!("generating barabasi_albert({nodes}, {attach}) ...");
    let graph = generators::barabasi_albert(nodes, attach, 0xba).expect("generator");
    eprintln!(
        "graph: n = {}, m = {}, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        args.quick
    );

    let reps = if args.quick { 2 } else { 5 };
    let queries = if args.quick { 8 } else { 32 };
    let workloads = [
        run_workload(
            &graph,
            "histogram_query",
            queries,
            5_000,
            16,
            args.seed,
            reps,
        ),
        run_workload(
            &graph,
            "bulk_walks",
            1,
            if args.quick { 100_000 } else { 400_000 },
            16,
            args.seed ^ 0xb0, // decorrelate from the query workload
            reps,
        ),
    ];

    println!(
        "{:<18} {:>14} {:>16} {:>12} {:>12} {:>9}",
        "workload", "old walks/s", "kernel walks/s", "old ms/q", "kernel ms/q", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<18} {:>14.0} {:>16.0} {:>12.4} {:>12.4} {:>8.2}x",
            w.name,
            w.old_walks_per_sec(),
            w.kernel_walks_per_sec(),
            w.old_query_ms(),
            w.kernel_query_ms(),
            w.speedup()
        );
    }

    let deterministic = check_determinism(&graph, args.seed);
    assert!(
        deterministic,
        "kernel path must be bit-identical at 1/2/8 threads"
    );
    println!("determinism: kernel results bit-identical at 1/2/8 threads");

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let entry = format!(
        "{{\n  \"bench\": \"walk_kernel\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"barabasi_albert\", \"nodes\": {}, \"attach\": {attach}, \
         \"edges\": {}}},\n  \
         \"determinism\": {{\"threads_checked\": [1, 2, 8], \"bit_identical\": {deterministic}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        workloads
            .iter()
            .map(|w| w.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_walk_kernel.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
