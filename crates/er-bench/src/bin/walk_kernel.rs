//! Walk-kernel micro-benchmark: the PR-1 bulk-sampling path vs the
//! zero-allocation kernel, on a 100k-node Barabási–Albert graph.
//!
//! Two workloads, both single-threaded so the numbers isolate the per-walk
//! constant factor rather than parallel speedup:
//!
//! * `histogram_query` — many medium-sized `endpoint_histogram` queries (the
//!   shape TP/AMC issue per query): the old path pays a per-query O(n) dense
//!   tally on top of per-walk `StdRng` construction and `gen_range` stepping.
//! * `bulk_walks` — one large bulk call, measuring steady-state walks/sec
//!   where stepping dominates and the kernel's lane-interleaved lockstep
//!   hides the dependent cache-miss chain of each walk.
//! * `mc_escape` — MC-shaped variable-length escape walks: per-walk
//!   `escape_walk` stepping vs the variable-length lockstep lanes with
//!   immediate refill (`escape_trials`); the `mc_escape_walks_per_sec`
//!   metric in the trajectory entry.
//! * `amc_paired` — AMC-shaped walk pairs: sequential s-then-t walks per
//!   pair vs the paired lockstep driver (`batch_pairs`); the
//!   `amc_paired_pairs_per_sec` metric.
//! * `wilson_trees` — HAY-shaped uniform spanning trees: the sequential
//!   per-tree Wilson sampler vs the multi-root lockstep driver
//!   (`sample_spanning_trees`), with every tree's edge fingerprint and draw
//!   count asserted bit-identical before timing; the
//!   `wilson_trees_per_sec` metric.
//!
//! A lane-width sweep (8/16/32 lanes, fixed-length bulk walks) runs at 1, 2
//! and 8 threads, prints next to the `LaneWidth::auto` pick and lands in the
//! entry's `lane_sweep` object — the calibration data behind the heuristic's
//! thresholds (tuned on a 1-CPU container; the per-thread sections record
//! whether multi-core hardware disagrees). A prefetch on/off sweep times the
//! bulk and Wilson drivers with prefetch-ahead forced off and on and reports
//! the off/on time ratios as the `prefetch_speedup` /
//! `prefetch_speedup_wilson` metrics — the measurements behind the kernel's
//! prefetch defaults (off for wide drivers, on for the narrow Wilson lanes).
//! Every workload asserts bit-identical results between the old and kernel
//! paths before timing them.
//!
//! The old path is reproduced inline exactly as `WalkEngine` ran it before
//! the kernel landed (per-walk `StdRng::seed_from_u64(mix_seed(seed, i))`,
//! `Graph::random_neighbor` stepping, `vec![0; n]` tally). The binary also
//! cross-checks that the kernel path stays bit-identical at 1/2/8 threads.
//!
//! `BENCH_walk_kernel.json` (current directory — the repo root in CI) is an
//! **append-only trajectory**: a JSON array with one entry per PR, keyed by
//! git SHA. The binary appends its entry, replacing an existing entry for
//! the same SHA (re-runs must not duplicate), and never drops history — so
//! CI can diff the newest entry against the previous one. Override the key
//! with `BENCH_GIT_SHA=<sha>` when git is unavailable.
//!
//! Run with `cargo run --release -p er-bench --bin walk_kernel [--quick]
//! [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::baseline::pr1_endpoint_histogram;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_graph::{generators, Graph};
use er_walks::hitting::{escape_trials, escape_walk, EscapeOutcome, EscapeTally};
use er_walks::kernel::LaneWidth;
use er_walks::{
    par, sample_spanning_tree, sample_spanning_trees, sample_spanning_trees_on, SpanningTree,
    StreamRng, WalkEngine, WalkKernel,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for `work`, which must return its
/// walk count (used as an optimisation barrier and sanity check).
fn best_secs(reps: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut walks = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        walks = work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, walks)
}

struct WorkloadResult {
    name: &'static str,
    queries: u64,
    walks_per_query: u64,
    walk_len: usize,
    old_secs: f64,
    kernel_secs: f64,
}

impl WorkloadResult {
    fn total_walks(&self) -> u64 {
        self.queries * self.walks_per_query
    }
    fn old_walks_per_sec(&self) -> f64 {
        self.total_walks() as f64 / self.old_secs
    }
    fn kernel_walks_per_sec(&self) -> f64 {
        self.total_walks() as f64 / self.kernel_secs
    }
    fn old_query_ms(&self) -> f64 {
        1e3 * self.old_secs / self.queries as f64
    }
    fn kernel_query_ms(&self) -> f64 {
        1e3 * self.kernel_secs / self.queries as f64
    }
    fn speedup(&self) -> f64 {
        self.old_secs / self.kernel_secs
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"queries\": {},\n      \
             \"walks_per_query\": {},\n      \"walk_len\": {},\n      \
             \"old\": {{\"walks_per_sec\": {:.0}, \"query_ms\": {:.4}}},\n      \
             \"kernel\": {{\"walks_per_sec\": {:.0}, \"query_ms\": {:.4}}},\n      \
             \"speedup\": {:.3}\n    }}",
            self.name,
            self.queries,
            self.walks_per_query,
            self.walk_len,
            self.old_walks_per_sec(),
            self.old_query_ms(),
            self.kernel_walks_per_sec(),
            self.kernel_query_ms(),
            self.speedup()
        )
    }
}

fn run_workload(
    graph: &Graph,
    name: &'static str,
    queries: u64,
    walks_per_query: u64,
    walk_len: usize,
    seed: u64,
    reps: usize,
) -> WorkloadResult {
    // Both paths consume one fan seed per query from the same caller RNG
    // position, mirroring how estimators drive the engine.
    let (old_secs, old_walks) = best_secs(reps, || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0;
        for q in 0..queries {
            let start = (q as usize * 131) % graph.num_nodes();
            let fan_seed = rand::RngCore::next_u64(&mut rng);
            let (counts, _) =
                pr1_endpoint_histogram(graph, start, walk_len, walks_per_query, fan_seed);
            total += counts.iter().sum::<u64>();
        }
        total
    });
    let (kernel_secs, kernel_walks) = best_secs(reps, || {
        let mut engine = WalkEngine::new(graph).with_threads(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0;
        for q in 0..queries {
            let start = (q as usize * 131) % graph.num_nodes();
            let hist = engine.endpoint_histogram(start, walk_len, walks_per_query, &mut rng);
            total += (0..graph.num_nodes()).map(|v| hist.count(v)).sum::<u64>();
        }
        total
    });
    assert_eq!(old_walks, queries * walks_per_query, "old path lost walks");
    assert_eq!(kernel_walks, queries * walks_per_query, "kernel lost walks");
    WorkloadResult {
        name,
        queries,
        walks_per_query,
        walk_len,
        old_secs,
        kernel_secs,
    }
}

/// MC-shaped escape walks (variable length, first-hit-or-return
/// termination): the PR-4 path stepped each trial alone through
/// `escape_walk`; the kernel path runs the same streams on the
/// variable-length lockstep lanes with immediate refill. Both paths consume
/// identical draws, so the tallies must agree bit for bit — asserted here.
fn run_mc_escape(
    graph: &Graph,
    trials: u64,
    max_steps: usize,
    seed: u64,
    reps: usize,
) -> WorkloadResult {
    let (s, t) = (0, graph.neighbors(0)[0]);
    let mut old_tally = EscapeTally::default();
    let (old_secs, old_walks) = best_secs(reps, || {
        let mut tally = EscapeTally::default();
        for i in 0..trials {
            let mut rng = par::stream_rng(seed, i);
            match escape_walk(graph, s, t, max_steps, &mut rng) {
                EscapeOutcome::ReachedTarget { steps } => {
                    tally.reached += 1;
                    tally.steps += steps as u64;
                }
                EscapeOutcome::ReturnedToSource { steps } => {
                    tally.returned += 1;
                    tally.steps += steps as u64;
                }
                EscapeOutcome::Truncated => {
                    tally.truncated += 1;
                    tally.steps += max_steps as u64;
                }
            }
        }
        old_tally = tally;
        tally.trials()
    });
    let (kernel_secs, kernel_walks) = best_secs(reps, || {
        let tally = escape_trials(graph, s, t, max_steps, trials, seed, 1);
        assert_eq!(tally, old_tally, "lane port must preserve escape tallies");
        tally.trials()
    });
    assert_eq!(old_walks, trials);
    assert_eq!(kernel_walks, trials);
    WorkloadResult {
        name: "mc_escape",
        queries: 1,
        walks_per_query: trials,
        walk_len: max_steps,
        old_secs,
        kernel_secs,
    }
}

/// AMC-shaped walk pairs: the PR-4 path ran each pair's s-walk then t-walk
/// sequentially on its own stream; the kernel path advances a lane block of
/// pairs together through `batch_pairs` on the same streams. Per-pair f64
/// accumulation order is preserved, so the sums must agree bit for bit.
fn run_amc_paired(graph: &Graph, pairs: u64, len: usize, seed: u64, reps: usize) -> WorkloadResult {
    let (s, t) = (0, graph.num_nodes() / 2);
    let (ds, dt) = (graph.degree(s) as f64, graph.degree(t) as f64);
    let weight = move |u: usize| {
        if u == s {
            1.0 / ds
        } else if u == t {
            -1.0 / dt
        } else {
            0.0
        }
    };
    let mut old_sums = (0u64, 0u64);
    let (old_secs, old_pairs) = best_secs(reps, || {
        let kernel = WalkKernel::new(graph);
        let mut z_sum = 0.0f64;
        let mut z_sq = 0.0f64;
        for k in 0..pairs {
            let mut rng = par::stream_rng(seed, k);
            let mut z_k = 0.0;
            kernel.for_each_visit(s, len, &mut rng, |u| z_k += weight(u));
            kernel.for_each_visit(t, len, &mut rng, |u| z_k -= weight(u));
            z_sum += z_k;
            z_sq += z_k * z_k;
        }
        old_sums = (z_sum.to_bits(), z_sq.to_bits());
        pairs
    });
    let (kernel_secs, kernel_pairs) = best_secs(reps, || {
        let kernel = WalkKernel::new(graph);
        let mut z_sum = 0.0f64;
        let mut z_sq = 0.0f64;
        kernel.batch_pairs(
            s,
            t,
            len,
            seed,
            0..pairs,
            &|u, z_k: &mut f64| *z_k += weight(u),
            &|u, z_k: &mut f64| *z_k -= weight(u),
            &mut |_, z_k, _| {
                z_sum += z_k;
                z_sq += z_k * z_k;
            },
        );
        assert_eq!(
            (z_sum.to_bits(), z_sq.to_bits()),
            old_sums,
            "paired driver must preserve AMC's accumulation bits"
        );
        pairs
    });
    assert_eq!(old_pairs, pairs);
    assert_eq!(kernel_pairs, pairs);
    WorkloadResult {
        name: "amc_paired",
        queries: 1,
        walks_per_query: pairs,
        walk_len: len,
        old_secs,
        kernel_secs,
    }
}

/// Draw-counting RNG wrapper: lets the sequential Wilson path report how
/// many u64s each tree consumed, for comparison against the lockstep
/// driver's per-tree step counts (one draw per step, by construction).
struct CountingRng {
    inner: StreamRng,
    draws: u64,
}

impl RngCore for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Order-sensitive fingerprint of a tree's parent edges, cheap enough to
/// fold into the timed loop without dominating it.
fn tree_fingerprint(tree: &SpanningTree) -> u64 {
    let mut h = 0u64;
    tree.for_each_edge(|u, v| h = h.wrapping_add(par::mix_seed(u as u64 + 1, v as u64 + 1)));
    h
}

/// HAY-shaped uniform spanning trees: the PR-6 path grew one tree at a time
/// on its own `stream_rng(seed, i)`; the lockstep driver grows a lane block
/// of trees concurrently on the same streams. Every tree's edge fingerprint
/// and draw count must match the sequential sampler bit for bit — asserted
/// before the kernel timing counts.
fn run_wilson_trees(graph: &Graph, trees: u64, seed: u64, reps: usize) -> WorkloadResult {
    let mut old_trees_fp: Vec<(u64, u64)> = Vec::new();
    let (old_secs, old_done) = best_secs(reps, || {
        let mut fps = Vec::with_capacity(trees as usize);
        for i in 0..trees {
            let mut rng = CountingRng {
                inner: par::stream_rng(seed, i),
                draws: 0,
            };
            let tree = sample_spanning_tree(graph, 0, &mut rng);
            fps.push((tree_fingerprint(&tree), rng.draws));
        }
        old_trees_fp = fps;
        trees
    });
    let (kernel_secs, kernel_done) = best_secs(reps, || {
        let mut fps = vec![(0u64, 0u64); trees as usize];
        sample_spanning_trees(graph, 0, seed, 0..trees, &mut |i, tree, steps| {
            fps[i as usize] = (tree_fingerprint(tree), steps);
        });
        assert_eq!(
            fps, old_trees_fp,
            "lockstep Wilson must preserve every tree and its draw schedule"
        );
        trees
    });
    assert_eq!(old_done, trees);
    assert_eq!(kernel_done, trees);
    WorkloadResult {
        name: "wilson_trees",
        queries: 1,
        walks_per_query: trees,
        walk_len: 0,
        old_secs,
        kernel_secs,
    }
}

/// Prefetch-ahead on/off time ratio (`off_secs / on_secs`; above 1.0 means
/// prefetch wins) for the fixed-length bulk driver and the lockstep Wilson
/// driver. Results-neutrality of the toggle is pinned by kernel unit tests
/// and by `run_wilson_trees`' bit-identity assert, so this only times.
fn prefetch_sweep(
    graph: &Graph,
    walks: u64,
    len: usize,
    trees: u64,
    seed: u64,
    reps: usize,
) -> (f64, f64) {
    let time_bulk = |prefetch: bool| {
        let kernel = WalkKernel::new(graph).with_prefetch(prefetch);
        best_secs(reps, || {
            let mut count = 0;
            kernel.batch_endpoints(0, len, seed, 0..walks, &mut |_, _, _| count += 1);
            count
        })
        .0
    };
    // L8 is the narrowest width the explicit-kernel entry can request — the
    // closest stand-in for the few-deep-lanes regime the production
    // CSR-footprint rule picks on a graph this size.
    let time_wilson = |prefetch: bool| {
        let kernel = WalkKernel::new(graph)
            .with_lanes(LaneWidth::L8)
            .with_prefetch(prefetch);
        best_secs(reps, || {
            let mut count = 0;
            sample_spanning_trees_on(kernel, 0, seed ^ 0x17, 0..trees, &mut |_, _, _| count += 1);
            count
        })
        .0
    };
    (
        time_bulk(false) / time_bulk(true),
        time_wilson(false) / time_wilson(true),
    )
}

/// Walks/sec of fixed-length bulk walks at each lane width and the given
/// thread count — the calibration data behind `LaneWidth::auto`'s
/// thresholds. Fan-out goes through the same chunked `par_fold_ranges`
/// backbone the estimators use, so the multi-thread rows reflect how the
/// widths behave under real contention (on multi-core hardware; on a 1-CPU
/// container all rows collapse to the single-thread picture).
fn lane_sweep(
    graph: &Graph,
    walks: u64,
    len: usize,
    seed: u64,
    reps: usize,
    threads: usize,
) -> Vec<(LaneWidth, f64)> {
    [LaneWidth::L8, LaneWidth::L16, LaneWidth::L32]
        .into_iter()
        .map(|width| {
            let kernel = WalkKernel::new(graph).with_lanes(width);
            let (secs, done) = best_secs(reps, || {
                par::par_fold_ranges(
                    walks,
                    threads,
                    || 0u64,
                    |range, count: &mut u64| {
                        kernel.batch_endpoints(0, len, seed, range, &mut |_, _, _| *count += 1)
                    },
                    |total, part| *total += part,
                )
            });
            assert_eq!(done, walks);
            (width, walks as f64 / secs)
        })
        .collect()
}

/// Bit-identity of the kernel path across thread counts, on the bench graph.
fn check_determinism(graph: &Graph, seed: u64) -> bool {
    let run = |threads: usize| {
        let mut engine = WalkEngine::new(graph).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = engine.endpoint_histogram(1, 12, 20_000, &mut rng);
        (0..graph.num_nodes())
            .map(|v| hist.count(v))
            .collect::<Vec<_>>()
    };
    let base = run(1);
    [2usize, 8].iter().all(|&t| run(t) == base)
}

fn main() {
    let args = BenchArgs::from_env();
    let attach = 8;
    let nodes = 100_000;
    eprintln!("generating barabasi_albert({nodes}, {attach}) ...");
    let graph = generators::barabasi_albert(nodes, attach, 0xba).expect("generator");
    eprintln!(
        "graph: n = {}, m = {}, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        args.quick
    );

    let reps = if args.quick { 2 } else { 5 };
    let queries = if args.quick { 8 } else { 32 };
    let workloads = [
        run_workload(
            &graph,
            "histogram_query",
            queries,
            5_000,
            16,
            args.seed,
            reps,
        ),
        run_workload(
            &graph,
            "bulk_walks",
            1,
            if args.quick { 100_000 } else { 400_000 },
            16,
            args.seed ^ 0xb0, // decorrelate from the query workload
            reps,
        ),
        run_mc_escape(
            &graph,
            if args.quick { 1_000 } else { 4_000 },
            100_000,
            args.seed ^ 0xe5,
            reps,
        ),
        run_amc_paired(
            &graph,
            if args.quick { 50_000 } else { 200_000 },
            16,
            args.seed ^ 0xa3,
            reps,
        ),
        run_wilson_trees(
            &graph,
            if args.quick { 8 } else { 32 },
            args.seed ^ 0x77,
            reps,
        ),
    ];

    let sweep_walks = if args.quick { 50_000 } else { 200_000 };
    let sweeps: Vec<(usize, Vec<(LaneWidth, f64)>)> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            (
                threads,
                lane_sweep(&graph, sweep_walks, 16, args.seed ^ 0x5e, reps, threads),
            )
        })
        .collect();
    let auto = LaneWidth::auto(graph.num_nodes(), graph.num_edges());
    println!("lane sweep (fixed-length bulk walks):");
    for (threads, sweep) in &sweeps {
        for &(width, rate) in sweep {
            let marker = if width == auto { "  <- auto pick" } else { "" };
            println!("  {threads} thread(s) {width:?}: {rate:>14.0} walks/s{marker}");
        }
    }

    let (prefetch_bulk, prefetch_wilson) = prefetch_sweep(
        &graph,
        sweep_walks,
        16,
        if args.quick { 4 } else { 8 },
        args.seed ^ 0x9f,
        reps,
    );
    println!("prefetch speedup (off/on): bulk {prefetch_bulk:.3}x, wilson {prefetch_wilson:.3}x");

    println!(
        "{:<18} {:>14} {:>16} {:>12} {:>12} {:>9}",
        "workload", "old walks/s", "kernel walks/s", "old ms/q", "kernel ms/q", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<18} {:>14.0} {:>16.0} {:>12.4} {:>12.4} {:>8.2}x",
            w.name,
            w.old_walks_per_sec(),
            w.kernel_walks_per_sec(),
            w.old_query_ms(),
            w.kernel_query_ms(),
            w.speedup()
        );
    }

    let deterministic = check_determinism(&graph, args.seed);
    assert!(
        deterministic,
        "kernel path must be bit-identical at 1/2/8 threads"
    );
    println!("determinism: kernel results bit-identical at 1/2/8 threads");

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let mc_escape = workloads
        .iter()
        .find(|w| w.name == "mc_escape")
        .expect("mc_escape workload present");
    let amc_paired = workloads
        .iter()
        .find(|w| w.name == "amc_paired")
        .expect("amc_paired workload present");
    let wilson = workloads
        .iter()
        .find(|w| w.name == "wilson_trees")
        .expect("wilson_trees workload present");
    let sweep_json = sweeps
        .iter()
        .map(|(threads, sweep)| {
            let rows = sweep
                .iter()
                .map(|(width, rate)| format!("\"{width:?}\": {rate:.0}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("\"threads_{threads}\": {{{rows}}}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    let entry = format!(
        "{{\n  \"bench\": \"walk_kernel\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"barabasi_albert\", \"nodes\": {}, \"attach\": {attach}, \
         \"edges\": {}}},\n  \
         \"determinism\": {{\"threads_checked\": [1, 2, 8], \"bit_identical\": {deterministic}}},\n  \
         \"metrics\": {{\"mc_escape_walks_per_sec\": {:.0}, \"amc_paired_pairs_per_sec\": {:.0}, \
         \"wilson_trees_per_sec\": {:.2}, \"prefetch_speedup\": {prefetch_bulk:.3}, \
         \"prefetch_speedup_wilson\": {prefetch_wilson:.3}}},\n  \
         \"lane_sweep\": {{{sweep_json}, \"auto\": \"{auto:?}\"}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        mc_escape.kernel_walks_per_sec(),
        amc_paired.kernel_walks_per_sec(),
        wilson.kernel_walks_per_sec(),
        workloads
            .iter()
            .map(|w| w.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_walk_kernel.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
