//! Batched-GEER benchmark: shared SMM frontiers versus per-pair solo GEER on
//! a zipf-skewed shared-endpoint workload — the shape a public resistance
//! endpoint sees, where a few popular nodes appear in most queries.
//!
//! Both sides answer the *same* pairs on the *same* pair-content RNG streams:
//! the solo baseline forks one `Geer` estimator per pair (exactly the
//! service's per-item path), the batched side runs `GeerBatch`, which pays
//! each endpoint's SMM frontier sequence once per lockstep round no matter
//! how many pairs read it. Values are asserted **bit-identical** before any
//! timing is reported — the speedup is pure work-sharing, not a different
//! estimator.
//!
//! `BENCH_geer_batch.json` (current directory — the repo root in CI) is an
//! **append-only trajectory** keyed by git SHA, exactly like
//! `BENCH_service.json`; `scripts/bench_diff.py` diffs the newest two
//! entries, including the named headline metrics `geer_batch_pairs_per_sec`
//! and `geer_batch_speedup`. Override the key with `BENCH_GIT_SHA=<sha>`.
//!
//! Run with `cargo run --release -p er-bench --bin geer_batch
//! [--quick] [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_core::{
    ApproxConfig, ForkableEstimator, Geer, GeerBatch, GraphContext, ResistanceEstimator,
};
use er_graph::{generators, Graph};
use er_walks::par;
use std::collections::HashSet;
use std::time::Instant;

/// One SplitMix64 step (the workspace's seeding primitive).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws ranks from a Zipf(s) popularity law via inverse CDF over the
/// weights `1/(rank+1)^s`, so a modest batch revisits the same popular
/// endpoints constantly — the endpoint-popularity shape of a public API.
struct ZipfNodes {
    cumulative: Vec<f64>,
}

impl ZipfNodes {
    fn new(n: usize, exponent: f64) -> ZipfNodes {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += (rank as f64 + 1.0).powf(-exponent);
            cumulative.push(total);
        }
        ZipfNodes { cumulative }
    }

    fn draw(&self, state: &mut u64) -> usize {
        let total = *self.cumulative.last().expect("non-empty graph");
        let u = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// A deduplicated batch of `count` distinct pairs whose endpoints are drawn
/// zipf-skewed from a hot set of `pool` nodes spread across the graph — the
/// shape a public resistance endpoint sees, where a small popular catalog
/// soaks up almost all queries. **Both** endpoints are drawn from the hot set
/// (skewing only sources would cap the shareable SMM work at 2×), and each
/// pair gets a content-derived RNG stream — the same symmetric derivation
/// idea the service uses, so solo and batched runs consume identical streams.
fn build_pairs(
    graph: &Graph,
    count: usize,
    pool: usize,
    seed: u64,
) -> (Vec<(usize, usize)>, Vec<u64>) {
    let n = graph.num_nodes();
    assert!(
        pool * (pool - 1) / 2 >= count,
        "hot set too small for {count} distinct pairs"
    );
    let zipf = ZipfNodes::new(pool, 1.0);
    let hot: Vec<usize> = (0..pool).map(|rank| (rank * n / pool + 17) % n).collect();
    let mut state = seed | 1;
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut pairs = Vec::with_capacity(count);
    let mut streams = Vec::with_capacity(count);
    while pairs.len() < count {
        let s = hot[zipf.draw(&mut state)];
        let t = hot[zipf.draw(&mut state)];
        if s == t || !seen.insert((s.min(t), s.max(t))) {
            continue;
        }
        pairs.push((s, t));
        let mut key = (s.min(t) as u64) << 32 | s.max(t) as u64;
        streams.push(splitmix(&mut key));
    }
    (pairs, streams)
}

/// The solo baseline: one `Geer` fork per pair on that pair's stream, fanned
/// out across pairs exactly like the service's per-item estimator path.
fn run_solo(
    ctx: &GraphContext,
    config: ApproxConfig,
    walk_budget: u64,
    pairs: &[(usize, usize)],
    streams: &[u64],
    threads: usize,
) -> (f64, Vec<u64>) {
    let proto = Geer::new(ctx, config).with_walk_budget(walk_budget);
    let start = Instant::now();
    let bits = par::par_map_indexed(pairs.len() as u64, 0, threads, |i, _| {
        let (s, t) = pairs[i as usize];
        proto
            .fork(streams[i as usize])
            .estimate(s, t)
            .expect("valid pair")
            .value
            .to_bits()
    });
    (start.elapsed().as_secs_f64(), bits)
}

/// The batched side: one `GeerBatch::run` over the whole workload.
fn run_batched(
    ctx: &GraphContext,
    config: ApproxConfig,
    walk_budget: u64,
    pairs: &[(usize, usize)],
    streams: &[u64],
    threads: usize,
) -> (f64, Vec<u64>, u64, u64) {
    let batch = GeerBatch::new(ctx, config).with_walk_budget(walk_budget);
    let start = Instant::now();
    let run = batch.run(pairs, streams, threads).expect("valid batch");
    let secs = start.elapsed().as_secs_f64();
    let bits = run.values.iter().map(|v| v.to_bits()).collect();
    let solo_matvec_equivalent = run.shared_cost.matvec_ops;
    (secs, bits, solo_matvec_equivalent, run.sources_expanded)
}

struct WorkloadResult {
    name: String,
    pairs: usize,
    secs: f64,
}

impl WorkloadResult {
    fn pairs_per_sec(&self) -> f64 {
        self.pairs as f64 / self.secs
    }
    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"pairs\": {},\n      \
             \"throughput\": {{\"pairs_per_sec\": {:.1}, \"avg_ms\": {:.4}}}\n    }}",
            self.name,
            self.pairs,
            self.pairs_per_sec(),
            1e3 * self.secs / self.pairs as f64
        )
    }
}

fn main() {
    let args = BenchArgs::from_env();
    // A moderately-mixing small-world graph: its spectral gap sits just above
    // the planner's `lambda_gap_threshold` (0.1), so ε pairs still route to
    // GEER — but the Eq. 17 switch keeps a long SMM prefix, which is exactly
    // the shareable part. (Fast-mixing social graphs switch to walks after a
    // couple of rounds, leaving little frontier work to share.)
    let (nodes, count, pool, reps, epsilon) = if args.quick {
        (2_000usize, 48usize, 24usize, 2usize, 0.003)
    } else {
        (3_000, 192, 32, 3, 0.002)
    };
    eprintln!("generating watts_strogatz({nodes}, 8, 0.25) ...");
    let graph = generators::watts_strogatz(nodes, 8, 0.25, 9).expect("generator");
    let ctx = GraphContext::preprocess(&graph).expect("ergodic graph");
    eprintln!(
        "spectral gap = {:.3} (GEER-routed: gap > 0.1)",
        ctx.spectral_gap()
    );
    let (pairs, streams) = build_pairs(&graph, count, pool, args.seed);
    let distinct: HashSet<usize> = pairs.iter().flat_map(|&(s, t)| [s, t]).collect();
    eprintln!(
        "graph: n = {}, m = {}, pairs = {} over {} distinct endpoints, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        pairs.len(),
        distinct.len(),
        args.quick
    );
    // ε low enough that the Eq. 17 switch keeps a multi-round SMM prefix (the
    // shareable part); threads = 1 inside each estimate so both sides
    // parallelize only across pairs/lanes, keeping the comparison fair.
    let config = ApproxConfig {
        epsilon,
        seed: args.seed,
        threads: 1,
        ..ApproxConfig::default()
    };
    // The serving configuration: a per-pair walk budget bounds AMC tail
    // latency (the unshareable part), exactly as a high-QPS endpoint would
    // cap it. Both sides run with the identical budget, so the comparison —
    // and the bit-identity gate — is estimator-vs-itself.
    let walk_budget = 4_000u64;
    let fanout = args.threads;

    // Bit-identity gate before any timing: the batched driver must hand back
    // exactly the solo bits for every pair.
    let (_, solo_bits) = run_solo(&ctx, config, walk_budget, &pairs, &streams, fanout);
    let (_, batch_bits, shared_matvec, lanes) =
        run_batched(&ctx, config, walk_budget, &pairs, &streams, fanout);
    let bit_identical = solo_bits == batch_bits;
    if !bit_identical {
        eprintln!("DETERMINISM FAILURE: batched GEER diverged from solo forks");
    }
    assert!(
        bit_identical,
        "batched GEER must be bit-identical to per-pair solo GEER"
    );
    eprintln!(
        "verified: {} pairs bit-identical; {} frontier lanes, shared matvec ops = {}",
        pairs.len(),
        lanes,
        shared_matvec
    );

    let mut best_solo = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    for _ in 0..reps {
        let (secs, bits) = run_solo(&ctx, config, walk_budget, &pairs, &streams, fanout);
        assert_eq!(bits, solo_bits);
        best_solo = best_solo.min(secs);
        let (secs, bits, _, _) = run_batched(&ctx, config, walk_budget, &pairs, &streams, fanout);
        assert_eq!(bits, solo_bits);
        best_batched = best_batched.min(secs);
    }

    let workloads = [
        WorkloadResult {
            name: "geer_solo_pairs".into(),
            pairs: pairs.len(),
            secs: best_solo,
        },
        WorkloadResult {
            name: "geer_batch_shared".into(),
            pairs: pairs.len(),
            secs: best_batched,
        },
    ];
    println!(
        "{:<20} {:>10} {:>16} {:>12}",
        "workload", "pairs", "pairs/sec", "avg ms"
    );
    for w in &workloads {
        println!(
            "{:<20} {:>10} {:>16.1} {:>12.4}",
            w.name,
            w.pairs,
            w.pairs_per_sec(),
            1e3 * w.secs / w.pairs as f64
        );
    }
    let speedup = best_solo / best_batched;
    println!("shared-frontier speedup: {speedup:.2}x over per-pair GEER");

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let entry = format!(
        "{{\n  \"bench\": \"geer_batch\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"social_network_like\", \"nodes\": {}, \"edges\": {}}},\n  \
         \"workload\": {{\"pairs\": {}, \"distinct_endpoints\": {}, \"hot_set\": {pool}, \
         \"epsilon\": {epsilon}, \"walk_budget\": {walk_budget}, \
         \"skew\": \"zipf1_hot_set_both_endpoints\"}},\n  \
         \"determinism\": {{\"checked\": \"solo_vs_batched\", \"bit_identical\": {bit_identical}}},\n  \
         \"metrics\": {{\"geer_batch_pairs_per_sec\": {:.1}, \"geer_solo_pairs_per_sec\": {:.1}, \
         \"geer_batch_speedup\": {:.3}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        pairs.len(),
        distinct.len(),
        workloads[1].pairs_per_sec(),
        workloads[0].pairs_per_sec(),
        speedup,
        workloads
            .iter()
            .map(|w| w.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_geer_batch.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
