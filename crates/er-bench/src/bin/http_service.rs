//! Production-shaped HTTP serving benchmark: real sockets, zipf-skewed pair
//! popularity, per-request latency quantiles, and a bursty-identical phase
//! that exercises attach-to-running dedup.
//!
//! Two phases:
//!
//! 1. **Zipf workload** — a pool of distinct pairs with zipf(1.0) popularity
//!    (hot pairs hit the cache/dedup/attach tiers, the cold tail exercises
//!    GEER) is driven by 4 keep-alive HTTP clients against an
//!    [`HttpServer`] at 1/2/4 workers. Every response's values are parsed
//!    back and must be **bit-identical** to an in-process
//!    `ResistanceService::submit` baseline — the wire adds zero drift. Each
//!    request's wall-clock latency is recorded; p50/p99 land in the
//!    trajectory (`http_w*_p50_ms` / `p99_ms` metrics, lower is better).
//! 2. **Bursty-identical phase** — one walk-heavy request is submitted over
//!    HTTP, and as soon as the (single) worker has it running, a burst of
//!    identical HTTP submits follows. They attach to the running execution
//!    (or are served from its just-published result); the phase repeats
//!    with fresh hot pairs until `/metrics` reports `attached_running > 0`,
//!    and all burst responses must carry identical bits.
//!
//! `BENCH_service.json` is the same append-only trajectory the
//! `service_throughput` bench writes; entries are distinguished by the
//! `"bench"` field and diffed by `scripts/bench_diff.py`.
//!
//! Run with `cargo run --release -p er-bench --bin http_service [--quick]
//! [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_core::ApproxConfig;
use er_graph::{generators, Graph};
use er_http::json::Json;
use er_http::{HttpConfig, HttpServer};
use er_service::{Query, Request, ResistanceServer, ResistanceService, ServerConfig, ServerStats};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// SplitMix64 — the workspace's deterministic bench-mixing PRNG.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A zipf(s = 1.0) popularity distribution over `pool` distinct pairs:
/// request i asks for pair of rank drawn with weight 1/rank.
fn build_requests(graph: &Graph, pool: usize, count: usize, seed: u64) -> Vec<Request> {
    let n = graph.num_nodes();
    let mut mix = Mix(seed | 1);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(pool);
    while pairs.len() < pool {
        let s = (mix.next() as usize) % n;
        let mut t = (mix.next() as usize) % n;
        if t == s {
            t = (t + 1) % n;
        }
        if !pairs.contains(&(s, t)) {
            pairs.push((s, t));
        }
    }
    // Inverse-CDF sampling over harmonic weights.
    let weights: Vec<f64> = (1..=pool).map(|rank| 1.0 / rank as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..count)
        .map(|_| {
            let mut u = mix.uniform() * total;
            let mut rank = 0usize;
            while rank + 1 < pool && u > weights[rank] {
                u -= weights[rank];
                rank += 1;
            }
            let (s, t) = pairs[rank];
            Request::new(Query::pair(s, t))
        })
        .collect()
}

fn fresh_service(graph: &Graph, seed: u64) -> ResistanceService {
    // threads = 1: measure the serving plane, not per-request fan-out.
    let config = ApproxConfig {
        epsilon: 0.2,
        seed,
        threads: 1,
        ..ApproxConfig::default()
    };
    ResistanceService::with_config(graph, config)
        .expect("ergodic graph")
        .with_planner_config(er_service::PlannerConfig::default().with_exact_node_threshold(256))
}

/// Minimal blocking HTTP/1.1 client: writes one request on a kept-alive
/// stream and reads the response (status, body) using Content-Length.
fn http_roundtrip(stream: &mut TcpStream, method: &str, target: &str, body: &str) -> (u16, String) {
    let request = format!(
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Head complete?
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("UTF-8 head");
            let status: u16 = head
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status line");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::to_string)
                })
                .and_then(|v| v.trim().parse().ok())
                .expect("Content-Length");
            let body_start = head_end + 4;
            while buf.len() < body_start + content_length {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "connection closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
                .expect("UTF-8 body");
            return (status, body);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn query_body(request: &Request) -> String {
    let Query::Pair { s, t } = request.query else {
        panic!("zipf workload is pair-shaped");
    };
    format!("{{\"query\":{{\"type\":\"pair\",\"s\":{s},\"t\":{t}}}}}")
}

/// Parses the `values` array of a `/query` response back to bit patterns.
fn value_bits(body: &str) -> Vec<u64> {
    let doc = Json::parse(body).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{body}"));
    doc.get("values")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("response without values: {body}"))
        .iter()
        .map(|v| v.as_f64().expect("numeric value").to_bits())
        .collect()
}

struct HttpRun {
    secs: f64,
    latencies_ms: Vec<f64>,
    bits: Vec<u64>,
}

/// Drives `requests` through `clients` keep-alive connections against a
/// fresh server at `workers` workers; returns wall time, per-request
/// latencies and per-request first-value bits in request order.
fn run_http(graph: &Graph, requests: &[Request], seed: u64, workers: usize) -> HttpRun {
    const CLIENTS: usize = 4;
    let handle = ResistanceServer::spawn(
        fresh_service(graph, seed),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    );
    let server = HttpServer::bind(handle, HttpConfig::default()).expect("bind");
    let addr = server.local_addr();
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mine: Vec<(usize, String)> = requests
                .iter()
                .enumerate()
                .filter(|(i, _)| i % CLIENTS == c)
                .map(|(i, r)| (i, query_body(r)))
                .collect();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut out = Vec::with_capacity(mine.len());
                for (i, body) in mine {
                    let sent = Instant::now();
                    let (status, reply) = http_roundtrip(&mut stream, "POST", "/query", &body);
                    let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(status, 200, "{reply}");
                    out.push((i, latency_ms, value_bits(&reply)[0]));
                }
                out
            })
        })
        .collect();
    let mut latencies_ms = vec![0.0; requests.len()];
    let mut bits = vec![0u64; requests.len()];
    for t in threads {
        for (i, latency, bit) in t.join().expect("client thread") {
            latencies_ms[i] = latency;
            bits[i] = bit;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    HttpRun {
        secs,
        latencies_ms,
        bits,
    }
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    let ix = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[ix]
}

/// The bursty-identical phase: returns the attach stats once a burst has
/// demonstrably attached to a running execution.
///
/// The leader's request uses the TP backend (which spends its walk budget
/// literally — no adaptive early stopping) so the execution is long enough
/// to attach to; the burst connections are opened and their threads parked
/// on a barrier *before* the leader submits, so once the leader is observed
/// running, releasing the barrier is only a few socket writes away.
fn run_bursty(graph: &Graph, seed: u64, quick: bool) -> (ServerStats, usize) {
    use std::sync::{Arc, Barrier};
    const BURST: usize = 4;
    // TP spends ~13 ms per 2M walks on the quick graph; tens of millions
    // give the (possibly single-CPU) scheduler a wide window in which the
    // burst can land behind the running execution.
    let walks = if quick { 8_000_000u64 } else { 20_000_000 };
    let n = graph.num_nodes();
    let mut mix = Mix(seed ^ 0xB0B5);
    for round in 0..20 {
        let s = (mix.next() as usize) % n;
        let mut t = (mix.next() as usize) % n;
        if t == s {
            t = (t + 1) % n;
        }
        let body = format!(
            "{{\"query\":{{\"type\":\"pair\",\"s\":{s},\"t\":{t}}},\
             \"accuracy\":{{\"type\":\"walk_budget\",\"walks\":{walks}}},\
             \"backend\":\"tp\"}}"
        );
        let handle = ResistanceServer::spawn(
            fresh_service(graph, seed),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let probe = handle.clone();
        let server = HttpServer::bind(handle, HttpConfig::default()).expect("bind");
        let addr = server.local_addr();

        // Arm the burst: connected and parked, one barrier wait from firing.
        let barrier = Arc::new(Barrier::new(BURST + 1));
        let burst: Vec<_> = (0..BURST)
            .map(|_| {
                let body = body.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    barrier.wait();
                    http_roundtrip(&mut stream, "POST", "/query", &body)
                })
            })
            .collect();

        let leader_body = body.clone();
        let leader = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            http_roundtrip(&mut stream, "POST", "/query", &leader_body)
        });
        // Wait until the worker has taken the leader's job (queued →
        // running), then release the burst at it.
        let running = loop {
            let stats = probe.stats();
            if stats.completed > 0 {
                break false;
            }
            if stats.submitted >= 1 && probe.pending() == 0 {
                break true;
            }
            std::thread::yield_now();
        };
        barrier.wait();
        let (leader_status, leader_reply) = leader.join().expect("leader");
        assert_eq!(leader_status, 200, "{leader_reply}");
        let leader_bits = value_bits(&leader_reply);
        for t in burst {
            let (status, reply) = t.join().expect("burst client");
            assert_eq!(status, 200, "{reply}");
            assert_eq!(
                value_bits(&reply),
                leader_bits,
                "burst responses must be bit-identical to the leader"
            );
        }
        // Scrape the counters over the wire, like a real metrics pipeline.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let (status, metrics) = http_roundtrip(&mut stream, "GET", "/metrics?format=json", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&metrics).expect("metrics JSON");
        let attached = doc
            .get("attached_running")
            .and_then(Json::as_u64)
            .expect("attached_running counter");
        let stats = server.handle().stats();
        server.shutdown();
        if attached > 0 && running {
            return (stats, round + 1);
        }
        eprintln!(
            "bursty round {round}: attached_running = {attached} (retrying with a fresh pair)"
        );
    }
    panic!("bursty phase never attached to a running execution in 20 rounds");
}

fn main() {
    let args = BenchArgs::from_env();
    let (nodes, pool, count) = if args.quick {
        (800usize, 24usize, 64usize)
    } else {
        (2_000, 60, 240)
    };
    eprintln!("generating social_network_like({nodes}) ...");
    let graph = generators::social_network_like(nodes, 10.0, 9).expect("generator");
    let requests = build_requests(&graph, pool, count, args.seed);
    eprintln!(
        "graph: n = {}, m = {}, distinct pairs = {pool}, requests = {}, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        requests.len(),
        args.quick
    );

    // In-process baseline: the bits every HTTP response must reproduce.
    let service = fresh_service(&graph, args.seed);
    let baseline: Vec<u64> = requests
        .iter()
        .map(|r| service.submit(r).expect("valid request").value().to_bits())
        .collect();
    drop(service);

    let worker_counts = [1usize, 2, 4];
    let mut bit_identical = true;
    let mut workload_json = Vec::new();
    let mut metrics = Vec::new();
    println!(
        "{:<12} {:>10} {:>16} {:>10} {:>10}",
        "workload", "requests", "requests/sec", "p50 ms", "p99 ms"
    );
    for &workers in &worker_counts {
        let run = run_http(&graph, &requests, args.seed, workers);
        if run.bits != baseline {
            bit_identical = false;
            eprintln!("DETERMINISM FAILURE: HTTP bits differ from in-process at {workers} workers");
        }
        let mut sorted = run.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let (p50, p99) = (quantile(&sorted, 0.50), quantile(&sorted, 0.99));
        let rps = requests.len() as f64 / run.secs;
        println!(
            "http_w{workers:<5} {:>10} {rps:>16.1} {p50:>10.3} {p99:>10.3}",
            requests.len()
        );
        workload_json.push(format!(
            "    {{\n      \"name\": \"http_w{workers}\",\n      \"requests\": {},\n      \
             \"throughput\": {{\"requests_per_sec\": {rps:.1}}},\n      \
             \"latency_ms\": {{\"p50\": {p50:.4}, \"p99\": {p99:.4}}}\n    }}",
            requests.len()
        ));
        metrics.push(format!("\"http_w{workers}_p50_ms\": {p50:.4}"));
        metrics.push(format!("\"http_w{workers}_p99_ms\": {p99:.4}"));
    }
    assert!(
        bit_identical,
        "HTTP responses must be bit-identical to in-process submits at every worker count"
    );
    println!("determinism: HTTP bits identical to in-process submit at 1/2/4 workers");

    let (burst_stats, rounds) = run_bursty(&graph, args.seed, args.quick);
    println!(
        "bursty phase: attached_running = {} after {rounds} round(s)",
        burst_stats.attached_running
    );
    metrics.push(format!(
        "\"attached_running\": {}",
        burst_stats.attached_running
    ));

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let entry = format!(
        "{{\n  \"bench\": \"http_service\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"social_network_like\", \"nodes\": {}, \"edges\": {}}},\n  \
         \"workload\": {{\"shape\": \"zipf_pair_popularity\", \"zipf_s\": 1.0, \
         \"distinct_pairs\": {pool}, \"requests\": {}}},\n  \
         \"determinism\": {{\"workers_checked\": [1, 2, 4], \"bit_identical\": {bit_identical}, \
         \"http_vs_in_process\": true}},\n  \
         \"metrics\": {{{}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        requests.len(),
        metrics.join(", "),
        workload_json.join(",\n")
    );
    // Shares BENCH_service.json with service_throughput; entries are keyed
    // by (git SHA, "bench") so the two benches never replace each other.
    let path = "BENCH_service.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
