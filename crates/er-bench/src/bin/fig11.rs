//! Fig. 11 — the refined maximum walk length (Eq. 6) vs Peng et al.'s (Eq. 5)
//! inside SMM.
//!
//! The paper runs SMM twice per dataset — once with each ℓ formula — at
//! ε ∈ {0.5, 0.05} on Facebook, DBLP, YouTube, Orkut and LiveJournal, and
//! shows the refined length is up to several times faster, most prominently on
//! high-average-degree graphs.
//!
//! Run with `cargo run -p er-bench --release --bin fig11`.

use er_bench::datasets;
use er_bench::harness::{run_method_on_workload, Workload};
use er_bench::methods::MethodKind;
use er_bench::{print_table, write_csv, BenchArgs};
use er_core::{ApproxConfig, GraphContext, Smm};
use er_graph::NodePairQuerySet;

const DEFAULT_EPSILONS: [f64; 2] = [0.5, 0.05];

fn main() {
    let args = BenchArgs::from_env();
    let default_sets = vec![
        "facebook-like".to_string(),
        "dblp-like".to_string(),
        "youtube-like".to_string(),
        "orkut-like".to_string(),
        "livejournal-like".to_string(),
    ];
    let names = args.datasets.clone().unwrap_or(default_sets);
    let specs = match datasets::select(Some(&names)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let epsilons = args.epsilons_or(&DEFAULT_EPSILONS);
    let mut runs = Vec::new();
    for spec in &specs {
        eprintln!("[{}] preparing dataset ...", spec.name);
        let prepared = spec.prepare(args.scale);
        let graph = &prepared.graph;
        let ctx = GraphContext::preprocess(graph).expect("registry datasets are ergodic");
        let workload = Workload::random_pairs(graph, args.queries, args.seed);
        // Report the two walk lengths themselves for one sample pair, so the
        // mechanism behind the timing difference is visible in the output.
        let sample = NodePairQuerySet::uniform(graph, 1, args.seed).pairs()[0];
        for &epsilon in &epsilons {
            let config = ApproxConfig {
                epsilon,
                seed: args.seed,
                ..ApproxConfig::default()
            };
            let refined_iters = Smm::new(&ctx, config).iterations_for(sample.s, sample.t);
            let peng_iters = Smm::with_peng_length(&ctx, config).iterations_for(sample.s, sample.t);
            eprintln!(
                "[{}] eps={epsilon}: refined ell = {refined_iters}, Peng et al. ell = {peng_iters}",
                spec.name
            );
            for method in [MethodKind::Smm, MethodKind::SmmPengLength] {
                let run =
                    run_method_on_workload(method, &ctx, config, spec.name, &workload, args.budget);
                eprintln!(
                    "[{}] eps={epsilon} {}: {:.3} ms/query",
                    spec.name,
                    method.label(),
                    run.avg_time_ms
                );
                runs.push(run);
            }
        }
    }
    print_table(
        "Fig. 11: SMM running time (ms), our ell (Eq. 6) vs Peng et al.'s ell (Eq. 5)",
        &runs,
    );
    match write_csv("fig11_ell_comparison", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
