//! Fig. 5 — running time vs ε for **edge** queries.
//!
//! Methods: GEER, AMC, SMM, MC2, HAY (the paper's Fig. 5 lineup).
//!
//! Run with `cargo run -p er-bench --release --bin fig5`.

use er_bench::methods::MethodKind;
use er_bench::sweeps::{epsilon_sweep, WorkloadKind};
use er_bench::{print_table, write_csv, BenchArgs};

const DEFAULT_EPSILONS: [f64; 4] = [0.5, 0.2, 0.1, 0.05];

fn main() {
    let args = BenchArgs::from_env();
    let epsilons = args.epsilons_or(&DEFAULT_EPSILONS);
    let runs = match epsilon_sweep(
        &args,
        &epsilons,
        &MethodKind::edge_query_lineup(),
        WorkloadKind::RandomEdges,
    ) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_table("Fig. 5: running time (ms) vs epsilon, edge queries", &runs);
    match write_csv("fig5_edge_query_time", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
