//! Serving-plane throughput benchmark: the `&self` `ResistanceService` under
//! a `ResistanceServer` worker pool, versus a plain sequential caller.
//!
//! The workload is a fixed, seeded set of ε-target pair requests on a graph
//! large enough that the planner routes them to GEER (the sampling path the
//! serving plane is built to amortize), with a controlled fraction of exact
//! repeats so the dedup/cache tiers see realistic pressure. Four client
//! threads submit through cloned `ServerHandle`s; the sweep measures
//! requests/sec at 1, 2 and 4 workers and cross-checks that every response
//! stays **bit-identical** to the sequential single-caller run — the serving
//! plane's headline invariant.
//!
//! The service's internal sampling fan-out is pinned to one thread so the
//! numbers isolate *server* concurrency (and stay comparable on any runner).
//!
//! `BENCH_service.json` (current directory — the repo root in CI) is an
//! **append-only trajectory** keyed by git SHA, exactly like
//! `BENCH_walk_kernel.json`; `scripts/bench_diff.py` diffs the newest two
//! entries. Override the key with `BENCH_GIT_SHA=<sha>`.
//!
//! Run with `cargo run --release -p er-bench --bin service_throughput
//! [--quick] [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_core::ApproxConfig;
use er_graph::{generators, Graph};
use er_service::{Query, Request, ResistanceServer, ResistanceService, ServerConfig};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Deterministic request mix: seeded pair selection with ~25% repeats of an
/// earlier request (dedup/cache pressure).
fn build_requests(graph: &Graph, count: usize, seed: u64) -> Vec<Request> {
    let n = graph.num_nodes();
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut requests: Vec<Request> = Vec::with_capacity(count);
    for i in 0..count {
        if i > 4 && next() % 4 == 0 {
            let j = (next() as usize) % requests.len();
            requests.push(requests[j].clone());
        } else {
            let s = (next() as usize) % n;
            let mut t = (next() as usize) % n;
            if t == s {
                t = (t + 1) % n;
            }
            requests.push(Request::new(Query::pair(s, t)));
        }
    }
    requests
}

fn fresh_service(graph: &Graph, seed: u64) -> ResistanceService {
    // threads = 1: measure server workers, not per-request fan-out.
    let config = ApproxConfig {
        epsilon: 0.2,
        seed,
        threads: 1,
        ..ApproxConfig::default()
    };
    ResistanceService::with_config(graph, config)
        .expect("ergodic graph")
        // Route ε pairs to GEER in both quick (800-node) and full (2000-node)
        // mode, so the sweep measures the sampling path the server amortizes.
        .with_planner_config(er_service::PlannerConfig::default().with_exact_node_threshold(256))
}

/// One sequential pass; returns (seconds, per-request value bits).
fn run_sequential(graph: &Graph, requests: &[Request], seed: u64) -> (f64, Vec<u64>) {
    let service = fresh_service(graph, seed);
    let start = Instant::now();
    let bits = requests
        .iter()
        .map(|r| service.submit(r).expect("valid request").value().to_bits())
        .collect();
    (start.elapsed().as_secs_f64(), bits)
}

/// One server pass at `workers` workers with 4 submitting clients; returns
/// (seconds, per-request value bits in request order).
fn run_server(graph: &Graph, requests: &[Request], seed: u64, workers: usize) -> (f64, Vec<u64>) {
    const CLIENTS: usize = 4;
    let handle = ResistanceServer::spawn(
        fresh_service(graph, seed),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    );
    let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; requests.len()]));
    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let handle = handle.clone();
            let results = results.clone();
            let mine: Vec<(usize, Request)> = requests
                .iter()
                .enumerate()
                .filter(|(i, _)| i % CLIENTS == c)
                .map(|(i, r)| (i, r.clone()))
                .collect();
            std::thread::spawn(move || {
                let tickets: Vec<_> = mine
                    .into_iter()
                    .map(|(i, r)| (i, handle.submit(r).expect("admitted")))
                    .collect();
                for (i, ticket) in tickets {
                    let value = ticket.wait().expect("served").value().to_bits();
                    results.lock().unwrap()[i] = value;
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let secs = start.elapsed().as_secs_f64();
    handle.shutdown();
    let bits = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    (secs, bits)
}

struct WorkloadResult {
    name: String,
    requests: usize,
    secs: f64,
}

impl WorkloadResult {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.secs
    }
    fn avg_ms(&self) -> f64 {
        1e3 * self.secs / self.requests as f64
    }
    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"requests\": {},\n      \
             \"throughput\": {{\"requests_per_sec\": {:.1}, \"avg_ms\": {:.4}}}\n    }}",
            self.name,
            self.requests,
            self.requests_per_sec(),
            self.avg_ms()
        )
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let (nodes, count, reps) = if args.quick {
        (800usize, 48usize, 2usize)
    } else {
        (2_000, 200, 3)
    };
    eprintln!("generating social_network_like({nodes}) ...");
    let graph = generators::social_network_like(nodes, 10.0, 9).expect("generator");
    let requests = build_requests(&graph, count, args.seed);
    eprintln!(
        "graph: n = {}, m = {}, requests = {}, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        requests.len(),
        args.quick
    );

    fn best(reps: usize, mut run: impl FnMut() -> (f64, Vec<u64>)) -> (f64, Vec<u64>) {
        let mut best_secs = f64::INFINITY;
        let mut bits = Vec::new();
        for _ in 0..reps {
            let (secs, b) = run();
            best_secs = best_secs.min(secs);
            bits = b;
        }
        (best_secs, bits)
    }

    let seed = args.seed;
    let (seq_secs, baseline) = best(reps, || run_sequential(&graph, &requests, seed));
    let mut workloads = vec![WorkloadResult {
        name: "direct_sequential".into(),
        requests: requests.len(),
        secs: seq_secs,
    }];
    let worker_counts = [1usize, 2, 4];
    let mut bit_identical = true;
    for &workers in &worker_counts {
        let (secs, bits) = best(reps, || run_server(&graph, &requests, seed, workers));
        if bits != baseline {
            bit_identical = false;
            eprintln!("DETERMINISM FAILURE at {workers} workers");
        }
        workloads.push(WorkloadResult {
            name: format!("server_w{workers}"),
            requests: requests.len(),
            secs,
        });
    }

    println!(
        "{:<20} {:>10} {:>16} {:>12}",
        "workload", "requests", "requests/sec", "avg ms"
    );
    for w in &workloads {
        println!(
            "{:<20} {:>10} {:>16.1} {:>12.4}",
            w.name,
            w.requests,
            w.requests_per_sec(),
            w.avg_ms()
        );
    }
    assert!(
        bit_identical,
        "server responses must be bit-identical to the sequential run at every worker count"
    );
    println!("determinism: responses bit-identical at 1/2/4 workers vs sequential");

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let entry = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"social_network_like\", \"nodes\": {}, \"edges\": {}}},\n  \
         \"determinism\": {{\"workers_checked\": [1, 2, 4], \"bit_identical\": {bit_identical}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        workloads
            .iter()
            .map(|w| w.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_service.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
