//! Sharded-serving benchmark: a zipf pair workload through the
//! [`er_shard::ShardedService`] front door at 1, 2 and 4 shards.
//!
//! Before any timing, the intra-shard contract is asserted: routed answers
//! for pairs whose endpoints share a shard must be **bit-identical** to an
//! unsharded `ResistanceService` over the same induced subgraph. Timing
//! then measures end-to-end pairs/sec per shard count on fresh services
//! (cold caches), and the cross-shard story is recorded alongside: mean
//! stitched-interval width and the escalation rate under the default width
//! threshold.
//!
//! `BENCH_shard.json` (current directory — the repo root in CI) is an
//! **append-only trajectory** keyed by git SHA, exactly like
//! `BENCH_service.json`; `scripts/bench_diff.py` diffs the newest two
//! entries, including the headline metric `shard_pairs_per_sec_4`.
//!
//! Run with `cargo run --release -p er-bench --bin shard_scale
//! [--quick] [--seed N]`.

use er_bench::args::BenchArgs;
use er_bench::trajectory::{append_to_trajectory, git_sha};
use er_core::ApproxConfig;
use er_graph::transform::induced_subgraph;
use er_graph::{generators, Graph};
use er_service::{Accuracy, Query, Request, ResistanceService};
use er_shard::{ShardConfig, ShardedService};
use std::collections::HashSet;
use std::time::Instant;

/// One SplitMix64 step (the workspace's seeding primitive).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf(1) rank sampler via inverse CDF, as in the other serving benches:
/// a few popular nodes soak up most of the traffic.
struct ZipfNodes {
    cumulative: Vec<f64>,
}

impl ZipfNodes {
    fn new(n: usize) -> ZipfNodes {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / (rank as f64 + 1.0);
            cumulative.push(total);
        }
        ZipfNodes { cumulative }
    }

    fn draw(&self, state: &mut u64) -> usize {
        let total = *self.cumulative.last().expect("non-empty graph");
        let u = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// `count` distinct pairs with zipf-skewed endpoints spread over the graph.
fn build_pairs(graph: &Graph, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let n = graph.num_nodes();
    let zipf = ZipfNodes::new(n);
    // Spread ranks over the node-id space so popularity is not correlated
    // with the partitioner's shard layout.
    let spread: Vec<usize> = (0..n).map(|rank| (rank * 31 + 17) % n).collect();
    let mut state = seed | 1;
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let s = spread[zipf.draw(&mut state)];
        let t = spread[zipf.draw(&mut state)];
        if s == t || !seen.insert((s.min(t), s.max(t))) {
            continue;
        }
        pairs.push((s, t));
    }
    pairs
}

/// Asserts the intra-shard contract for one shard count: routed answers are
/// bit-identical to an unsharded service over the same induced subgraph.
/// Returns the number of pairs checked.
fn assert_intra_bit_identity(
    graph: &Graph,
    shards: usize,
    approx: ApproxConfig,
    accuracy: Accuracy,
    pairs: &[(usize, usize)],
    cap: usize,
) -> usize {
    let sharded = ShardedService::build(graph, ShardConfig::with_shards(shards), approx)
        .expect("sharded build");
    let router = sharded.router();
    let partition = sharded.partition().clone();
    let mut checked = 0;
    for p in 0..partition.num_parts {
        let nodes = partition.part_nodes(p);
        let (subgraph, map) = induced_subgraph(graph, &nodes).expect("induced subgraph");
        let reference = ResistanceService::with_config(&subgraph, approx).expect("reference");
        for &(s, t) in pairs {
            if checked >= cap * partition.num_parts {
                break;
            }
            if router.shard_of(s) != p || router.shard_of(t) != p {
                continue;
            }
            let routed = sharded
                .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))
                .expect("routed pair");
            assert_eq!(routed.backend, "SHARD");
            let (ls, lt) = (map.local_of(s).unwrap(), map.local_of(t).unwrap());
            let direct = reference
                .submit(&Request::new(Query::pair(ls, lt)).with_accuracy(accuracy))
                .expect("reference pair");
            assert_eq!(
                routed.value().to_bits(),
                direct.value().to_bits(),
                "intra-shard pair ({s}, {t}) diverged from the unsharded service at k = {shards}"
            );
            checked += 1;
        }
    }
    checked
}

struct ShardResult {
    shards: usize,
    pairs: usize,
    secs: f64,
    /// Mean stitched-interval width over the workload's cross-shard pairs.
    mean_width: f64,
    /// Fraction of cross-shard pairs that escalated to an exact solve.
    escalation_rate: f64,
    cross_pairs: u64,
}

impl ShardResult {
    fn pairs_per_sec(&self) -> f64 {
        self.pairs as f64 / self.secs
    }
    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"shard_{}\",\n      \"pairs\": {},\n      \
             \"throughput\": {{\"pairs_per_sec\": {:.1}}},\n      \
             \"cross_shard\": {{\"pairs\": {}, \"mean_width\": {:.6}, \
             \"escalation_rate\": {:.4}}}\n    }}",
            self.shards,
            self.pairs,
            self.pairs_per_sec(),
            self.cross_pairs,
            self.mean_width,
            self.escalation_rate
        )
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let (nodes, count, reps) = if args.quick {
        (400usize, 64usize, 2usize)
    } else {
        (900, 160, 3)
    };
    eprintln!("generating watts_strogatz({nodes}, 6, 0.1) ...");
    let graph = generators::watts_strogatz(nodes, 6, 0.1, 9).expect("generator");
    let pairs = build_pairs(&graph, count, args.seed);
    eprintln!(
        "graph: n = {}, m = {}, pairs = {}, quick = {}",
        graph.num_nodes(),
        graph.num_edges(),
        pairs.len(),
        args.quick
    );
    let approx = ApproxConfig {
        epsilon: 0.2,
        seed: args.seed,
        threads: args.threads,
        ..ApproxConfig::default()
    };
    let accuracy = Accuracy::Epsilon {
        eps: approx.epsilon,
        delta: approx.delta,
    };
    let shard_counts = [1usize, 2, 4];

    // The contract gate, before any timing: intra-shard routing must be
    // invisible (bit-identical to the unsharded service per subgraph).
    let mut bit_identical = true;
    for &k in &shard_counts[1..] {
        let checked = assert_intra_bit_identity(&graph, k, approx, accuracy, &pairs, 12);
        eprintln!("verified: {checked} intra-shard pairs bit-identical at k = {k}");
        bit_identical &= checked > 0;
    }

    let mut results = Vec::new();
    for &k in &shard_counts {
        // Fresh services per rep: cold caches, so pairs/sec measures the
        // serving plane, not the facade cache.
        let mut best = f64::INFINITY;
        let mut stats = er_shard::RouterStats::default();
        let mut mean_width = 0.0;
        let mut cross_pairs = 0u64;
        for rep in 0..reps {
            let sharded = ShardedService::build(&graph, ShardConfig::with_shards(k), approx)
                .expect("sharded build");
            let start = Instant::now();
            for &(s, t) in &pairs {
                sharded
                    .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))
                    .expect("routed pair");
            }
            best = best.min(start.elapsed().as_secs_f64());
            if rep == 0 {
                stats = sharded.router().stats();
                let widths: Vec<f64> = pairs
                    .iter()
                    .filter_map(|&(s, t)| sharded.router().cross_bounds(s, t))
                    .map(|b| b.width())
                    .collect();
                cross_pairs = widths.len() as u64;
                if !widths.is_empty() {
                    mean_width = widths.iter().sum::<f64>() / widths.len() as f64;
                }
            }
        }
        let escalation_rate = if stats.cross + stats.escalated > 0 {
            stats.escalated as f64 / (stats.cross + stats.escalated) as f64
        } else {
            0.0
        };
        eprintln!(
            "k = {k}: {:.1} pairs/sec, {} cross-shard (mean width {:.4}, {:.0}% escalated)",
            pairs.len() as f64 / best,
            cross_pairs,
            mean_width,
            100.0 * escalation_rate
        );
        results.push(ShardResult {
            shards: k,
            pairs: pairs.len(),
            secs: best,
            mean_width,
            escalation_rate,
            cross_pairs,
        });
    }

    println!(
        "{:<12} {:>10} {:>16} {:>12} {:>12}",
        "shards", "pairs", "pairs/sec", "mean width", "escalated"
    );
    for r in &results {
        println!(
            "{:<12} {:>10} {:>16.1} {:>12.4} {:>11.0}%",
            r.shards,
            r.pairs,
            r.pairs_per_sec(),
            r.mean_width,
            100.0 * r.escalation_rate
        );
    }

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let sha = git_sha();
    let metrics: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "\"shard_pairs_per_sec_{}\": {:.1}",
                r.shards,
                r.pairs_per_sec()
            )
        })
        .collect();
    let entry = format!(
        "{{\n  \"bench\": \"shard_scale\",\n  \"git_sha\": \"{sha}\",\n  \
         \"created_unix\": {created},\n  \
         \"quick\": {},\n  \"seed\": {},\n  \
         \"graph\": {{\"model\": \"watts_strogatz\", \"nodes\": {}, \"edges\": {}}},\n  \
         \"workload\": {{\"pairs\": {}, \"epsilon\": {}, \"skew\": \"zipf1_spread\"}},\n  \
         \"determinism\": {{\"checked\": \"sharded_vs_unsharded_intra\", \
         \"bit_identical\": {bit_identical}}},\n  \
         \"metrics\": {{{}}},\n  \
         \"workloads\": [\n{}\n  ]\n}}",
        args.quick,
        args.seed,
        graph.num_nodes(),
        graph.num_edges(),
        pairs.len(),
        approx.epsilon,
        metrics.join(", "),
        results
            .iter()
            .map(|r| r.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = "BENCH_shard.json";
    let total = append_to_trajectory(path, &entry, &sha);
    println!("appended entry {sha} to {path} ({total} entries in the trajectory)");
}
