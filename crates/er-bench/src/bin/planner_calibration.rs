//! Planner-threshold calibration sweep: the CG-vs-GEER crossover per graph
//! family.
//!
//! The service planner answers ε-target pair queries exactly (one CG solve)
//! on graphs at or below `PlannerConfig::exact_node_threshold`, and by GEER
//! sampling above it. That threshold (and `repeated_source_threshold`) was
//! tuned blind; this sweep measures the actual per-pair latency of both
//! backends — forced through the service front door, so the timing includes
//! everything a real request pays — across sizes and graph families, and
//! reports the empirical crossover so future PRs can tune
//! [`PlannerConfig`](er_service::PlannerConfig) from data.
//!
//! Output: one table row per (family, n) with per-pair milliseconds for
//! EXACT-CG and GEER and the cheaper choice, then a per-family crossover
//! summary (the smallest measured n at which GEER wins; `>max` when CG wins
//! everywhere measured — meaning the threshold could be raised).
//!
//! Run with `cargo run --release -p er-bench --bin planner_calibration
//! [--quick] [--seed N] [--epsilons 0.1,0.2]`.

use er_bench::args::BenchArgs;
use er_core::ApproxConfig;
use er_graph::{generators, Graph};
use er_service::{Accuracy, BackendChoice, Query, Request, ResistanceService};
use std::time::Instant;

struct Family {
    name: &'static str,
    build: fn(usize, u64) -> Graph,
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "social",
            build: |n, seed| generators::social_network_like(n, 10.0, seed).expect("generator"),
        },
        Family {
            name: "ba",
            build: |n, seed| generators::barabasi_albert(n, 5, seed).expect("generator"),
        },
        Family {
            // Small-world ring lattice (k = 4 keeps triangles, so the graph
            // is non-bipartite as preprocessing requires).
            name: "smallworld",
            build: |n, seed| generators::watts_strogatz(n, 4, 0.1, seed).expect("generator"),
        },
    ]
}

/// Mean per-pair milliseconds for `backend` on `pairs`, forced through the
/// service (a fresh service per measurement so no cache/memoization leaks
/// between backends).
fn per_pair_ms(
    graph: &Graph,
    config: ApproxConfig,
    eps: f64,
    backend: BackendChoice,
    pairs: &[(usize, usize)],
    reps: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let service = ResistanceService::with_config(graph, config).expect("ergodic graph");
        let start = Instant::now();
        for &(s, t) in pairs {
            let request = Request::new(Query::pair(s, t))
                .with_accuracy(Accuracy::epsilon(eps))
                .with_backend(backend);
            let _ = service.submit(&request).expect("valid pair");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    1e3 * best / pairs.len() as f64
}

fn main() {
    let args = BenchArgs::from_env();
    let sizes: Vec<usize> = if args.quick {
        vec![256, 1024, 2048]
    } else {
        vec![256, 512, 1024, 2048, 4096]
    };
    let epsilons = args.epsilons_or(&[0.1]);
    let pairs_per_point = if args.quick { 4 } else { 10 };
    let reps = if args.quick { 1 } else { 2 };
    let config = ApproxConfig {
        seed: args.seed,
        threads: 1, // single-threaded: calibrate the per-query constant
        ..ApproxConfig::default()
    };

    println!(
        "{:<8} {:>6} {:>6} {:>12} {:>12} {:>9}",
        "family", "n", "eps", "cg ms/pair", "geer ms/pair", "winner"
    );
    for eps in &epsilons {
        for family in families() {
            let mut crossover: Option<usize> = None;
            for &n in &sizes {
                let graph = (family.build)(n, args.seed ^ n as u64);
                let nn = graph.num_nodes();
                let pairs: Vec<(usize, usize)> = (0..pairs_per_point)
                    .map(|i| {
                        let s = (i * 131) % nn;
                        let t = (s + nn / 2 + i) % nn;
                        if s == t {
                            (s, (t + 1) % nn)
                        } else {
                            (s, t)
                        }
                    })
                    .collect();
                let cg = per_pair_ms(&graph, config, *eps, BackendChoice::ExactCg, &pairs, reps);
                let geer = per_pair_ms(&graph, config, *eps, BackendChoice::Geer, &pairs, reps);
                let winner = if geer < cg { "GEER" } else { "EXACT-CG" };
                if geer < cg && crossover.is_none() {
                    crossover = Some(nn);
                }
                println!(
                    "{:<8} {:>6} {:>6.2} {:>12.3} {:>12.3} {:>9}",
                    family.name, nn, eps, cg, geer, winner
                );
            }
            match crossover {
                Some(n) => println!(
                    "==> {} @ eps {:.2}: GEER first wins at n = {} \
                     (candidate exact_node_threshold)",
                    family.name, eps, n
                ),
                None => println!(
                    "==> {} @ eps {:.2}: EXACT-CG wins at every measured size \
                     (exact_node_threshold could be raised past {})",
                    family.name,
                    eps,
                    sizes.last().unwrap()
                ),
            }
        }
    }
    println!(
        "\ncurrent defaults: exact_node_threshold = {}, repeated_source_threshold = {}",
        er_service::PlannerConfig::default().exact_node_threshold,
        er_service::PlannerConfig::default().repeated_source_threshold
    );
}
