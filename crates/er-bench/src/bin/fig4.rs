//! Fig. 4 — running time vs ε for **random** pairwise queries.
//!
//! Methods: GEER, AMC, SMM, TP, TPC, RP, EXACT (the paper's Fig. 4 lineup).
//! Cells are average milliseconds per query; `OOM` marks the out-of-memory
//! exclusions the paper reports for EXACT/RP on larger graphs, `*` marks
//! sweeps cut short by the time budget (the analogue of the one-day timeout).
//!
//! Run with `cargo run -p er-bench --release --bin fig4`
//! (add `-- --scale paper --queries 100 --budget-secs 600` to approach the
//! paper's settings).

use er_bench::methods::MethodKind;
use er_bench::sweeps::{epsilon_sweep, WorkloadKind};
use er_bench::{print_table, write_csv, BenchArgs};

/// The ε values of the paper's Fig. 4.
const PAPER_EPSILONS: [f64; 6] = [0.5, 0.2, 0.1, 0.05, 0.02, 0.01];
/// Default sweep at small scale (the two smallest ε are where TP/TPC/SMM blow
/// up; they remain reachable via `--epsilons`).
const DEFAULT_EPSILONS: [f64; 4] = [0.5, 0.2, 0.1, 0.05];

fn main() {
    let args = BenchArgs::from_env();
    let epsilons: Vec<f64> = if args.epsilons.is_some() {
        args.epsilons_or(&PAPER_EPSILONS)
    } else {
        DEFAULT_EPSILONS.to_vec()
    };
    let runs = match epsilon_sweep(
        &args,
        &epsilons,
        &MethodKind::random_query_lineup(),
        WorkloadKind::RandomPairs,
    ) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_table(
        "Fig. 4: running time (ms) vs epsilon, random queries",
        &runs,
    );
    match write_csv("fig4_random_query_time", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
