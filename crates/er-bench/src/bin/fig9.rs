//! Fig. 9 — effect of the batch count τ on AMC and GEER at ε = 0.02.
//!
//! Identical sweep to Fig. 8 at a much tighter error threshold, where AMC's
//! sample counts explode and the adaptive batching matters most.
//!
//! Run with `cargo run -p er-bench --release --bin fig9`
//! (consider `-- --queries 5 --budget-secs 30`; the small ε makes AMC slow,
//! exactly as in the paper).

use er_bench::sweeps::tau_sweep;
use er_bench::{print_table, write_csv, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let runs = match tau_sweep(&args, 0.02) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_table("Fig. 9: running time (ms) vs tau (epsilon = 0.02)", &runs);
    match write_csv("fig9_tau_eps002", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
