//! Fig. 7 — average absolute error vs ε for **edge** queries.
//!
//! Same sweep as Fig. 5 but reporting measured error against ground truth.
//!
//! Run with `cargo run -p er-bench --release --bin fig7`.

use er_bench::methods::MethodKind;
use er_bench::report::print_error_table;
use er_bench::sweeps::{epsilon_sweep, WorkloadKind};
use er_bench::{write_csv, BenchArgs};

const DEFAULT_EPSILONS: [f64; 4] = [0.5, 0.2, 0.1, 0.05];

fn main() {
    let args = BenchArgs::from_env();
    let epsilons = args.epsilons_or(&DEFAULT_EPSILONS);
    let runs = match epsilon_sweep(
        &args,
        &epsilons,
        &MethodKind::edge_query_lineup(),
        WorkloadKind::RandomEdges,
    ) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    print_error_table(
        "Fig. 7: average absolute error vs epsilon, edge queries",
        &runs,
    );
    match write_csv("fig7_edge_query_error", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
