//! Fig. 10 — effect of GEER's switch point ℓ_b.
//!
//! The paper removes the greedy rule (Eq. 17) and fixes ℓ_b = ℓ*_b ± x for
//! x ∈ {0, 2, 4, 6}, showing that the greedy choice ℓ*_b sits at (or next to)
//! the minimum of the cost curve: shrinking ℓ_b degrades GEER towards AMC
//! (more walks), growing it pays for ever-denser matrix–vector products.
//!
//! Datasets: Facebook-, DBLP-, LiveJournal- and Orkut-like; ε ∈ {0.2, 0.05, 0.01}.
//!
//! Run with `cargo run -p er-bench --release --bin fig10`.

use er_bench::datasets;
use er_bench::harness::{run_estimator_on_workload, Workload};
use er_bench::{print_table, write_csv, BenchArgs};
use er_core::geer::SwitchRule;
use er_core::{ApproxConfig, Geer, GraphContext};

const OFFSETS: [isize; 7] = [-6, -4, -2, 0, 2, 4, 6];
const DEFAULT_EPSILONS: [f64; 3] = [0.2, 0.05, 0.01];

fn main() {
    let args = BenchArgs::from_env();
    let default_sets = vec![
        "facebook-like".to_string(),
        "dblp-like".to_string(),
        "livejournal-like".to_string(),
        "orkut-like".to_string(),
    ];
    let names = args.datasets.clone().unwrap_or(default_sets);
    let specs = match datasets::select(Some(&names)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let epsilons = args.epsilons_or(&DEFAULT_EPSILONS);
    let mut runs = Vec::new();
    for spec in &specs {
        eprintln!("[{}] preparing dataset ...", spec.name);
        let prepared = spec.prepare(args.scale);
        let graph = &prepared.graph;
        let ctx = GraphContext::preprocess(graph).expect("registry datasets are ergodic");
        let workload = Workload::random_pairs(graph, args.queries, args.seed);
        for &epsilon in &epsilons {
            let config = ApproxConfig {
                epsilon,
                seed: args.seed,
                ..ApproxConfig::default()
            };
            for &offset in &OFFSETS {
                let label = if offset == 0 {
                    "GEER(lb*)".to_string()
                } else {
                    format!("GEER(lb*{offset:+})")
                };
                let mut geer =
                    Geer::new(&ctx, config).with_switch_rule(SwitchRule::GreedyOffset(offset));
                let run = run_estimator_on_workload(
                    &mut geer,
                    &label,
                    epsilon,
                    spec.name,
                    &workload,
                    args.budget,
                );
                eprintln!(
                    "[{}] eps={epsilon} {label}: {:.3} ms/query",
                    spec.name, run.avg_time_ms
                );
                runs.push(run);
            }
        }
    }
    print_table(
        "Fig. 10: running time (ms) vs ell_b offset from the greedy choice",
        &runs,
    );
    match write_csv("fig10_lb_offset", &runs) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write csv: {e}"),
    }
}
