//! Table 3 — dataset statistics.
//!
//! Prints, for every dataset in the registry, the statistics of the graph the
//! harness will actually use (synthetic substitute or real edge list if
//! present under `data/`), alongside the original SNAP numbers from the paper
//! for comparison.
//!
//! Run with `cargo run -p er-bench --release --bin table3 [-- --scale paper]`.

use er_bench::{datasets, BenchArgs};

fn main() {
    let args = BenchArgs::from_env();
    let specs = match datasets::select(args.datasets.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "{:<20} {:>12} {:>14} {:>10} | {:>10} {:>12} {:>10} {:>8}",
        "dataset (ours)",
        "#nodes",
        "#edges",
        "avg.deg",
        "orig nodes",
        "orig edges",
        "orig deg",
        "source"
    );
    let mut csv_rows = Vec::new();
    for spec in specs {
        let prepared = spec.prepare(args.scale);
        let stats = prepared.stats();
        println!(
            "{:<20} {:>12} {:>14} {:>10.2} | {:>10} {:>12} {:>10.2} {:>8}",
            spec.name,
            stats.num_nodes,
            stats.num_edges,
            stats.average_degree,
            spec.original_nodes,
            spec.original_edges,
            spec.avg_degree,
            if prepared.loaded_from_file {
                "file"
            } else {
                "synthetic"
            },
        );
        csv_rows.push(format!(
            "{},{},{},{:.4},{},{},{:.2},{}",
            spec.name,
            stats.num_nodes,
            stats.num_edges,
            stats.average_degree,
            spec.original_nodes,
            spec.original_edges,
            spec.avg_degree,
            prepared.loaded_from_file
        ));
    }
    let dir = er_bench::report::experiments_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join("table3.csv");
    let header = "dataset,nodes,edges,avg_degree,original_nodes,original_edges,original_avg_degree,loaded_from_file";
    std::fs::write(&path, format!("{header}\n{}\n", csv_rows.join("\n"))).expect("write csv");
    println!("\nwrote {}", path.display());
}
