//! The benchmark dataset registry.
//!
//! Table 3 of the paper lists six SNAP social networks. Shipping or
//! downloading them is out of scope for this reproduction, so each entry here
//! is a *synthetic substitute*: a [`generators::community_social_network`]
//! graph (preferential-attachment communities joined by thin bridges) whose
//! **average degree matches the original** — the property the algorithms'
//! relative performance actually depends on (AMC/GEER's complexity is
//! `O(1/(ε²d²)·log³(1/(εd)))`, independent of `n`) — and whose community
//! structure pushes λ = max{|λ₂|, |λₙ|} into the 0.96–0.995 range observed on
//! real social networks, so the maximum-walk-length formulas behave
//! realistically. Node counts are scaled down to laptop size; the `paper`
//! scale uses larger graphs where that stays tractable.
//!
//! If a real edge list is placed at `data/<name>.txt` (SNAP format), it is
//! loaded instead of generating the substitute, so the harness runs unchanged
//! against the original datasets.

use crate::args::Scale;
use er_graph::{analysis, generators, io, Graph, GraphStats};
use std::path::{Path, PathBuf};

/// A named dataset in the registry.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Registry name (e.g. `facebook-like`).
    pub name: &'static str,
    /// Name of the SNAP dataset this stands in for.
    pub original: &'static str,
    /// Original node count (Table 3), for reference.
    pub original_nodes: usize,
    /// Original edge count (Table 3), for reference.
    pub original_edges: usize,
    /// Average degree of the original (Table 3) — matched by the substitute.
    pub avg_degree: f64,
    /// Nodes in the synthetic substitute at `small` scale.
    pub small_nodes: usize,
    /// Nodes in the synthetic substitute at `paper` scale.
    pub paper_nodes: usize,
    /// Number of communities in the synthetic substitute.
    pub communities: usize,
    /// Fraction of the edge budget spent on inter-community bridges (controls
    /// how close λ gets to 1; thinner bridges mean slower mixing).
    pub inter_fraction: f64,
    /// Generation seed.
    pub seed: u64,
}

/// A dataset that has been generated (or loaded) and validated.
#[derive(Clone, Debug)]
pub struct PreparedDataset {
    /// The spec it was built from.
    pub spec: DatasetSpec,
    /// The graph (largest connected component, guaranteed non-bipartite).
    pub graph: Graph,
    /// Whether it was loaded from a real edge list under `data/`.
    pub loaded_from_file: bool,
}

impl DatasetSpec {
    /// Number of nodes the substitute uses at the given scale.
    pub fn nodes_at(&self, scale: Scale) -> usize {
        match scale {
            Scale::Small => self.small_nodes,
            Scale::Paper => self.paper_nodes,
        }
    }

    /// Path a real edge list would be loaded from.
    pub fn data_path(&self) -> PathBuf {
        Path::new("data").join(format!("{}.txt", self.name))
    }

    /// Loads the real dataset if `data/<name>.txt` exists, otherwise generates
    /// the synthetic substitute. The result is reduced to its largest
    /// connected component and patched (one extra triangle edge) if that
    /// component happens to be bipartite, so the ergodicity assumption holds.
    pub fn prepare(&self, scale: Scale) -> PreparedDataset {
        let path = self.data_path();
        let (graph, loaded) = if path.exists() {
            match io::read_edge_list(&path) {
                Ok(g) => (g, true),
                Err(err) => {
                    eprintln!(
                        "warning: failed to load {} ({err}); falling back to synthetic substitute",
                        path.display()
                    );
                    (self.generate(scale), false)
                }
            }
        } else {
            (self.generate(scale), false)
        };
        let (mut lcc, _) = analysis::largest_connected_component(&graph);
        if analysis::is_bipartite(&lcc) {
            // Close one triangle to break bipartiteness (does not measurably
            // change any statistic on these graph families).
            let (u, v) = lcc.edges().next().expect("non-empty component");
            let w = lcc
                .neighbors(v)
                .iter()
                .copied()
                .find(|&w| w != u)
                .unwrap_or(u);
            lcc = er_graph::GraphBuilder::from_edges(
                lcc.num_nodes(),
                lcc.edges().chain(std::iter::once((u, w))),
            )
            .build()
            .expect("patched graph is valid");
        }
        PreparedDataset {
            spec: self.clone(),
            graph: lcc,
            loaded_from_file: loaded,
        }
    }

    fn generate(&self, scale: Scale) -> Graph {
        generators::community_social_network(
            self.nodes_at(scale),
            self.avg_degree,
            self.communities,
            self.inter_fraction,
            self.seed,
        )
        .expect("synthetic dataset generation cannot fail for n > 0")
    }
}

impl PreparedDataset {
    /// Dataset statistics (the row this dataset contributes to Table 3).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph)
    }
}

/// The full registry, in the order of Table 3.
pub fn registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "facebook-like",
            original: "Facebook",
            original_nodes: 4_039,
            original_edges: 88_234,
            avg_degree: 43.69,
            small_nodes: 2_000,
            paper_nodes: 4_039,
            communities: 8,
            inter_fraction: 0.10,
            seed: 0xfb,
        },
        DatasetSpec {
            name: "dblp-like",
            original: "DBLP",
            original_nodes: 317_080,
            original_edges: 1_049_866,
            avg_degree: 6.62,
            small_nodes: 4_000,
            paper_nodes: 50_000,
            communities: 16,
            inter_fraction: 0.12,
            seed: 0xdb,
        },
        DatasetSpec {
            name: "youtube-like",
            original: "YouTube",
            original_nodes: 1_134_890,
            original_edges: 2_987_624,
            avg_degree: 5.27,
            small_nodes: 5_000,
            paper_nodes: 60_000,
            communities: 20,
            inter_fraction: 0.15,
            seed: 0x47,
        },
        DatasetSpec {
            name: "orkut-like",
            original: "Orkut",
            original_nodes: 3_072_441,
            original_edges: 117_185_082,
            avg_degree: 76.28,
            small_nodes: 3_000,
            paper_nodes: 20_000,
            communities: 8,
            inter_fraction: 0.08,
            seed: 0x06,
        },
        DatasetSpec {
            name: "livejournal-like",
            original: "LiveJournal",
            original_nodes: 3_997_962,
            original_edges: 34_681_189,
            avg_degree: 17.35,
            small_nodes: 4_000,
            paper_nodes: 40_000,
            communities: 12,
            inter_fraction: 0.10,
            seed: 0x15,
        },
        DatasetSpec {
            name: "friendster-like",
            original: "Friendster",
            original_nodes: 65_608_366,
            original_edges: 1_806_067_135,
            avg_degree: 55.06,
            small_nodes: 5_000,
            paper_nodes: 30_000,
            communities: 10,
            inter_fraction: 0.10,
            seed: 0xf5,
        },
    ]
}

/// Looks up specs by name (case-insensitive), preserving registry order.
/// Unknown names are reported as an error listing the valid options.
pub fn select(names: Option<&[String]>) -> Result<Vec<DatasetSpec>, String> {
    let all = registry();
    match names {
        None => Ok(all),
        Some(wanted) => {
            let mut out = Vec::new();
            for name in wanted {
                let lower = name.to_lowercase();
                match all.iter().find(|d| d.name == lower) {
                    Some(spec) => out.push(spec.clone()),
                    None => {
                        return Err(format!(
                            "unknown dataset '{name}'; valid names: {}",
                            all.iter().map(|d| d.name).collect::<Vec<_>>().join(", ")
                        ))
                    }
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table3_order_and_degrees() {
        let specs = registry();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].name, "facebook-like");
        assert_eq!(specs[3].original, "Orkut");
        // average degrees straight from Table 3
        assert!((specs[0].avg_degree - 43.69).abs() < 1e-9);
        assert!((specs[5].avg_degree - 55.06).abs() < 1e-9);
        for spec in &specs {
            assert!(spec.small_nodes <= spec.paper_nodes);
            assert!(spec.original_edges > spec.original_nodes);
        }
    }

    #[test]
    fn select_filters_and_validates() {
        assert_eq!(select(None).unwrap().len(), 6);
        let picked = select(Some(&["orkut-like".to_string(), "DBLP-like".to_string()])).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name, "orkut-like");
        assert!(select(Some(&["nope".to_string()])).is_err());
    }

    #[test]
    fn prepared_small_dataset_is_ergodic_and_degree_matched() {
        let spec = registry().remove(1); // dblp-like, sparse so it is the risky one
        let prepared = spec.prepare(Scale::Small);
        assert!(!prepared.loaded_from_file);
        let stats = prepared.stats();
        assert_eq!(stats.num_components, 1);
        assert!(!stats.bipartite);
        assert!(
            (stats.average_degree - spec.avg_degree).abs() / spec.avg_degree < 0.5,
            "avg degree {} vs target {}",
            stats.average_degree,
            spec.avg_degree
        );
    }

    #[test]
    fn orkut_like_is_denser_than_dblp_like() {
        let specs = registry();
        let orkut = specs[3].prepare(Scale::Small);
        let dblp = specs[1].prepare(Scale::Small);
        assert!(orkut.stats().average_degree > 5.0 * dblp.stats().average_degree);
    }
}
