//! Frozen reproductions of superseded hot paths, kept so the perf trajectory
//! always measures against the same baseline.
//!
//! The `walk_kernel` binary and bench both compare the current walk kernel
//! against [`pr1_endpoint_histogram`] — the bulk endpoint-histogram operation
//! exactly as PR 1 shipped it. Do not "fix" or modernise this code: its whole
//! value is that it stays identical to what the recorded numbers in
//! `BENCH_walk_kernel.json` were measured against.

use er_graph::{Graph, NodeId};
use er_walks::par;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bulk endpoint-histogram operation as of PR 1 (the single-threaded arm
/// of `par_fold_commutative`): one dense `vec![0; n]` tally, and per walk a
/// freshly constructed `StdRng` on the `mix_seed(fan_seed, i)` stream
/// stepping via `Graph::random_neighbor`. Returns the endpoint counts and the
/// total steps taken.
pub fn pr1_endpoint_histogram(
    graph: &Graph,
    start: NodeId,
    len: usize,
    num_walks: u64,
    fan_seed: u64,
) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; graph.num_nodes()];
    let mut steps_total = 0u64;
    for i in 0..num_walks {
        let mut rng = StdRng::seed_from_u64(par::mix_seed(fan_seed, i));
        let mut current = start;
        for _ in 0..len {
            match graph.random_neighbor(current, &mut rng) {
                Some(next) => {
                    current = next;
                    steps_total += 1;
                }
                None => break,
            }
        }
        counts[current] += 1;
    }
    (counts, steps_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn baseline_histogram_accounts_every_walk_and_step() {
        let g = generators::complete(12).unwrap();
        let (counts, steps) = pr1_endpoint_histogram(&g, 0, 7, 500, 9);
        assert_eq!(counts.iter().sum::<u64>(), 500);
        assert_eq!(steps, 500 * 7);
        let (again, _) = pr1_endpoint_histogram(&g, 0, 7, 500, 9);
        assert_eq!(counts, again, "baseline must stay deterministic per seed");
    }
}
