//! Workload construction and method execution.
//!
//! Reproduces the measurement protocol of Section 5.1: per dataset, a set of
//! uniformly random node pairs and a set of uniformly random edges, ground
//! truth computed once per workload, and per-method wall-clock timing with a
//! time budget standing in for the paper's one-day timeout.

use crate::methods::MethodKind;
use er_core::{ApproxConfig, GraphContext, GroundTruth, GroundTruthMethod};
use er_graph::{EdgeQuerySet, Graph, NodePairQuerySet};
use std::time::{Duration, Instant};

/// A query workload: node pairs plus their ground-truth resistances.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable kind ("random" or "edge").
    pub kind: &'static str,
    /// The query pairs.
    pub pairs: Vec<(usize, usize)>,
    /// Ground-truth effective resistances, aligned with `pairs`.
    pub ground_truth: Vec<f64>,
}

impl Workload {
    /// The paper's random query set: `count` uniformly random node pairs.
    pub fn random_pairs(graph: &Graph, count: usize, seed: u64) -> Self {
        let set = NodePairQuerySet::uniform(graph, count, seed);
        let pairs: Vec<_> = set.pairs().iter().map(|p| (p.s, p.t)).collect();
        let ground_truth = Self::truth(graph, &pairs);
        Workload {
            kind: "random",
            pairs,
            ground_truth,
        }
    }

    /// The paper's edge query set: `count` uniformly random edges.
    pub fn random_edges(graph: &Graph, count: usize, seed: u64) -> Self {
        let set = EdgeQuerySet::uniform(graph, count, seed);
        let pairs: Vec<_> = set.pairs().iter().map(|p| (p.s, p.t)).collect();
        let ground_truth = Self::truth(graph, &pairs);
        Workload {
            kind: "edge",
            pairs,
            ground_truth,
        }
    }

    fn truth(graph: &Graph, pairs: &[(usize, usize)]) -> Vec<f64> {
        // One CG Laplacian solve per pair: equivalent precision to the paper's
        // 1000-iteration SMM at a fraction of the cost on sparse graphs.
        let oracle = GroundTruth::with_method(graph, GroundTruthMethod::LaplacianSolve);
        oracle
            .resistances(pairs)
            .expect("workload pairs are valid nodes of the graph")
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Result of running one method at one ε on one dataset's workload — one
/// point of a paper figure.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// Method label ("GEER", "AMC", …).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Workload kind ("random" / "edge").
    pub workload: String,
    /// Error threshold ε.
    pub epsilon: f64,
    /// Queries attempted (the workload size).
    pub queries_total: usize,
    /// Queries finished within the budget.
    pub queries_completed: usize,
    /// Average wall-clock time per completed query, in milliseconds.
    pub avg_time_ms: f64,
    /// Average absolute error over completed queries (None if none completed).
    pub avg_abs_error: Option<f64>,
    /// Maximum absolute error over completed queries.
    pub max_abs_error: Option<f64>,
    /// Whether the time budget expired before all queries completed
    /// (the analogue of the paper's "cannot terminate within one day").
    pub timed_out: bool,
    /// Set when the method could not run at all (e.g. out-of-memory
    /// exclusions for EXACT / RP), with the reason.
    pub excluded: Option<String>,
}

impl MethodRun {
    /// True if the run produced at least one usable measurement.
    pub fn has_data(&self) -> bool {
        self.queries_completed > 0 && self.excluded.is_none()
    }
}

/// Derives a per-query walk budget from the wall-clock budget. This is the
/// harness's stand-in for the paper's one-day timeout: roughly two million
/// walks per second of budget keeps even TP/TPC terminating in bounded time
/// while leaving the fast methods entirely unconstrained.
pub fn walk_budget_for(budget: Duration) -> u64 {
    ((budget.as_secs_f64() * 2_000_000.0) as u64).max(100_000)
}

/// Runs one method over a workload with a time budget.
///
/// Preprocessing that the paper also counts as preprocessing (RP's sketch,
/// EXACT's pseudo-inverse) happens inside the build step and is *not* included
/// in the per-query time, matching the paper's measurement protocol.
pub fn run_method_on_workload(
    kind: MethodKind,
    ctx: &GraphContext,
    config: ApproxConfig,
    dataset: &str,
    workload: &Workload,
    budget: Duration,
) -> MethodRun {
    let mut run = MethodRun {
        method: kind.label().to_string(),
        dataset: dataset.to_string(),
        workload: workload.kind.to_string(),
        epsilon: config.epsilon,
        queries_total: workload.len(),
        queries_completed: 0,
        avg_time_ms: 0.0,
        avg_abs_error: None,
        max_abs_error: None,
        timed_out: false,
        excluded: None,
    };
    let mut estimator = match kind.build(ctx, config, Some(walk_budget_for(budget))) {
        Ok(est) => est,
        Err(err) => {
            run.excluded = Some(err.to_string());
            return run;
        }
    };
    time_estimator(estimator.as_mut(), workload, budget, &mut run);
    run
}

/// Runs an already-built estimator over a workload with a time budget,
/// producing a [`MethodRun`] labelled `label`. The figure binaries that sweep
/// estimator-specific knobs (τ in Fig. 8/9, ℓ_b in Fig. 10) use this directly.
pub fn run_estimator_on_workload(
    estimator: &mut dyn er_core::ResistanceEstimator,
    label: &str,
    epsilon: f64,
    dataset: &str,
    workload: &Workload,
    budget: Duration,
) -> MethodRun {
    let mut run = MethodRun {
        method: label.to_string(),
        dataset: dataset.to_string(),
        workload: workload.kind.to_string(),
        epsilon,
        queries_total: workload.len(),
        queries_completed: 0,
        avg_time_ms: 0.0,
        avg_abs_error: None,
        max_abs_error: None,
        timed_out: false,
        excluded: None,
    };
    time_estimator(estimator, workload, budget, &mut run);
    run
}

fn time_estimator(
    estimator: &mut dyn er_core::ResistanceEstimator,
    workload: &Workload,
    budget: Duration,
    run: &mut MethodRun,
) {
    let started = Instant::now();
    let mut total_time = Duration::ZERO;
    let mut total_error = 0.0;
    let mut max_error = 0.0_f64;
    for (idx, &(s, t)) in workload.pairs.iter().enumerate() {
        if started.elapsed() > budget {
            run.timed_out = true;
            break;
        }
        let q_start = Instant::now();
        let estimate = match estimator.estimate(s, t) {
            Ok(e) => e,
            Err(err) => {
                run.excluded = Some(format!("query {idx} failed: {err}"));
                break;
            }
        };
        total_time += q_start.elapsed();
        let error = (estimate.value - workload.ground_truth[idx]).abs();
        total_error += error;
        max_error = max_error.max(error);
        run.queries_completed += 1;
    }
    if run.queries_completed > 0 {
        run.avg_time_ms = total_time.as_secs_f64() * 1000.0 / run.queries_completed as f64;
        run.avg_abs_error = Some(total_error / run.queries_completed as f64);
        run.max_abs_error = Some(max_error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn small_context(g: &Graph) -> GraphContext {
        GraphContext::preprocess(g).unwrap()
    }

    #[test]
    fn workloads_have_truth_aligned_with_pairs() {
        let g = generators::social_network_like(300, 10.0, 3).unwrap();
        let random = Workload::random_pairs(&g, 15, 1);
        assert_eq!(random.len(), 15);
        assert!(!random.is_empty());
        assert_eq!(random.pairs.len(), random.ground_truth.len());
        assert!(random.ground_truth.iter().all(|&r| r > 0.0));
        let edges = Workload::random_edges(&g, 10, 2);
        assert_eq!(edges.kind, "edge");
        for (i, &(s, t)) in edges.pairs.iter().enumerate() {
            assert!(g.has_edge(s, t));
            assert!(edges.ground_truth[i] <= 1.0 + 1e-9, "edge ER is at most 1");
        }
    }

    #[test]
    fn geer_run_completes_within_budget_and_meets_epsilon() {
        let g = generators::social_network_like(400, 14.0, 5).unwrap();
        let ctx = small_context(&g);
        let workload = Workload::random_pairs(&g, 10, 7);
        let run = run_method_on_workload(
            MethodKind::Geer,
            &ctx,
            ApproxConfig::with_epsilon(0.2),
            "unit-test",
            &workload,
            Duration::from_secs(30),
        );
        assert!(run.has_data());
        assert!(!run.timed_out, "GEER should finish 10 queries in 30s");
        assert_eq!(run.queries_completed, 10);
        assert!(run.avg_abs_error.unwrap() <= 0.2);
        assert!(run.max_abs_error.unwrap() <= 0.2 + 1e-9);
        assert!(run.avg_time_ms >= 0.0);
    }

    #[test]
    fn zero_budget_times_out_immediately() {
        let g = generators::social_network_like(300, 8.0, 6).unwrap();
        let ctx = small_context(&g);
        let workload = Workload::random_pairs(&g, 5, 3);
        let run = run_method_on_workload(
            MethodKind::Amc,
            &ctx,
            ApproxConfig::with_epsilon(0.5),
            "unit-test",
            &workload,
            Duration::ZERO,
        );
        assert!(run.timed_out);
        assert_eq!(run.queries_completed, 0);
        assert!(!run.has_data());
    }

    #[test]
    fn excluded_methods_are_reported_not_panicked() {
        // Force an exclusion by querying a non-edge with an edge-only method.
        let g = generators::cycle(9).unwrap();
        // cycle(9) is non-bipartite and connected
        let ctx = small_context(&g);
        let workload = Workload {
            kind: "random",
            pairs: vec![(0, 4)],
            ground_truth: vec![
                GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve)
                    .resistance(0, 4)
                    .unwrap(),
            ],
        };
        let run = run_method_on_workload(
            MethodKind::Hay,
            &ctx,
            ApproxConfig::with_epsilon(0.5),
            "unit-test",
            &workload,
            Duration::from_secs(5),
        );
        assert!(run.excluded.is_some());
        assert!(!run.has_data());
    }

    #[test]
    fn walk_budget_scales_with_time_budget() {
        assert!(walk_budget_for(Duration::from_secs(10)) > walk_budget_for(Duration::from_secs(1)));
        assert!(walk_budget_for(Duration::ZERO) >= 100_000);
    }
}
