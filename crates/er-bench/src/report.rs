//! Table printing and CSV output for the figure binaries.
//!
//! Every binary prints the series the corresponding paper figure plots (one
//! row per (dataset, method, ε) point) and writes the same rows as CSV under
//! `target/experiments/` so EXPERIMENTS.md can reference stable artifacts.

use crate::harness::MethodRun;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Formats one run the way the figures label points: a time in milliseconds,
/// or the exclusion reason.
fn cell(run: &MethodRun) -> String {
    if let Some(reason) = &run.excluded {
        let short = if reason.contains("memory") {
            "OOM"
        } else if reason.contains("not an edge") {
            "n/a"
        } else {
            "excluded"
        };
        return short.to_string();
    }
    if run.queries_completed == 0 {
        return ">budget".to_string();
    }
    let mut s = format!("{:.3}", run.avg_time_ms);
    if run.timed_out {
        s.push('*');
    }
    s
}

/// Prints a figure-style table: one row per (dataset, method), one column per
/// ε, cell = average query time in ms (`*` marks a partially completed sweep,
/// `OOM`/`>budget` mark exclusions).
pub fn print_table(title: &str, runs: &[MethodRun]) {
    println!("\n== {title} ==");
    if runs.is_empty() {
        println!("(no data)");
        return;
    }
    let mut epsilons: Vec<f64> = runs.iter().map(|r| r.epsilon).collect();
    epsilons.sort_by(|a, b| b.partial_cmp(a).unwrap());
    epsilons.dedup();
    let mut keys: Vec<(String, String)> = runs
        .iter()
        .map(|r| (r.dataset.clone(), r.method.clone()))
        .collect();
    keys.dedup();

    print!("{:<22} {:<10}", "dataset", "method");
    for eps in &epsilons {
        print!(" {:>12}", format!("eps={eps}"));
    }
    println!();
    for (dataset, method) in keys {
        print!("{dataset:<22} {method:<10}");
        for eps in &epsilons {
            let found = runs.iter().find(|r| {
                r.dataset == dataset && r.method == method && (r.epsilon - eps).abs() < 1e-12
            });
            match found {
                Some(run) => print!(" {:>12}", cell(run)),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}

/// Prints the same table but with average absolute error in the cells
/// (Fig. 6 / Fig. 7 style).
pub fn print_error_table(title: &str, runs: &[MethodRun]) {
    println!("\n== {title} ==");
    let mut epsilons: Vec<f64> = runs.iter().map(|r| r.epsilon).collect();
    epsilons.sort_by(|a, b| b.partial_cmp(a).unwrap());
    epsilons.dedup();
    let mut keys: Vec<(String, String)> = runs
        .iter()
        .map(|r| (r.dataset.clone(), r.method.clone()))
        .collect();
    keys.dedup();
    print!("{:<22} {:<10}", "dataset", "method");
    for eps in &epsilons {
        print!(" {:>12}", format!("eps={eps}"));
    }
    println!();
    for (dataset, method) in keys {
        print!("{dataset:<22} {method:<10}");
        for eps in &epsilons {
            let found = runs.iter().find(|r| {
                r.dataset == dataset && r.method == method && (r.epsilon - eps).abs() < 1e-12
            });
            let text = match found {
                Some(run) => match run.avg_abs_error {
                    Some(err) if run.excluded.is_none() => format!("{err:.5}"),
                    _ => cell(run),
                },
                None => "-".to_string(),
            };
            print!(" {:>12}", text);
        }
        println!();
    }
}

/// Directory all experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    Path::new("target").join("experiments")
}

/// Writes runs as a CSV file under `target/experiments/<name>.csv` and returns
/// the path. The format is stable:
/// `dataset,workload,method,epsilon,queries_total,queries_completed,avg_time_ms,avg_abs_error,max_abs_error,timed_out,excluded`.
pub fn write_csv(name: &str, runs: &[MethodRun]) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(
        file,
        "dataset,workload,method,epsilon,queries_total,queries_completed,avg_time_ms,avg_abs_error,max_abs_error,timed_out,excluded"
    )?;
    for run in runs {
        writeln!(
            file,
            "{},{},{},{},{},{},{:.6},{},{},{},{}",
            run.dataset,
            run.workload,
            run.method,
            run.epsilon,
            run.queries_total,
            run.queries_completed,
            run.avg_time_ms,
            run.avg_abs_error
                .map_or(String::new(), |e| format!("{e:.8}")),
            run.max_abs_error
                .map_or(String::new(), |e| format!("{e:.8}")),
            run.timed_out,
            run.excluded
                .as_deref()
                .unwrap_or("")
                .replace(',', ";")
                .replace('\n', " "),
        )?;
    }
    file.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(method: &str, eps: f64, err: Option<f64>, excluded: Option<&str>) -> MethodRun {
        MethodRun {
            method: method.to_string(),
            dataset: "test-ds".to_string(),
            workload: "random".to_string(),
            epsilon: eps,
            queries_total: 10,
            queries_completed: if excluded.is_some() { 0 } else { 10 },
            avg_time_ms: 1.25,
            avg_abs_error: err,
            max_abs_error: err,
            timed_out: false,
            excluded: excluded.map(|s| s.to_string()),
        }
    }

    #[test]
    fn cell_formats_exclusions() {
        assert_eq!(
            cell(&sample_run(
                "RP",
                0.1,
                None,
                Some("memory budget exceeded: x")
            )),
            "OOM"
        );
        assert_eq!(cell(&sample_run("GEER", 0.1, Some(0.01), None)), "1.250");
        let mut never_finished = sample_run("TP", 0.1, None, None);
        never_finished.queries_completed = 0;
        assert_eq!(cell(&never_finished), ">budget");
    }

    #[test]
    fn csv_roundtrip_has_expected_rows() {
        let runs = vec![
            sample_run("GEER", 0.5, Some(0.02), None),
            sample_run("RP", 0.5, None, Some("memory, exceeded")),
        ];
        let path = write_csv("unit_test_report", &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].starts_with("dataset,workload,method"));
        assert!(lines[1].contains("GEER"));
        assert!(
            lines[2].contains("memory; exceeded"),
            "commas are sanitised"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tables_print_without_panicking() {
        let runs = vec![
            sample_run("GEER", 0.5, Some(0.02), None),
            sample_run("GEER", 0.1, Some(0.01), None),
            sample_run("EXACT", 0.5, Some(0.0), Some("memory")),
        ];
        print_table("unit test", &runs);
        print_error_table("unit test errors", &runs);
        print_table("empty", &[]);
    }
}
