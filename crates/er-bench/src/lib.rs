//! Experiment harness reproducing the evaluation of
//! *"Efficient Estimation of Pairwise Effective Resistance"* (SIGMOD 2023).
//!
//! Section 5 of the paper evaluates the proposed AMC/GEER against seven
//! baselines on six SNAP datasets, reporting:
//!
//! * Table 3 — dataset statistics,
//! * Fig. 2  — the running example (#paths vs AMC's η\*),
//! * Fig. 4/5 — running time vs ε for random / edge queries,
//! * Fig. 6/7 — average absolute error vs ε for random / edge queries,
//! * Fig. 8/9 — effect of the batch count τ,
//! * Fig. 10 — effect of GEER's switch point ℓ_b,
//! * Fig. 11 — the refined walk length (Eq. 6) vs Peng et al.'s (Eq. 5) in SMM.
//!
//! Each figure/table has a dedicated binary in `src/bin/` that prints the
//! same rows/series the paper plots and writes a CSV under
//! `target/experiments/`. The raw SNAP datasets are not shipped; the
//! [`datasets`] module builds synthetic graphs whose average degree matches
//! each original (see DESIGN.md for the substitution argument), and will load
//! a real edge list from `data/<name>.txt` instead when one is present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod baseline;
pub mod datasets;
pub mod harness;
pub mod methods;
pub mod report;
pub mod sweeps;
pub mod trajectory;

pub use args::{BenchArgs, Scale};
pub use datasets::{DatasetSpec, PreparedDataset};
pub use harness::{run_estimator_on_workload, run_method_on_workload, MethodRun, Workload};
pub use methods::MethodKind;
pub use report::{print_table, write_csv};
pub use trajectory::{append_to_trajectory, git_sha, split_entries};
