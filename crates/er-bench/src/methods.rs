//! Estimator construction for the harness.
//!
//! Maps the method names the paper uses in its figures to concrete estimator
//! instances, applying the same exclusion rules as Section 5: EXACT and RP are
//! reported "out of memory" past their size budgets, and the Monte Carlo
//! heavyweights (TP, TPC, MC, MC2) accept a walk budget derived from the
//! harness time budget so a single query cannot run unbounded.

use er_core::{
    Amc, ApproxConfig, EstimatorError, Exact, Geer, GraphContext, Hay, Mc, Mc2,
    ResistanceEstimator, Rp, Smm, Tp, Tpc,
};

/// The methods evaluated in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// GEER (Algorithm 3) — the paper's main proposal.
    Geer,
    /// AMC (Algorithm 1) — the paper's first-cut proposal.
    Amc,
    /// SMM (Algorithm 2) with the refined length of Eq. (6).
    Smm,
    /// SMM with Peng et al.'s length of Eq. (5) (Fig. 11 only).
    SmmPengLength,
    /// TP from \[49\].
    Tp,
    /// TPC from \[49\].
    Tpc,
    /// RP, the random-projection method of \[62\].
    Rp,
    /// EXACT pseudo-inverse baseline.
    Exact,
    /// MC from \[49\] (commute-time / escape-probability sampling).
    Mc,
    /// MC2 from \[49\] (edge queries only).
    Mc2,
    /// HAY from \[29\] (edge queries only, spanning-tree sampling).
    Hay,
}

impl MethodKind {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Geer => "GEER",
            MethodKind::Amc => "AMC",
            MethodKind::Smm => "SMM",
            MethodKind::SmmPengLength => "SMM-PengL",
            MethodKind::Tp => "TP",
            MethodKind::Tpc => "TPC",
            MethodKind::Rp => "RP",
            MethodKind::Exact => "EXACT",
            MethodKind::Mc => "MC",
            MethodKind::Mc2 => "MC2",
            MethodKind::Hay => "HAY",
        }
    }

    /// The methods compared on random pairwise queries (Fig. 4 / Fig. 6).
    pub fn random_query_lineup() -> Vec<MethodKind> {
        vec![
            MethodKind::Geer,
            MethodKind::Amc,
            MethodKind::Smm,
            MethodKind::Tp,
            MethodKind::Tpc,
            MethodKind::Rp,
            MethodKind::Exact,
        ]
    }

    /// The methods compared on edge queries (Fig. 5 / Fig. 7).
    pub fn edge_query_lineup() -> Vec<MethodKind> {
        vec![
            MethodKind::Geer,
            MethodKind::Amc,
            MethodKind::Smm,
            MethodKind::Mc2,
            MethodKind::Hay,
        ]
    }

    /// Whether the method only supports `(s, t) ∈ E` queries.
    pub fn edge_only(&self) -> bool {
        matches!(self, MethodKind::Mc2 | MethodKind::Hay)
    }

    /// The service-plane backend corresponding to this method, so harness
    /// configurations translate directly into [`er_service`] override
    /// requests. `None` for figure-only variants the service does not route
    /// to (the Peng-length SMM ablation).
    pub fn backend_choice(&self) -> Option<er_service::BackendChoice> {
        use er_service::BackendChoice;
        Some(match self {
            MethodKind::Geer => BackendChoice::Geer,
            MethodKind::Amc => BackendChoice::Amc,
            MethodKind::Smm => BackendChoice::Smm,
            MethodKind::SmmPengLength => return None,
            MethodKind::Tp => BackendChoice::Tp,
            MethodKind::Tpc => BackendChoice::Tpc,
            MethodKind::Rp => BackendChoice::Rp,
            MethodKind::Exact => BackendChoice::ExactDense,
            MethodKind::Mc => BackendChoice::Mc,
            MethodKind::Mc2 => BackendChoice::Mc2,
            MethodKind::Hay => BackendChoice::Hay,
        })
    }

    /// Builds an estimator instance for this method.
    ///
    /// `walk_budget` caps the number of walks (or spanning trees) a single
    /// query may consume; it stands in for the paper's one-day timeout so that
    /// TP/TPC/MC2 terminate on every graph. Methods that fail to build
    /// (EXACT / RP beyond their memory budgets) return the error so the caller
    /// can record the exclusion, exactly as the paper's figures omit those
    /// bars.
    pub fn build(
        &self,
        ctx: &GraphContext,
        config: ApproxConfig,
        walk_budget: Option<u64>,
    ) -> Result<Box<dyn ResistanceEstimator>, EstimatorError> {
        Ok(match self {
            MethodKind::Geer => {
                let mut est = Geer::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            MethodKind::Amc => {
                let mut est = Amc::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            MethodKind::Smm => Box::new(Smm::new(ctx, config)),
            MethodKind::SmmPengLength => Box::new(Smm::with_peng_length(ctx, config)),
            MethodKind::Tp => {
                let mut est = Tp::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            MethodKind::Tpc => {
                let mut est = Tpc::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            // RP's preprocessing builds a (24 ln n / eps^2) x n dense sketch
            // with one Laplacian solve per row; a 10M-entry budget keeps that
            // preprocessing to seconds at harness scale and reproduces the
            // paper's out-of-memory exclusions at the smaller epsilons.
            MethodKind::Rp => Box::new(Rp::with_entry_budget(ctx, config, 10_000_000)?),
            MethodKind::Exact => Box::new(Exact::new(ctx)?),
            MethodKind::Mc => {
                let mut est = Mc::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            MethodKind::Mc2 => {
                let mut est = Mc2::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_walk_budget(b);
                }
                Box::new(est)
            }
            MethodKind::Hay => {
                let mut est = Hay::new(ctx, config);
                if let Some(b) = walk_budget {
                    est = est.with_tree_budget(b);
                }
                Box::new(est)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn lineups_match_the_figures() {
        let random = MethodKind::random_query_lineup();
        assert_eq!(random.len(), 7);
        assert_eq!(random[0], MethodKind::Geer);
        assert!(random.contains(&MethodKind::Exact));
        let edge = MethodKind::edge_query_lineup();
        assert_eq!(edge.len(), 5);
        assert!(edge.contains(&MethodKind::Hay));
        assert!(MethodKind::Hay.edge_only());
        assert!(!MethodKind::Geer.edge_only());
    }

    #[test]
    fn every_method_builds_and_answers_an_edge_query() {
        let g = generators::social_network_like(300, 12.0, 7).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.5);
        let (s, t) = g.edges().next().unwrap();
        let all = [
            MethodKind::Geer,
            MethodKind::Amc,
            MethodKind::Smm,
            MethodKind::SmmPengLength,
            MethodKind::Tp,
            MethodKind::Tpc,
            MethodKind::Rp,
            MethodKind::Exact,
            MethodKind::Mc,
            MethodKind::Mc2,
            MethodKind::Hay,
        ];
        for kind in all {
            let mut est = kind
                .build(&ctx, cfg, Some(20_000))
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", kind.label()));
            let result = est.estimate(s, t).unwrap();
            assert!(
                result.value.is_finite() && result.value >= 0.0,
                "{}: value {}",
                kind.label(),
                result.value
            );
            assert!(!est.name().is_empty());
        }
    }

    #[test]
    fn every_method_maps_onto_the_service_plane() {
        use er_service::{Accuracy, Query, Request, ResistanceService};
        let g = generators::social_network_like(200, 10.0, 5).unwrap();
        let service = ResistanceService::new(&g).unwrap();
        let (s, t) = g.edges().next().unwrap();
        for kind in MethodKind::random_query_lineup()
            .into_iter()
            .chain(MethodKind::edge_query_lineup())
        {
            let Some(choice) = kind.backend_choice() else {
                continue;
            };
            // Edge-only methods answer through the edge-set shape.
            let query = if kind.edge_only() {
                Query::edge_set(vec![(s, t)])
            } else {
                Query::pair(s, t)
            };
            let response = service
                .submit(
                    &Request::new(query)
                        .with_accuracy(Accuracy::epsilon(0.5))
                        .with_backend(choice),
                )
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(response.backend, kind.label(), "name round-trips");
            assert!(response.values[0].is_finite() && response.values[0] >= 0.0);
        }
        assert_eq!(MethodKind::SmmPengLength.backend_choice(), None);
    }

    #[test]
    fn memory_capped_methods_report_exclusion() {
        // EXACT's default node cap is far above 300 nodes, so force a failure
        // by exceeding RP's entry budget instead: build with a tiny epsilon on
        // a graph large enough that k * n overflows the default budget is too
        // slow for a unit test, so just verify the error surface via Exact's
        // explicit cap API (the harness handles both identically).
        let g = generators::social_network_like(400, 6.0, 9).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!(Exact::with_node_cap(&ctx, 100).is_err());
    }
}
