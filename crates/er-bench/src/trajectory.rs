//! Append-only benchmark trajectories keyed by git SHA.
//!
//! Perf-smoke artifacts (`BENCH_walk_kernel.json`, `BENCH_service.json`) are
//! JSON arrays with one entry per PR. A bench binary appends its entry —
//! replacing an existing entry for the same SHA, so re-runs never duplicate
//! — and never drops history; CI diffs the newest two entries via
//! `scripts/bench_diff.py`. This module holds the shared plumbing: SHA
//! discovery, entry splitting and the append itself.

/// The short git SHA identifying this build in the trajectory:
/// `$BENCH_GIT_SHA` if set, else `git rev-parse --short HEAD`, else
/// `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("BENCH_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Splits the body of a JSON array into its top-level `{…}` entries by brace
/// depth (the trajectory's own serializer puts no braces inside strings, but
/// string state is tracked anyway for safety).
pub fn split_entries(array_body: &str) -> Vec<String> {
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = None;
    for (i, c) in array_body.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        entries.push(array_body[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    entries
}

/// The `"bench"` tag of an entry, if it carries one. Trajectory files may
/// interleave entries from several bench binaries (`BENCH_service.json`
/// holds both `service_throughput` and `http_service`); the tag scopes
/// same-SHA replacement to the bench that wrote the entry.
fn bench_tag(entry: &str) -> Option<&str> {
    let rest = &entry[entry.find("\"bench\": \"")? + "\"bench\": \"".len()..];
    rest.split('"').next()
}

/// Appends `entry` to the trajectory at `path`, replacing any existing entry
/// for the same SHA **and** the same `"bench"` tag (so re-runs never
/// duplicate, and benches sharing a file never clobber each other), while
/// preserving all other history. Returns the number of entries now in the
/// trajectory.
pub fn append_to_trajectory(path: &str, entry: &str, sha: &str) -> usize {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(existing) if existing.trim_start().starts_with('[') => split_entries(existing.trim()),
        // Missing file or pre-trajectory snapshot: start a fresh history.
        _ => Vec::new(),
    };
    let sha_marker = format!("\"git_sha\": \"{sha}\"");
    let tag = bench_tag(entry);
    entries.retain(|e| !(e.contains(&sha_marker) && bench_tag(e) == tag));
    entries.push(entry.trim().to_string());
    let joined = entries.join(",\n");
    std::fs::write(path, format!("[\n{joined}\n]\n")).expect("write bench trajectory");
    entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_nested_objects_and_strings() {
        let body = r#"[{"a": {"b": 1}, "s": "br{ace"}, {"c": 2}]"#;
        let entries = split_entries(body);
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains("br{ace"));
        assert_eq!(entries[1], r#"{"c": 2}"#);
        assert!(split_entries("not json").is_empty());
    }

    #[test]
    fn append_replaces_same_sha_and_keeps_history() {
        let dir = std::env::temp_dir().join(format!("er-trajectory-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let entry = |sha: &str, v: u32| format!("{{\n  \"git_sha\": \"{sha}\",\n  \"v\": {v}\n}}");
        assert_eq!(append_to_trajectory(path, &entry("aaa", 1), "aaa"), 1);
        assert_eq!(append_to_trajectory(path, &entry("bbb", 2), "bbb"), 2);
        // Re-running the same SHA replaces, never duplicates.
        assert_eq!(append_to_trajectory(path, &entry("bbb", 3), "bbb"), 2);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"v\": 1"));
        assert!(content.contains("\"v\": 3"));
        assert!(!content.contains("\"v\": 2"), "old bbb entry replaced");
        let order: Vec<String> = split_entries(&content)
            .iter()
            .map(|e| e.contains("aaa").to_string())
            .collect();
        assert_eq!(order, ["true", "false"], "history order preserved");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn same_sha_different_bench_tags_coexist() {
        let dir = std::env::temp_dir().join(format!("er-trajectory-tag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let entry = |bench: &str, sha: &str, v: u32| {
            format!("{{\n  \"bench\": \"{bench}\",\n  \"git_sha\": \"{sha}\",\n  \"v\": {v}\n}}")
        };
        assert_eq!(
            append_to_trajectory(path, &entry("throughput", "aaa", 1), "aaa"),
            1
        );
        // A different bench at the same SHA appends instead of replacing…
        assert_eq!(
            append_to_trajectory(path, &entry("http", "aaa", 2), "aaa"),
            2
        );
        // …while a re-run of the same bench at the same SHA still replaces.
        assert_eq!(
            append_to_trajectory(path, &entry("http", "aaa", 3), "aaa"),
            2
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"v\": 1"));
        assert!(content.contains("\"v\": 3"));
        assert!(!content.contains("\"v\": 2"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn env_override_wins_for_the_sha() {
        // `git_sha` must prefer the env override (used by CI when the
        // checkout is shallow or detached); avoid mutating the process env
        // in-test, just cover the fallback path's type contract.
        let sha = git_sha();
        assert!(!sha.is_empty());
    }
}
