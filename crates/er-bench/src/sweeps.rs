//! Shared ε-sweep driver used by the Fig. 4–7 binaries.

use crate::args::BenchArgs;
use crate::datasets::{self, DatasetSpec};
use crate::harness::{run_method_on_workload, MethodRun, Workload};
use crate::methods::MethodKind;
use er_core::{ApproxConfig, GraphContext};

/// Which query workload a sweep uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniformly random node pairs (Fig. 4 / Fig. 6).
    RandomPairs,
    /// Uniformly random edges (Fig. 5 / Fig. 7).
    RandomEdges,
}

/// Runs every (dataset, ε, method) combination and returns one
/// [`MethodRun`] per point. Progress is logged to stderr because the sweeps
/// can take minutes at larger scales.
pub fn epsilon_sweep(
    args: &BenchArgs,
    default_epsilons: &[f64],
    methods: &[MethodKind],
    workload_kind: WorkloadKind,
) -> Result<Vec<MethodRun>, String> {
    let specs = datasets::select(args.datasets.as_deref())?;
    let epsilons = args.epsilons_or(default_epsilons);
    let mut runs = Vec::new();
    for spec in &specs {
        runs.extend(sweep_dataset(args, spec, &epsilons, methods, workload_kind));
    }
    Ok(runs)
}

fn sweep_dataset(
    args: &BenchArgs,
    spec: &DatasetSpec,
    epsilons: &[f64],
    methods: &[MethodKind],
    workload_kind: WorkloadKind,
) -> Vec<MethodRun> {
    eprintln!("[{}] preparing dataset ...", spec.name);
    let prepared = spec.prepare(args.scale);
    let graph = &prepared.graph;
    eprintln!(
        "[{}] n={} m={} avg_deg={:.2} ({})",
        spec.name,
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree(),
        if prepared.loaded_from_file {
            "file"
        } else {
            "synthetic"
        }
    );
    let ctx = match GraphContext::preprocess(graph) {
        Ok(ctx) => ctx,
        Err(err) => {
            eprintln!("[{}] skipped: {err}", spec.name);
            return Vec::new();
        }
    };
    eprintln!("[{}] lambda = {:.6}", spec.name, ctx.lambda());
    let workload = match workload_kind {
        WorkloadKind::RandomPairs => Workload::random_pairs(graph, args.queries, args.seed),
        WorkloadKind::RandomEdges => Workload::random_edges(graph, args.queries, args.seed),
    };
    let mut runs = Vec::new();
    // EXACT's answer and cost do not depend on epsilon (its preprocessing is a
    // full pseudo-inverse); run it once per dataset and replicate the row so
    // the figure still shows its flat line without paying for the expensive
    // preprocessing once per epsilon.
    let mut exact_template: Option<MethodRun> = None;
    for &epsilon in epsilons {
        let config = ApproxConfig {
            epsilon,
            seed: args.seed,
            threads: args.threads,
            ..ApproxConfig::default()
        };
        for &method in methods {
            if method == MethodKind::Exact {
                if let Some(template) = &exact_template {
                    let mut cloned = template.clone();
                    cloned.epsilon = epsilon;
                    runs.push(cloned);
                    continue;
                }
            }
            let run =
                run_method_on_workload(method, &ctx, config, spec.name, &workload, args.budget);
            if method == MethodKind::Exact {
                exact_template = Some(run.clone());
            }
            eprintln!(
                "[{}] eps={epsilon} {}: {} ({}/{} queries{})",
                spec.name,
                method.label(),
                if run.excluded.is_some() {
                    "excluded".to_string()
                } else {
                    format!("{:.3} ms/query", run.avg_time_ms)
                },
                run.queries_completed,
                run.queries_total,
                if run.timed_out { ", timed out" } else { "" },
            );
            runs.push(run);
        }
    }
    runs
}

/// Runs the τ sweep shared by Fig. 8 (ε = 0.2) and Fig. 9 (ε = 0.02): AMC and
/// GEER with τ ∈ \[1, 8\] on the given datasets (defaults to DBLP-, YouTube- and
/// Orkut-like, as in the paper).
pub fn tau_sweep(args: &BenchArgs, epsilon: f64) -> Result<Vec<MethodRun>, String> {
    use crate::harness::run_estimator_on_workload;
    use er_core::{Amc, Geer};

    let default_sets = vec![
        "dblp-like".to_string(),
        "youtube-like".to_string(),
        "orkut-like".to_string(),
    ];
    let names = args.datasets.clone().unwrap_or(default_sets);
    let specs = datasets::select(Some(&names))?;
    let mut runs = Vec::new();
    for spec in &specs {
        eprintln!("[{}] preparing dataset ...", spec.name);
        let prepared = spec.prepare(args.scale);
        let graph = &prepared.graph;
        let ctx = GraphContext::preprocess(graph)
            .map_err(|e| format!("dataset {} is not ergodic: {e}", spec.name))?;
        let workload = Workload::random_pairs(graph, args.queries, args.seed);
        for tau in 1..=8usize {
            let config = ApproxConfig {
                epsilon,
                tau,
                seed: args.seed,
                threads: args.threads,
                ..ApproxConfig::default()
            };
            let mut geer = Geer::new(&ctx, config);
            let run = run_estimator_on_workload(
                &mut geer,
                &format!("GEER(tau={tau})"),
                epsilon,
                spec.name,
                &workload,
                args.budget,
            );
            eprintln!(
                "[{}] GEER tau={tau}: {:.3} ms/query",
                spec.name, run.avg_time_ms
            );
            runs.push(run);
            let mut amc = Amc::new(&ctx, config);
            let run = run_estimator_on_workload(
                &mut amc,
                &format!("AMC(tau={tau})"),
                epsilon,
                spec.name,
                &workload,
                args.budget,
            );
            eprintln!(
                "[{}] AMC tau={tau}: {:.3} ms/query ({} queries{})",
                spec.name,
                run.avg_time_ms,
                run.queries_completed,
                if run.timed_out { ", timed out" } else { "" }
            );
            runs.push(run);
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tiny_sweep_produces_one_run_per_point() {
        let args = BenchArgs {
            queries: 3,
            budget: Duration::from_secs(5),
            datasets: Some(vec!["facebook-like".to_string()]),
            epsilons: Some(vec![0.5]),
            ..BenchArgs::default()
        };
        let runs = epsilon_sweep(
            &args,
            &[0.5],
            &[MethodKind::Geer, MethodKind::Smm],
            WorkloadKind::RandomPairs,
        )
        .unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.dataset == "facebook-like"));
        assert!(runs.iter().any(|r| r.method == "GEER"));
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let args = BenchArgs {
            datasets: Some(vec!["missing".to_string()]),
            ..BenchArgs::default()
        };
        assert!(
            epsilon_sweep(&args, &[0.5], &[MethodKind::Smm], WorkloadKind::RandomEdges).is_err()
        );
    }
}
