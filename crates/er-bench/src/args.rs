//! Minimal command-line argument handling shared by the figure binaries.
//!
//! No external CLI crate is used; every binary accepts the same small set of
//! `--key value` flags:
//!
//! * `--scale small|paper` — dataset sizes (default `small`, which finishes in
//!   minutes on a laptop; `paper` approaches the original node counts where
//!   that is tractable).
//! * `--queries N` — queries per dataset (paper: 100; small default: 20).
//! * `--budget-secs S` — per-method, per-point time budget replacing the
//!   paper's one-day timeout (default 10 s at small scale).
//! * `--epsilons a,b,c` — the ε sweep (default depends on the figure).
//! * `--datasets a,b,c` — restrict to named datasets.
//! * `--seed N` — global seed.
//! * `--threads N` — worker threads for the parallel sampling layer
//!   (default 0 = all cores; results are identical at any thread count).
//! * `--quick` — flag (no value): shrink repetitions/measurement windows to
//!   CI-smoke size while keeping the workload shape (used by the perf-smoke
//!   job so every PR records a comparable number).

use std::time::Duration;

/// Dataset size profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale graphs (thousands of nodes); the default.
    Small,
    /// Graph sizes close to the paper's datasets where tractable.
    Paper,
}

/// Parsed benchmark arguments.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Dataset size profile.
    pub scale: Scale,
    /// Number of queries per dataset.
    pub queries: usize,
    /// Per-method, per-point time budget.
    pub budget: Duration,
    /// ε values to sweep (None = figure default).
    pub epsilons: Option<Vec<f64>>,
    /// Restrict to these dataset names (None = figure default).
    pub datasets: Option<Vec<String>>,
    /// Global seed.
    pub seed: u64,
    /// Worker threads for the parallel sampling layer (0 = all cores).
    pub threads: usize,
    /// CI-smoke mode: fewer repetitions, same workload shape.
    pub quick: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Small,
            queries: 20,
            budget: Duration::from_secs(10),
            epsilons: None,
            datasets: None,
            seed: 42,
            threads: 0,
            quick: false,
        }
    }
}

impl BenchArgs {
    /// Parses `--key value` pairs from an iterator of arguments (typically
    /// `std::env::args().skip(1)`). Unknown keys are reported as errors so
    /// typos do not silently change an experiment.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(key) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("missing value for {key}"))
            };
            match key.as_str() {
                "--scale" => {
                    out.scale = match value()?.as_str() {
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => return Err(format!("unknown scale '{other}'")),
                    }
                }
                "--queries" => {
                    out.queries = value()?
                        .parse()
                        .map_err(|e| format!("bad --queries: {e}"))?
                }
                "--budget-secs" => {
                    let secs: f64 = value()?
                        .parse()
                        .map_err(|e| format!("bad --budget-secs: {e}"))?;
                    out.budget = Duration::from_secs_f64(secs);
                }
                "--epsilons" => {
                    let list = value()?;
                    let eps: Result<Vec<f64>, _> =
                        list.split(',').map(|s| s.trim().parse::<f64>()).collect();
                    out.epsilons = Some(eps.map_err(|e| format!("bad --epsilons: {e}"))?);
                }
                "--datasets" => {
                    out.datasets =
                        Some(value()?.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--seed" => out.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                "--threads" => {
                    out.threads = value()?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    return Err("usage: --scale small|paper --queries N --budget-secs S \
                         --epsilons 0.5,0.2 --datasets facebook-like,dblp-like --seed N \
                         --threads N --quick"
                        .to_string())
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the error message on failure.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The ε sweep to use, falling back to `default_eps` if none was given.
    pub fn epsilons_or(&self, default_eps: &[f64]) -> Vec<f64> {
        self.epsilons
            .clone()
            .unwrap_or_else(|| default_eps.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let a = BenchArgs::default();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.queries, 20);
        assert_eq!(a.epsilons_or(&[0.5, 0.1]), vec![0.5, 0.1]);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "paper",
            "--queries",
            "100",
            "--budget-secs",
            "2.5",
            "--epsilons",
            "0.5, 0.1,0.02",
            "--datasets",
            "facebook-like, orkut-like",
            "--seed",
            "7",
            "--threads",
            "3",
            "--quick",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.queries, 100);
        assert_eq!(a.budget, Duration::from_secs_f64(2.5));
        assert_eq!(a.epsilons_or(&[]), vec![0.5, 0.1, 0.02]);
        assert_eq!(
            a.datasets.unwrap(),
            vec!["facebook-like".to_string(), "orkut-like".to_string()]
        );
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 3);
        assert!(a.quick);
        assert!(!BenchArgs::default().quick);
    }

    #[test]
    fn rejects_unknown_or_malformed_flags() {
        assert!(parse(&["--bogus", "1"]).is_err());
        assert!(parse(&["--queries"]).is_err());
        assert!(parse(&["--queries", "many"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
