//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset of the `rand` 0.8 API this workspace calls:
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the [`Rng`],
//! [`RngCore`] and [`SeedableRng`] traits, [`thread_rng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Values differ from the real
//! crate's `StdRng` (which is ChaCha12), but every consumer in this workspace
//! only relies on determinism-per-seed and statistical uniformity, both of
//! which xoshiro256++ provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, `bool` fair coin, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] (stand-in for `rand`'s `Standard`
/// distribution).
pub trait Standard {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, n)` by widening multiply (Lemire's method
/// without the rejection step; bias is ≤ n/2⁶⁴, far below statistical
/// relevance for graph sampling).
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// SplitMix64 step: the standard state-expansion generator used to seed
/// larger-state RNGs (and, in `er-walks::par`, to derive per-walk streams).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate, but deterministic
    /// per seed, `Send + Sync`, and statistically strong for simulation use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ requires a non-zero state; SplitMix64 of any seed
            // yields all-zero with probability 2⁻²⁵⁶, but stay total anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A process-unique, non-deterministically seeded generator (stand-in for
/// `rand::thread_rng`; returns an owned RNG rather than a handle).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ unique.rotate_left(32) ^ 0x5bd1_e995)
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{bounded, RngCore};

    /// Random operations on slices (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.gen_range(3..=4u64);
            assert!(x == 3 || x == 4);
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
