//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the `er-bench` benches use: [`Criterion`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark warms up, then times batches
//! until the measurement window closes, and prints the mean time per
//! iteration to stdout. No statistical analysis, plots or persisted
//! baselines — just honest wall-clock numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.warm_up_time, self.measurement_time, f);
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets how long each benchmark is measured.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.warm_up_time, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group, e.g. `GEER/0.1`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean duration of one call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also calibrates the batch size so each measured batch is
        // long enough for the clock to resolve but short enough to fit many
        // batches into the measurement window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let batch = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement_time {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.result = Some(start.elapsed() / iters.max(1) as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark<F>(label: &str, warm_up: Duration, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        warm_up_time: warm_up,
        measurement_time: measurement,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(mean) => println!("{label:<60} time: {}", format_duration(mean)),
        None => println!("{label:<60} (no timing loop executed)"),
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
