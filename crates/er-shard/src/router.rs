//! The cross-shard query router.

use crate::boundary::BoundaryIndex;
use crate::config::ShardConfig;
use er_core::{ApproxConfig, CostBreakdown, Exact, GraphContext, ResistanceEstimator};
use er_graph::transform::induced_subgraph;
use er_graph::{NodeId, Partition, SubgraphMap};
use er_index::{LandmarkBounds, LandmarkIndex, LandmarkSelection};
use er_service::{
    Accuracy, Backend, Plan, Query, QueryShapeSet, Request, ResistanceService, Response,
    ServiceError, StreamPlan,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard of the serving plane: its service over the induced subgraph,
/// the global↔local id mapping, and a shard-local landmark index anchored
/// at the shard's boundary portals.
struct ShardContext {
    service: ResistanceService,
    map: SubgraphMap,
    /// Landmark index over the shard subgraph whose leading landmarks are
    /// exactly this shard's portals, in [`BoundaryIndex::portals_of`] order —
    /// position `i` here and portal `i` there refer to the same node.
    /// `None` only for a portal-free topology (a single shard).
    portals: Option<LandmarkIndex>,
}

/// How one pair was answered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RouteKind {
    /// Both endpoints in one shard: forwarded to the owning service.
    Intra,
    /// Endpoints in different shards: answered from the stitched interval
    /// midpoint.
    CrossBounds,
    /// Cross-shard with an interval wider than the threshold (or an exact
    /// request): answered by a global exact solve.
    Escalated,
}

/// A routed answer with its provenance.
#[derive(Clone, Copy, Debug)]
pub struct RoutedAnswer {
    /// The resistance value (estimate, interval midpoint, or exact).
    pub value: f64,
    /// The stitched cross-shard interval, when one was computed (also
    /// populated for escalated pairs — it is what triggered escalation).
    pub bounds: Option<LandmarkBounds>,
    /// How the pair was served.
    pub kind: RouteKind,
}

/// Counters of routed traffic, snapshotted by [`ShardRouter::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Pairs forwarded to a single owning shard.
    pub intra: u64,
    /// Cross-shard pairs answered from the stitched interval.
    pub cross: u64,
    /// Cross-shard pairs escalated to a global exact solve.
    pub escalated: u64,
}

#[derive(Default)]
struct AtomicStats {
    intra: AtomicU64,
    cross: AtomicU64,
    escalated: AtomicU64,
}

/// Routes pair queries across a partitioned serving plane.
///
/// Implements [`Backend`], so it plugs into a full-graph
/// [`ResistanceService`] via `with_pair_router` — planner-routed `Pair`,
/// `Batch` and `EdgeSet` requests then flow through the shards while
/// source-shaped queries and explicit backend overrides keep their ordinary
/// path. See the crate docs for the bound-stitching math.
///
/// ```
/// use er_shard::{ShardConfig, ShardedService};
/// use er_graph::generators;
/// use er_service::{Query, Request};
///
/// let g = generators::watts_strogatz(80, 6, 0.1, 5).unwrap();
/// let sharded =
///     ShardedService::build(&g, ShardConfig::with_shards(2), Default::default()).unwrap();
/// let response = sharded.submit(&Request::new(Query::pair(0, 40))).unwrap();
/// assert_eq!(response.backend, "SHARD");
///
/// let router = sharded.router();
/// let stats = router.stats();
/// assert_eq!(stats.intra + stats.cross + stats.escalated, 1);
/// if router.shard_of(0) != router.shard_of(40) {
///     // Cross-shard: the answer came from a sound stitched interval.
///     let bounds = router.cross_bounds(0, 40).unwrap();
///     assert!(bounds.lower <= bounds.upper);
/// }
/// ```
pub struct ShardRouter {
    partition: Partition,
    shards: Vec<ShardContext>,
    boundary: BoundaryIndex,
    /// Preprocessed full graph, for escalation solves.
    global: GraphContext,
    config: ShardConfig,
    stats: AtomicStats,
}

impl ShardRouter {
    /// Builds the per-shard services, portal landmark indexes and the
    /// portal-portal distance table for an existing partition.
    ///
    /// Fails with the underlying estimator error when a shard's induced
    /// subgraph is not ergodic (disconnected parts cannot occur for a
    /// connected input, but bipartite parts can) — [`crate::ShardedService`]
    /// catches that and retries with fewer shards.
    pub fn build(
        global: GraphContext,
        partition: Partition,
        config: ShardConfig,
        approx: ApproxConfig,
    ) -> Result<Self, ServiceError> {
        let graph = global.graph();
        let boundary = BoundaryIndex::build(graph, &partition, config.max_portals, approx.threads);
        let mut shards = Vec::with_capacity(partition.num_parts);
        for p in 0..partition.num_parts {
            let (subgraph, map) = induced_subgraph(graph, &partition.part_nodes(p))
                .map_err(|e| ServiceError::Index(er_index::IndexError::Graph(e)))?;
            let local_portals: Vec<NodeId> = boundary
                .portals_of(p)
                .iter()
                .map(|&v| map.local_of(v).expect("portals lie inside their shard"))
                .collect();
            let portals = if local_portals.is_empty() {
                None
            } else {
                Some(LandmarkIndex::build_with_required(
                    &subgraph,
                    &local_portals,
                    0,
                    LandmarkSelection::Mixed,
                    config.seed,
                )?)
            };
            let service = ResistanceService::with_config(subgraph, approx)?
                .with_required_landmarks(local_portals);
            shards.push(ShardContext {
                service,
                map,
                portals,
            });
        }
        Ok(ShardRouter {
            partition,
            shards,
            boundary,
            global,
            config,
            stats: AtomicStats::default(),
        })
    }

    /// The partition the router serves over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The router's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The portal distance table.
    pub fn boundary_index(&self) -> &BoundaryIndex {
        &self.boundary
    }

    /// Number of shards actually serving.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning global node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.partition.assignment[v]
    }

    /// Snapshot of the routed-traffic counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            intra: self.stats.intra.load(Ordering::Relaxed),
            cross: self.stats.cross.load(Ordering::Relaxed),
            escalated: self.stats.escalated.load(Ordering::Relaxed),
        }
    }

    /// The sound interval for a cross-shard pair (`None` when both
    /// endpoints live in the same shard — those are forwarded, not
    /// stitched).
    ///
    /// Soundness: `√r` is a metric on the full graph and shard-local
    /// resistances dominate global ones (Rayleigh monotonicity), so for
    /// every portal pair `(a, b)` the path `s → a → b → t` upper-bounds
    /// `√r_G(s, t)` by `√r_A(s,a) + √r_G(a,b) + √r_B(b,t)` and the reverse
    /// triangle lower-bounds it by `√r_G(a,b) − √r_A(s,a) − √r_B(b,t)`.
    pub fn cross_bounds(&self, s: NodeId, t: NodeId) -> Option<LandmarkBounds> {
        let (sa, sb) = (self.shard_of(s), self.shard_of(t));
        if sa == sb {
            return None;
        }
        let ctx_a = &self.shards[sa];
        let ctx_b = &self.shards[sb];
        let (la, lb) = (
            ctx_a.map.local_of(s).expect("s lies in its shard"),
            ctx_b.map.local_of(t).expect("t lies in its shard"),
        );
        let index_a = ctx_a.portals.as_ref().expect("multi-shard has portals");
        let index_b = ctx_b.portals.as_ref().expect("multi-shard has portals");
        let num_a = self.boundary.portals_of(sa).len();
        let num_b = self.boundary.portals_of(sb).len();
        let mut lower: f64 = 0.0;
        let mut upper = f64::INFINITY;
        for i in 0..num_a {
            let da = index_a.sqrt_resistance(i, la);
            for j in 0..num_b {
                let db = index_b.sqrt_resistance(j, lb);
                let dab = self.boundary.sqrt_between(sa, i, sb, j);
                let high = da + dab + db;
                upper = upper.min(high * high);
                let low = (dab - da - db).max(0.0);
                lower = lower.max(low * low);
            }
        }
        Some(LandmarkBounds { lower, upper })
    }

    /// Whether a cross-shard interval escalates under `accuracy`.
    fn escalates(&self, bounds: &LandmarkBounds, accuracy: Accuracy) -> bool {
        matches!(accuracy, Accuracy::Exact)
            || (self.config.escalate && bounds.width() > self.config.width_threshold)
    }

    /// Routes one pair end to end (the single-pair face of the [`Backend`]
    /// implementation; tests and benches use it to inspect provenance).
    pub fn route(
        &self,
        s: NodeId,
        t: NodeId,
        accuracy: Accuracy,
    ) -> Result<RoutedAnswer, ServiceError> {
        match self.cross_bounds(s, t) {
            None => {
                let shard = self.shard_of(s);
                let ctx = &self.shards[shard];
                let pair = (
                    ctx.map.local_of(s).expect("s lies in its shard"),
                    ctx.map.local_of(t).expect("t lies in its shard"),
                );
                let response = ctx
                    .service
                    .submit(&Request::new(Query::pair(pair.0, pair.1)).with_accuracy(accuracy))?;
                self.stats.intra.fetch_add(1, Ordering::Relaxed);
                Ok(RoutedAnswer {
                    value: response.value(),
                    bounds: None,
                    kind: RouteKind::Intra,
                })
            }
            Some(bounds) => {
                if self.escalates(&bounds, accuracy) {
                    let (value, _) = self.escalate(s, t)?;
                    self.stats.escalated.fetch_add(1, Ordering::Relaxed);
                    Ok(RoutedAnswer {
                        value,
                        bounds: Some(bounds),
                        kind: RouteKind::Escalated,
                    })
                } else {
                    self.stats.cross.fetch_add(1, Ordering::Relaxed);
                    Ok(RoutedAnswer {
                        value: bounds.estimate(),
                        bounds: Some(bounds),
                        kind: RouteKind::CrossBounds,
                    })
                }
            }
        }
    }

    /// Global exact CG solve for an escalated pair.
    fn escalate(&self, s: NodeId, t: NodeId) -> Result<(f64, CostBreakdown), ServiceError> {
        let mut exact = Exact::with_solver(&self.global);
        let estimate = exact.estimate(s, t)?;
        Ok((estimate.value, estimate.cost))
    }
}

impl Backend for ShardRouter {
    fn name(&self) -> &'static str {
        "SHARD"
    }

    fn capabilities(&self) -> QueryShapeSet {
        QueryShapeSet::PAIRWISE
    }

    /// Answers a pair-shaped plan: intra-shard items are grouped per shard
    /// and forwarded as one local batch each (the owning service dedups,
    /// caches and parallelises exactly as an unsharded service would);
    /// cross-shard items are stitched or escalated individually.
    ///
    /// The `StreamPlan` is ignored: per-shard services re-derive RNG streams
    /// from local pair content, which is what makes intra-shard answers
    /// bit-identical to an unsharded service over the same subgraph.
    fn answer(&self, plan: &Plan, _streams: &StreamPlan) -> Result<Response, ServiceError> {
        let mut values = vec![0.0; plan.items.len()];
        let mut cost = CostBreakdown::default();
        let mut item_costs = vec![CostBreakdown::default(); plan.items.len()];
        let mut backend_calls = 0u64;
        // slot lists per shard for intra items, collected first so each
        // shard sees one batch.
        let mut intra: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut cross: Vec<usize> = Vec::new();
        for (slot, item) in plan.items.iter().enumerate() {
            if self.shard_of(item.s) == self.shard_of(item.t) {
                intra[self.shard_of(item.s)].push(slot);
            } else {
                cross.push(slot);
            }
        }
        for (shard, slots) in intra.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let ctx = &self.shards[shard];
            let pairs: Vec<(NodeId, NodeId)> = slots
                .iter()
                .map(|&slot| {
                    let item = &plan.items[slot];
                    (
                        ctx.map.local_of(item.s).expect("item lies in its shard"),
                        ctx.map.local_of(item.t).expect("item lies in its shard"),
                    )
                })
                .collect();
            let response = ctx
                .service
                .submit(&Request::new(Query::batch(pairs)).with_accuracy(plan.accuracy))?;
            for (&slot, &value) in slots.iter().zip(&response.values) {
                values[slot] = value;
            }
            cost += response.cost;
            backend_calls += response.backend_calls;
            self.stats
                .intra
                .fetch_add(slots.len() as u64, Ordering::Relaxed);
        }
        for slot in cross {
            let item = &plan.items[slot];
            let bounds = self
                .cross_bounds(item.s, item.t)
                .expect("slot was classified cross-shard");
            if self.escalates(&bounds, plan.accuracy) {
                let (value, exact_cost) = self.escalate(item.s, item.t)?;
                values[slot] = value;
                item_costs[slot] = exact_cost;
                cost += exact_cost;
                self.stats.escalated.fetch_add(1, Ordering::Relaxed);
            } else {
                values[slot] = bounds.estimate();
                self.stats.cross.fetch_add(1, Ordering::Relaxed);
            }
            backend_calls += 1;
        }
        Ok(Response {
            values,
            nodes: Vec::new(),
            backend: self.name(),
            cost,
            shared_cost: CostBreakdown::default(),
            item_costs,
            cache_hits: 0,
            backend_calls,
            trivial_queries: 0,
        })
    }
}
