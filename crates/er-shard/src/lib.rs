//! Sharded serving plane for pairwise effective resistance.
//!
//! One `ResistanceService` per machine stops scaling when the graph (or the
//! query rate) outgrows it. This crate splits the graph into `k` balanced,
//! connected parts ([`er_graph::Partitioner`]) and serves each part with its
//! own [`ResistanceService`](er_service::ResistanceService) over the induced
//! subgraph. A [`ShardRouter`] sits in front:
//!
//! * **Intra-shard** pairs (both endpoints in one part) are forwarded to the
//!   owning shard unchanged — answers are *bit-identical* to an unsharded
//!   service over the same induced subgraph, because the per-shard services
//!   run the same planner, the same estimator configuration and the same
//!   content-derived RNG streams on the same local node ids.
//! * **Cross-shard** pairs are answered from a sound interval stitched out
//!   of boundary-landmark distances. Each shard pins its boundary *portals*
//!   as landmarks of a shard-local index; the [`BoundaryIndex`] stores the
//!   exact *global* resistance between every pair of portals. Because `√r`
//!   is a metric and shard-local resistances only overestimate global ones
//!   (Rayleigh monotonicity: deleting the rest of the graph can only raise
//!   resistance), the triangle inequality composes the two soundly:
//!
//!   ```text
//!   upper = min over portals a ∈ shard(s), b ∈ shard(t) of
//!           (√r_A(s,a) + √r_G(a,b) + √r_B(b,t))²
//!   lower = max over the same portals of
//!           max(0, √r_G(a,b) − √r_A(s,a) − √r_B(b,t))²
//!   ```
//!
//!   The router answers with the interval midpoint; when the interval is
//!   wider than [`ShardConfig::width_threshold`] (or the request demands
//!   [`Accuracy::Exact`](er_service::Accuracy)) it *escalates* to a global
//!   exact CG solve instead.
//!
//! [`ShardedService`] bundles the partition, the per-shard services and the
//! router behind the ordinary service front door: it is a full-graph
//! `ResistanceService` with the router installed via
//! `with_pair_router`, so the server, HTTP front end and CLI all work on a
//! sharded topology unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod config;
pub mod router;
pub mod service;

pub use boundary::BoundaryIndex;
pub use config::ShardConfig;
pub use router::{RouteKind, RoutedAnswer, RouterStats, ShardRouter};
pub use service::ShardedService;
