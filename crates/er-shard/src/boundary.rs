//! Exact global resistances between shard boundary portals.
//!
//! Cross-shard bound stitching needs one global quantity: the exact
//! effective resistance `r_G(a, b)` between portal `a` of one shard and
//! portal `b` of another, measured on the *full* graph (shard-local
//! resistances overestimate it). The [`BoundaryIndex`] pays one full-graph
//! Laplacian solve per portal at build time and stores `√r_G(a, b)` for
//! every portal pair, so query-time stitching is a table lookup.

use er_graph::{Graph, NodeId, Partition};
use er_index::solve_column;
use er_walks::par;

/// Per-shard portal sets plus the `√r_G(portal, portal)` distance table.
pub struct BoundaryIndex {
    /// `portals[p]` — global ids of shard `p`'s portals: its boundary nodes
    /// ordered by degree (descending, ties by lower id), capped at the
    /// configured maximum.
    portals: Vec<Vec<NodeId>>,
    /// Offset of shard `p`'s portals in the flattened distance table.
    offsets: Vec<usize>,
    /// `√r_G` between every pair of portals, row-major over the flattened
    /// portal list.
    sqrt_between: Vec<f64>,
    /// Total portal count across all shards.
    total: usize,
}

impl BoundaryIndex {
    /// Selects portals for every shard of `partition` and solves their
    /// exact global resistances on `graph` (one Laplacian solve per portal,
    /// parallelised over `threads`).
    pub fn build(
        graph: &Graph,
        partition: &Partition,
        max_portals: usize,
        threads: usize,
    ) -> BoundaryIndex {
        let max_portals = max_portals.max(1);
        let mut portals: Vec<Vec<NodeId>> = Vec::with_capacity(partition.num_parts);
        for p in 0..partition.num_parts {
            let mut boundary = partition.boundary_of(p);
            // Hub portals first: high-degree boundary nodes are the nodes
            // cross-cut commodity actually flows through, so they anchor the
            // tightest triangle bounds.
            boundary.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            boundary.truncate(max_portals);
            portals.push(boundary);
        }
        let mut offsets = Vec::with_capacity(portals.len());
        let mut total = 0;
        for shard_portals in &portals {
            offsets.push(total);
            total += shard_portals.len();
        }
        let flat: Vec<NodeId> = portals.iter().flatten().copied().collect();
        // One pseudo-inverse column per portal; r(a, b) then follows from the
        // column identity r(a, b) = x_a[a] + x_b[b] − x_a[b] − x_b[a]
        // without needing the full diagonal.
        let columns = par::par_map_indexed(total as u64, 0, threads, |i, _rng| {
            solve_column(graph, flat[i as usize])
        });
        let mut sqrt_between = vec![0.0; total * total];
        for i in 0..total {
            for j in (i + 1)..total {
                let r = columns[i][flat[i]] + columns[j][flat[j]]
                    - columns[i][flat[j]]
                    - columns[j][flat[i]];
                let d = r.max(0.0).sqrt();
                sqrt_between[i * total + j] = d;
                sqrt_between[j * total + i] = d;
            }
        }
        BoundaryIndex {
            portals,
            offsets,
            sqrt_between,
            total,
        }
    }

    /// Global ids of shard `p`'s portals, in table order.
    pub fn portals_of(&self, p: usize) -> &[NodeId] {
        &self.portals[p]
    }

    /// `√r_G` between portal `i` of shard `a` and portal `j` of shard `b`
    /// (indices into [`portals_of`](Self::portals_of) order).
    pub fn sqrt_between(&self, a: usize, i: usize, b: usize, j: usize) -> f64 {
        debug_assert!(i < self.portals[a].len() && j < self.portals[b].len());
        let row = self.offsets[a] + i;
        let col = self.offsets[b] + j;
        self.sqrt_between[row * self.total + col]
    }

    /// Total portal count across all shards.
    pub fn num_portals(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::{generators, PartitionConfig, Partitioner};
    use er_index::AllPairsResistance;

    #[test]
    fn portal_distances_match_all_pairs_ground_truth() {
        let g = generators::watts_strogatz(60, 6, 0.1, 5).unwrap();
        let partition = Partitioner::new(PartitionConfig::with_parts(2))
            .partition(&g)
            .unwrap();
        let index = BoundaryIndex::build(&g, &partition, 4, 1);
        assert!(index.num_portals() >= 2);
        let truth = AllPairsResistance::compute(&g).unwrap();
        for (i, &a) in index.portals_of(0).iter().enumerate() {
            for (j, &b) in index.portals_of(1).iter().enumerate() {
                let stored = index.sqrt_between(0, i, 1, j);
                let exact = truth.get(a, b).sqrt();
                assert!(
                    (stored - exact).abs() < 1e-6,
                    "√r({a},{b}): stored {stored}, exact {exact}"
                );
                // Symmetric lookup.
                assert_eq!(stored, index.sqrt_between(1, j, 0, i));
            }
        }
    }

    #[test]
    fn portal_cap_and_ordering() {
        let g = generators::barabasi_albert(80, 3, 9).unwrap();
        let partition = Partitioner::new(PartitionConfig::with_parts(2))
            .partition(&g)
            .unwrap();
        let index = BoundaryIndex::build(&g, &partition, 3, 1);
        for p in 0..2 {
            let portals = index.portals_of(p);
            assert!(!portals.is_empty() && portals.len() <= 3);
            for w in portals.windows(2) {
                assert!(
                    g.degree(w[0]) > g.degree(w[1])
                        || (g.degree(w[0]) == g.degree(w[1]) && w[0] < w[1]),
                    "portals must be degree-desc, id-asc"
                );
            }
            for &v in portals {
                assert_eq!(partition.assignment[v], p);
                assert!(partition.boundary_nodes.binary_search(&v).is_ok());
            }
        }
    }
}
