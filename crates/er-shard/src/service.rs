//! The sharded front door.

use crate::config::ShardConfig;
use crate::router::ShardRouter;
use er_core::{ApproxConfig, GraphContext};
use er_graph::{IntoGraphArc, Partition, PartitionConfig, Partitioner};
use er_service::{Request, ResistanceService, Response, ServiceError};
use std::sync::Arc;

/// A partitioned serving plane behind the ordinary service interface.
///
/// `ShardedService` is a full-graph [`ResistanceService`] whose
/// planner-routed pair traffic flows through a [`ShardRouter`]: intra-shard
/// pairs are answered by the owning shard's own service (bit-identical to an
/// unsharded service over that subgraph), cross-shard pairs from stitched
/// boundary-landmark intervals with exact-solve escalation. Everything that
/// consumes a `ResistanceService` — the server worker pool, the HTTP front
/// end, sessions — works on [`service`](Self::service) /
/// [`into_service`](Self::into_service) unchanged.
pub struct ShardedService {
    service: ResistanceService,
    router: Arc<ShardRouter>,
}

impl ShardedService {
    /// Partitions `graph` into `config.num_shards` parts and builds the
    /// per-shard services and the router.
    ///
    /// The estimators require each shard's induced subgraph to be ergodic
    /// (connected and non-bipartite). The partitioner guarantees connected
    /// parts for a connected input, but a part can come out bipartite; when
    /// that happens the builder transparently retries with one shard fewer,
    /// down to a single shard (the full — validated — graph).
    pub fn build(
        graph: impl IntoGraphArc,
        config: ShardConfig,
        approx: ApproxConfig,
    ) -> Result<Self, ServiceError> {
        let context = GraphContext::preprocess(graph)?;
        let mut k = config.num_shards.max(1);
        loop {
            let partition = Partitioner::new(PartitionConfig {
                num_parts: k,
                balance_slack: config.balance_slack,
                sweeps: config.sweeps,
                seed: config.seed,
            })
            .partition(context.graph())
            .map_err(|e| ServiceError::Index(er_index::IndexError::Graph(e)))?;
            match ShardRouter::build(context.clone(), partition, config, approx) {
                Ok(router) => {
                    let router = Arc::new(router);
                    let service = ResistanceService::from_context(context, approx)
                        .with_pair_router(router.clone());
                    return Ok(ShardedService { service, router });
                }
                // A shard subgraph failed estimator validation (bipartite
                // part): coarsen and retry. k = 1 is the full graph, which
                // `preprocess` above already validated, so this terminates.
                Err(ServiceError::Estimator(_)) if k > 1 => k -= 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits a request through the routed front door.
    pub fn submit(&self, request: &Request) -> Result<Response, ServiceError> {
        self.service.submit(request)
    }

    /// The routed full-graph service (for spawning a server, HTTP front
    /// end, or sessions on top).
    pub fn service(&self) -> &ResistanceService {
        &self.service
    }

    /// Consumes the wrapper, returning the routed service.
    pub fn into_service(self) -> ResistanceService {
        self.service
    }

    /// The router, for partition, bounds and traffic-statistics inspection.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// The partition the plane serves over.
    pub fn partition(&self) -> &Partition {
        self.router.partition()
    }
}
