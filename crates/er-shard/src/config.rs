//! Configuration of the sharded serving plane.

/// How the graph is split and how cross-shard queries are answered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardConfig {
    /// Number of shards to aim for. Clamped to the node count; shards whose
    /// induced subgraph fails the estimators' ergodicity requirements make
    /// the builder fall back to `num_shards − 1` (down to 1).
    pub num_shards: usize,
    /// Balance slack forwarded to the partitioner: no part may exceed
    /// `(1 + balance_slack) · n / k` nodes.
    pub balance_slack: f64,
    /// Label-propagation refinement sweeps of the partitioner.
    pub sweeps: usize,
    /// Maximum number of boundary portals per shard. Portals are the
    /// highest-degree boundary nodes; more portals tighten cross-shard
    /// bounds at the cost of one global Laplacian solve each at build time.
    pub max_portals: usize,
    /// Cross-shard intervals wider than this escalate to a global exact
    /// solve (when [`escalate`](Self::escalate) is on).
    pub width_threshold: f64,
    /// Whether wide cross-shard intervals escalate at all. With escalation
    /// off the router always answers the interval midpoint (requests with
    /// `Accuracy::Exact` still escalate — an interval midpoint is not an
    /// exact answer).
    pub escalate: bool,
    /// Seed for the partitioner and the per-shard landmark top-ups.
    pub seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            num_shards: 2,
            balance_slack: 0.1,
            sweeps: 8,
            max_portals: 16,
            width_threshold: 0.25,
            escalate: true,
            seed: 0x5eed,
        }
    }
}

impl ShardConfig {
    /// Default config with `k` shards.
    pub fn with_shards(k: usize) -> Self {
        ShardConfig {
            num_shards: k.max(1),
            ..Self::default()
        }
    }

    /// Sets the escalation width threshold.
    #[must_use]
    pub fn with_width_threshold(mut self, width: f64) -> Self {
        self.width_threshold = width;
        self
    }

    /// Sets the per-shard portal cap.
    #[must_use]
    pub fn with_max_portals(mut self, max_portals: usize) -> Self {
        self.max_portals = max_portals.max(1);
        self
    }

    /// Turns escalation on or off.
    #[must_use]
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate = escalate;
        self
    }

    /// Sets the partitioner/landmark seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ShardConfig::with_shards(4)
            .with_width_threshold(0.5)
            .with_max_portals(8)
            .with_escalation(false)
            .with_seed(7);
        assert_eq!(c.num_shards, 4);
        assert_eq!(c.width_threshold, 0.5);
        assert_eq!(c.max_portals, 8);
        assert!(!c.escalate);
        assert_eq!(c.seed, 7);
        assert_eq!(ShardConfig::with_shards(0).num_shards, 1);
    }
}
