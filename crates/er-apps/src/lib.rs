//! Applications of pairwise effective-resistance estimation.
//!
//! The introduction of the paper motivates fast ε-approximate PER queries
//! with a list of downstream uses; this crate implements one representative
//! pipeline per family, all built on the public APIs of `er-core`,
//! `er-index` and `er-graph`:
//!
//! * [`clustering`] — resistance k-medoids graph clustering with modularity /
//!   adjusted-Rand-index quality measures (graph clustering \[2, 51, 79\]).
//! * [`recommend`] — 2-hop candidate generation ranked by effective
//!   resistance, plus an offline holdout evaluation against a
//!   common-neighbours baseline (recommender systems \[24, 36\]).
//! * [`robustness`] — edge criticality, sampled Kirchhoff index and
//!   targeted-vs-random attack simulation (power networks, cascading
//!   failures \[26, 59–61\]).
//! * [`anomaly`] — probe-pair monitoring across graph snapshots
//!   (time-evolving anomaly localisation \[64\]).
//! * [`segmentation`] — commute-time segmentation of pixel-grid similarity
//!   graphs (image segmentation \[9, 50\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod clustering;
pub mod recommend;
pub mod robustness;
pub mod segmentation;

pub use anomaly::{ResistanceMonitor, SnapshotReport};
pub use clustering::{
    adjusted_rand_index, modularity, resistance_separation, ClusteringConfig, ClusteringResult,
    ResistanceClustering,
};
pub use recommend::{
    evaluate_holdout, holdout_split, EvaluationReport, HoldoutSplit, Recommendation, Recommender,
};
pub use robustness::{
    disconnection_point, edge_criticality, estimate_kirchhoff_index, simulate_attack, AttackStep,
    AttackStrategy, EdgeCriticality,
};
pub use segmentation::{segment, Segmentation, SyntheticImage};
