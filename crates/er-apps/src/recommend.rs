//! Link recommendation by effective-resistance proximity.
//!
//! The paper's introduction cites recommender systems \[24, 36\] as a core ER
//! application: a small `r(s, t)` means many short, edge-disjoint connections
//! between `s` and `t` — a much more robust proximity signal than a raw
//! common-neighbour count. The access pattern is exactly what ε-approximate
//! PER queries are designed for: a handful of pairwise queries per request,
//! over a candidate pool generated structurally (2-hop neighbourhood).
//!
//! Besides the online [`Recommender`], the module ships an offline evaluation
//! harness: hold out a fraction of edges, recommend on the remaining graph,
//! and measure how many held-out neighbours appear in the top-k — for the ER
//! ranker and for a common-neighbours baseline, so the example and tests can
//! show the comparison the application literature makes.

use er_core::{ApproxConfig, EstimatorError, GraphContext};
use er_graph::{transform, Graph, GraphError, NodeId};
use er_service::{Query, Request, ResistanceService};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// A ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Recommended node.
    pub node: NodeId,
    /// Estimated effective resistance to the query user (lower = closer).
    pub resistance: f64,
    /// Number of common neighbours with the query user (reported for
    /// comparison; not used in the ranking).
    pub common_neighbors: usize,
}

/// Effective-resistance link recommender over a static graph.
///
/// Owns a [`ResistanceService`] — which is itself `Send + Sync` with a
/// `&self` submit path since the concurrent-serving redesign — so
/// recommenders are shareable in long-lived services and any number of
/// threads can call [`recommend`](Self::recommend) at once. Each request is
/// one [`Query::Batch`] whose pairs all share the query user; the service's
/// planner routes such repeated-source batches to its exact index tier on
/// graphs small enough to justify building it (or once the index exists),
/// and to GEER otherwise.
pub struct Recommender {
    context: GraphContext,
    service: ResistanceService,
    config: ApproxConfig,
    max_candidates: usize,
}

impl Recommender {
    /// Default cap on the candidate pool evaluated per request.
    pub const DEFAULT_MAX_CANDIDATES: usize = 300;

    /// Builds a recommender (runs the spectral preprocessing once).
    pub fn new(graph: &Graph, config: ApproxConfig) -> Result<Self, EstimatorError> {
        let context = GraphContext::preprocess(graph)?;
        let service = ResistanceService::from_context(context.clone(), config);
        Ok(Recommender {
            context,
            service,
            config,
            max_candidates: Self::DEFAULT_MAX_CANDIDATES,
        })
    }

    /// Overrides the candidate-pool cap.
    #[must_use]
    pub fn with_max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates = cap.max(1);
        self
    }

    /// The 2-hop candidate pool of `user`: nodes at distance exactly two
    /// (neither the user nor direct friends), in ascending node order.
    pub fn candidates(&self, user: NodeId) -> Result<Vec<NodeId>, EstimatorError> {
        let graph = self.context.graph();
        graph.check_node(user)?;
        let friends: BTreeSet<NodeId> = graph.neighbors(user).iter().copied().collect();
        let mut pool = BTreeSet::new();
        for &f in &friends {
            for &ff in graph.neighbors(f) {
                if ff != user && !friends.contains(&ff) {
                    pool.insert(ff);
                }
            }
        }
        Ok(pool.into_iter().collect())
    }

    /// Recommends the `k` closest candidates of `user` by effective
    /// resistance (ascending).
    pub fn recommend(&self, user: NodeId, k: usize) -> Result<Vec<Recommendation>, EstimatorError> {
        let graph = self.context.graph();
        let candidates = self.candidates(user)?;
        let pool: Vec<NodeId> = candidates
            .iter()
            .take(self.max_candidates)
            .copied()
            .collect();
        let pairs: Vec<(NodeId, NodeId)> = pool.iter().map(|&c| (user, c)).collect();
        let request = Request::new(Query::batch(pairs)).with_accuracy(self.config.into());
        let values = self.service.submit(&request)?.values;
        let mut scored = Vec::with_capacity(pool.len());
        for (&c, &resistance) in pool.iter().zip(&values) {
            let common_neighbors = graph
                .neighbors(user)
                .iter()
                .filter(|&&f| graph.has_edge(f, c))
                .count();
            scored.push(Recommendation {
                node: c,
                resistance,
                common_neighbors,
            });
        }
        scored.sort_by(|a, b| {
            a.resistance
                .partial_cmp(&b.resistance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        scored.truncate(k);
        Ok(scored)
    }
}

/// A train/test split of a graph's edges for offline evaluation.
#[derive(Clone, Debug)]
pub struct HoldoutSplit {
    /// The training graph (original minus held-out edges).
    pub train: Graph,
    /// The held-out edges (ground-truth "future links").
    pub held_out: Vec<(NodeId, NodeId)>,
}

/// Removes roughly `fraction` of the edges while keeping the training graph
/// connected (edges whose removal would disconnect the current graph are
/// skipped). Deterministic for a fixed seed.
pub fn holdout_split(graph: &Graph, fraction: f64, seed: u64) -> Result<HoldoutSplit, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    edges.shuffle(&mut rng);
    let target = ((graph.num_edges() as f64) * fraction.clamp(0.0, 0.5)).round() as usize;
    let mut held_out = Vec::with_capacity(target);
    let mut current = transform::remove_edges(graph, &[])?;
    for (u, v) in edges {
        if held_out.len() >= target {
            break;
        }
        // Cheap necessary condition first, exact connectivity check second.
        if current.degree(u) <= 1 || current.degree(v) <= 1 {
            continue;
        }
        let candidate = transform::remove_edges(&current, &[(u, v)])?;
        if er_graph::analysis::is_connected(&candidate) {
            current = candidate;
            held_out.push((u, v));
        }
    }
    Ok(HoldoutSplit {
        train: current,
        held_out,
    })
}

/// Result of an offline evaluation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvaluationReport {
    /// Hit rate of the effective-resistance ranker.
    pub er_hit_rate: f64,
    /// Hit rate of the common-neighbours baseline on the same requests.
    pub common_neighbor_hit_rate: f64,
    /// Number of (user, held-out neighbour) test cases evaluated.
    pub cases: usize,
}

/// Evaluates top-`k` hit rate on a holdout split: for every held-out edge
/// `(u, v)` (looked at from both endpoints) we ask each ranker for its top-k
/// recommendations on the training graph and count a hit when the missing
/// neighbour appears.
pub fn evaluate_holdout(
    split: &HoldoutSplit,
    config: ApproxConfig,
    k: usize,
    max_cases: usize,
) -> Result<EvaluationReport, EstimatorError> {
    let recommender = Recommender::new(&split.train, config)?;
    let graph = &split.train;
    let mut er_hits = 0usize;
    let mut cn_hits = 0usize;
    let mut cases = 0usize;
    'outer: for &(u, v) in &split.held_out {
        for (user, target) in [(u, v), (v, u)] {
            if cases >= max_cases {
                break 'outer;
            }
            // The target must be reachable as a 2-hop candidate for the case
            // to be answerable at all (same filter for both rankers).
            let candidates = recommender.candidates(user)?;
            if !candidates.contains(&target) {
                continue;
            }
            cases += 1;
            let top = recommender.recommend(user, k)?;
            if top.iter().any(|rec| rec.node == target) {
                er_hits += 1;
            }
            // Common-neighbours baseline over the same candidate pool.
            let mut by_common: Vec<(NodeId, usize)> = candidates
                .iter()
                .map(|&c| {
                    let common = graph
                        .neighbors(user)
                        .iter()
                        .filter(|&&f| graph.has_edge(f, c))
                        .count();
                    (c, common)
                })
                .collect();
            by_common.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            if by_common.iter().take(k).any(|&(c, _)| c == target) {
                cn_hits += 1;
            }
        }
    }
    Ok(EvaluationReport {
        er_hit_rate: if cases == 0 {
            0.0
        } else {
            er_hits as f64 / cases as f64
        },
        common_neighbor_hit_rate: if cases == 0 {
            0.0
        } else {
            cn_hits as f64 / cases as f64
        },
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn small_config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.1,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn candidates_are_exactly_distance_two() {
        let g = generators::social_network_like(400, 8.0, 3).unwrap();
        let recommender = Recommender::new(&g, small_config()).unwrap();
        let user = 42;
        let candidates = recommender.candidates(user).unwrap();
        let distances = er_graph::analysis::bfs_distances(&g, user);
        assert!(!candidates.is_empty());
        for &c in &candidates {
            assert_eq!(distances[c], 2, "candidate {c} must be at distance 2");
        }
        assert!(recommender.candidates(4000).is_err());
    }

    #[test]
    fn recommendations_are_sorted_and_bounded() {
        let g = generators::social_network_like(500, 10.0, 9).unwrap();
        let recommender = Recommender::new(&g, small_config())
            .unwrap()
            .with_max_candidates(50);
        let recs = recommender.recommend(10, 5).unwrap();
        assert!(recs.len() <= 5);
        for pair in recs.windows(2) {
            assert!(pair[0].resistance <= pair[1].resistance);
        }
        for rec in &recs {
            assert!(!g.has_edge(10, rec.node), "recommendations are non-friends");
            assert!(rec.resistance > 0.0);
        }
    }

    #[test]
    fn holdout_split_keeps_training_graph_connected() {
        let g = generators::social_network_like(300, 8.0, 1).unwrap();
        let split = holdout_split(&g, 0.1, 5).unwrap();
        assert!(er_graph::analysis::is_connected(&split.train));
        assert!(!split.held_out.is_empty());
        assert_eq!(
            split.train.num_edges() + split.held_out.len(),
            g.num_edges()
        );
        for &(u, v) in &split.held_out {
            assert!(g.has_edge(u, v));
            assert!(!split.train.has_edge(u, v));
        }
    }

    #[test]
    fn er_ranker_recovers_held_out_links_better_than_chance() {
        let g = generators::community_social_network(240, 10.0, 3, 0.05, 4).unwrap();
        let split = holdout_split(&g, 0.08, 9).unwrap();
        let report = evaluate_holdout(&split, small_config(), 10, 30).unwrap();
        assert!(report.cases > 0);
        // Candidate pools have dozens to hundreds of nodes; random guessing at
        // k = 10 would land well under 20%. Both structured rankers do far
        // better on a community graph.
        assert!(
            report.er_hit_rate > 0.2,
            "ER hit rate {} too low",
            report.er_hit_rate
        );
        assert!(report.common_neighbor_hit_rate > 0.0);
    }

    #[test]
    fn holdout_fraction_is_clamped() {
        let g = generators::complete(20).unwrap();
        let split = holdout_split(&g, 0.9, 2).unwrap();
        // Clamped to one half of the edges at most.
        assert!(split.held_out.len() <= g.num_edges() / 2 + 1);
        assert!(er_graph::analysis::is_connected(&split.train));
    }
}
