//! Anomaly detection on time-evolving graphs.
//!
//! The paper cites anomaly localisation in time-evolving graphs \[64\] as an ER
//! application in the data-management community: effective resistance between
//! probe pairs is a global connectivity summary, so a sudden jump of
//! `r(s, t)` between consecutive snapshots signals that structure carrying
//! the `s`–`t` connection disappeared (a severed corridor, a failed router, a
//! de-friended community bridge) even when `s` and `t` themselves are
//! untouched.
//!
//! [`ResistanceMonitor`] tracks a fixed set of probe pairs across snapshots
//! and flags snapshots whose resistance delta is an outlier relative to the
//! history observed so far (mean + `threshold_sigmas` · standard deviation,
//! with a small absolute floor so the very first snapshots cannot trigger on
//! noise alone).

use er_core::{ApproxConfig, EstimatorError};
use er_graph::{Graph, NodeId};
use er_service::{Query, Request, ResistanceService};

/// Per-snapshot monitoring outcome.
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// Index of the snapshot in the stream (0-based; the baseline snapshot is
    /// index 0 and never flagged).
    pub snapshot: usize,
    /// Resistance of every probe pair in this snapshot.
    pub resistances: Vec<f64>,
    /// Absolute change per probe pair relative to the previous snapshot.
    pub deltas: Vec<f64>,
    /// Probe pairs flagged as anomalous in this snapshot.
    pub flagged: Vec<usize>,
}

impl SnapshotReport {
    /// Whether any probe pair was flagged.
    pub fn is_anomalous(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// The largest per-pair delta in this snapshot.
    pub fn max_delta(&self) -> f64 {
        self.deltas.iter().copied().fold(0.0, f64::max)
    }
}

/// Streaming monitor of probe-pair resistances.
pub struct ResistanceMonitor {
    probes: Vec<(NodeId, NodeId)>,
    config: ApproxConfig,
    threshold_sigmas: f64,
    min_delta: f64,
    /// Per-probe history of |Δr| values observed so far.
    history: Vec<Vec<f64>>,
    previous: Option<Vec<f64>>,
    snapshots_seen: usize,
}

impl ResistanceMonitor {
    /// Creates a monitor for the given probe pairs.
    ///
    /// `threshold_sigmas` controls how far above the historical mean a delta
    /// must lie to be flagged; `min_delta` is an absolute floor below which
    /// nothing is flagged (guards against flagging pure estimator noise; set
    /// it to at least the estimator's ε).
    pub fn new(
        probes: Vec<(NodeId, NodeId)>,
        config: ApproxConfig,
        threshold_sigmas: f64,
        min_delta: f64,
    ) -> Self {
        let history = vec![Vec::new(); probes.len()];
        ResistanceMonitor {
            probes,
            config,
            threshold_sigmas,
            min_delta,
            history,
            previous: None,
            snapshots_seen: 0,
        }
    }

    /// The monitored probe pairs.
    pub fn probes(&self) -> &[(NodeId, NodeId)] {
        &self.probes
    }

    /// Number of snapshots observed so far.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// Ingests the next snapshot and reports deltas/flags.
    ///
    /// Every snapshot is preprocessed fresh (the graph changed); the probe
    /// pairs go through [`ResistanceService`] as one batch.
    pub fn observe(&mut self, snapshot: &Graph) -> Result<SnapshotReport, EstimatorError> {
        let service = ResistanceService::with_config(snapshot, self.config)?;
        let request =
            Request::new(Query::batch(self.probes.clone())).with_accuracy(self.config.into());
        let resistances = service.submit(&request)?.values;
        let index = self.snapshots_seen;
        self.snapshots_seen += 1;

        let (deltas, flagged) = match &self.previous {
            None => (vec![0.0; self.probes.len()], Vec::new()),
            Some(previous) => {
                let deltas: Vec<f64> = resistances
                    .iter()
                    .zip(previous)
                    .map(|(now, before)| (now - before).abs())
                    .collect();
                let mut flagged = Vec::new();
                for (p, &delta) in deltas.iter().enumerate() {
                    let history = &self.history[p];
                    let threshold = if history.is_empty() {
                        self.min_delta
                    } else {
                        let mean = history.iter().sum::<f64>() / history.len() as f64;
                        let variance = history.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
                            / history.len() as f64;
                        (mean + self.threshold_sigmas * variance.sqrt()).max(self.min_delta)
                    };
                    if delta > threshold {
                        flagged.push(p);
                    }
                }
                for (p, &delta) in deltas.iter().enumerate() {
                    self.history[p].push(delta);
                }
                (deltas, flagged)
            }
        };
        self.previous = Some(resistances.clone());
        Ok(SnapshotReport {
            snapshot: index,
            resistances,
            deltas,
            flagged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::{generators, transform, GraphBuilder};

    fn config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.05,
            ..ApproxConfig::default()
        }
    }

    /// Two communities joined by three bridges; the "event" removes two of
    /// them, leaving the graph connected but much more stretched.
    fn corridor_graph() -> (Graph, Vec<(usize, usize)>) {
        let a = generators::barabasi_albert(60, 3, 1).unwrap();
        let b = generators::barabasi_albert(60, 3, 2).unwrap();
        let mut builder = GraphBuilder::from_edges(120, a.edges());
        for (u, v) in b.edges() {
            builder = builder.add_edge(60 + u, 60 + v);
        }
        let bridges = vec![(10, 70), (20, 80), (30, 90)];
        for &(u, v) in &bridges {
            builder = builder.add_edge(u, v);
        }
        (builder.build().unwrap(), bridges)
    }

    #[test]
    fn severed_corridor_is_flagged_and_quiet_periods_are_not() {
        let (g, bridges) = corridor_graph();
        // Probe pairs: one spanning the two communities, one inside a community.
        let mut monitor = ResistanceMonitor::new(vec![(0, 119), (0, 40)], config(), 4.0, 0.1);

        // Several quiet snapshots: the graph plus a couple of random edges that
        // change nothing structural.
        let mut reports = Vec::new();
        reports.push(monitor.observe(&g).unwrap());
        let quiet1 = transform::add_edges(&g, &[(2, 17)]).unwrap();
        reports.push(monitor.observe(&quiet1).unwrap());
        let quiet2 = transform::add_edges(&quiet1, &[(61, 97)]).unwrap();
        reports.push(monitor.observe(&quiet2).unwrap());
        assert!(
            reports.iter().all(|r| !r.is_anomalous()),
            "quiet period must not flag"
        );

        // The event: two of the three bridges disappear.
        let severed = transform::remove_edges(&quiet2, &bridges[..2]).unwrap();
        let event = monitor.observe(&severed).unwrap();
        assert!(event.is_anomalous(), "the severed corridor must be flagged");
        assert!(
            event.flagged.contains(&0),
            "the cross-community probe flags"
        );
        assert!(
            !event.flagged.contains(&1),
            "the intra-community probe stays quiet"
        );
        assert!(event.max_delta() > 0.1);
        assert_eq!(monitor.snapshots_seen(), 4);
    }

    #[test]
    fn first_snapshot_is_never_anomalous() {
        let g = generators::social_network_like(100, 8.0, 5).unwrap();
        let mut monitor = ResistanceMonitor::new(vec![(0, 50)], config(), 3.0, 0.05);
        let report = monitor.observe(&g).unwrap();
        assert_eq!(report.snapshot, 0);
        assert!(!report.is_anomalous());
        assert_eq!(report.deltas, vec![0.0]);
        assert_eq!(report.resistances.len(), 1);
    }

    #[test]
    fn invalid_probe_pairs_surface_as_errors() {
        let g = generators::complete(10).unwrap();
        let mut monitor = ResistanceMonitor::new(vec![(0, 99)], config(), 3.0, 0.05);
        assert!(monitor.observe(&g).is_err());
    }

    #[test]
    fn monitor_exposes_probes() {
        let probes = vec![(1, 2), (3, 4)];
        let monitor = ResistanceMonitor::new(probes.clone(), config(), 3.0, 0.01);
        assert_eq!(monitor.probes(), probes.as_slice());
        assert_eq!(monitor.snapshots_seen(), 0);
    }
}
