//! Network robustness analysis with effective resistance.
//!
//! In infrastructure networks (the paper cites cascading failures and power
//! grid stability \[26, 59–61\]) the effective resistance of an edge measures
//! how much of the connection between its endpoints is carried by that edge:
//! `r(e) = 1` means the edge is a bridge, `r(e) ≈ 0` means plenty of parallel
//! paths exist. The whole-graph Kirchhoff index `Σ_{s<t} r(s, t)` is the
//! standard global robustness score. This module provides:
//!
//! * per-edge criticality ranking ([`edge_criticality`]),
//! * a sampled Kirchhoff-index estimator for graphs too large for all-pairs
//!   computation ([`estimate_kirchhoff_index`]),
//! * targeted-vs-random attack simulation ([`simulate_attack`]) that tracks
//!   connectivity and largest-component size as edges are removed.

use er_core::{ApproxConfig, EstimatorError};
use er_graph::{analysis, transform, Graph, NodeId};
use er_service::{Query, Request, ResistanceService};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An edge with its criticality score (its effective resistance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeCriticality {
    /// Edge endpoint.
    pub u: NodeId,
    /// Edge endpoint.
    pub v: NodeId,
    /// Effective resistance of the edge (1 = bridge, near 0 = redundant).
    pub resistance: f64,
}

/// Scores every edge by its effective resistance and returns the edges
/// sorted by decreasing criticality.
///
/// The whole edge list goes through [`ResistanceService`] as one
/// [`Query::EdgeSet`] — the shape tree-sampling backends answer natively on
/// large graphs, while small graphs are answered exactly.
pub fn edge_criticality(
    graph: &Graph,
    config: ApproxConfig,
) -> Result<Vec<EdgeCriticality>, EstimatorError> {
    let service = ResistanceService::with_config(graph, config)?;
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let request = Request::new(Query::edge_set(edges.clone())).with_accuracy(config.into());
    let response = service.submit(&request)?;
    let mut scored = Vec::with_capacity(edges.len());
    for (&(u, v), &value) in edges.iter().zip(&response.values) {
        let resistance = value.clamp(0.0, 1.0);
        scored.push(EdgeCriticality { u, v, resistance });
    }
    scored.sort_by(|a, b| {
        b.resistance
            .partial_cmp(&a.resistance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(scored)
}

/// Estimates the Kirchhoff index `Σ_{s<t} r(s, t)` by uniform pair sampling
/// (`sample_pairs` ε-approximate queries), returning the estimate and its
/// sample standard error.
pub fn estimate_kirchhoff_index(
    graph: &Graph,
    config: ApproxConfig,
    sample_pairs: usize,
    seed: u64,
) -> Result<(f64, f64), EstimatorError> {
    let n = graph.num_nodes();
    let total_pairs = (n * (n - 1) / 2) as f64;
    let service = ResistanceService::with_config(graph, config)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = sample_pairs.max(2);
    let mut pairs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let s = rng.gen_range(0..n);
        let mut t = rng.gen_range(0..n);
        while t == s {
            t = rng.gen_range(0..n);
        }
        pairs.push((s, t));
    }
    let request = Request::new(Query::batch(pairs)).with_accuracy(config.into());
    let values = service.submit(&request)?.values;
    let mean = values.iter().sum::<f64>() / samples as f64;
    let variance =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (samples as f64 - 1.0);
    let estimate = mean * total_pairs;
    let standard_error = (variance / samples as f64).sqrt() * total_pairs;
    Ok((estimate, standard_error))
}

/// How the attack chooses which edges to remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackStrategy {
    /// Remove edges in decreasing effective-resistance order (targeted).
    HighestResistance,
    /// Remove uniformly random edges (the usual robustness baseline).
    Random {
        /// Seed for the random removal order.
        seed: u64,
    },
}

/// State of the network after a prefix of removals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackStep {
    /// Number of edges removed so far.
    pub removed: usize,
    /// Whether the graph is still connected.
    pub connected: bool,
    /// Fraction of nodes in the largest connected component.
    pub largest_component_fraction: f64,
}

/// Removes up to `max_removals` edges following `strategy`, recording the
/// connectivity trajectory after every removal.
pub fn simulate_attack(
    graph: &Graph,
    config: ApproxConfig,
    strategy: AttackStrategy,
    max_removals: usize,
) -> Result<Vec<AttackStep>, EstimatorError> {
    let order: Vec<(NodeId, NodeId)> = match strategy {
        AttackStrategy::HighestResistance => edge_criticality(graph, config)?
            .into_iter()
            .map(|e| (e.u, e.v))
            .collect(),
        AttackStrategy::Random { seed } => {
            let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
            edges.shuffle(&mut StdRng::seed_from_u64(seed));
            edges
        }
    };
    let max_removals = max_removals.min(order.len());
    let n = graph.num_nodes() as f64;
    let mut steps = Vec::with_capacity(max_removals);
    let mut current = transform::remove_edges(graph, &[]).map_err(EstimatorError::from)?;
    for (i, &(u, v)) in order.iter().take(max_removals).enumerate() {
        current = transform::remove_edges(&current, &[(u, v)]).map_err(EstimatorError::from)?;
        let components = analysis::connected_components(&current);
        let num_components = components.iter().copied().max().map_or(1, |c| c + 1);
        let mut sizes = vec![0usize; num_components];
        for &c in &components {
            sizes[c] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0) as f64;
        steps.push(AttackStep {
            removed: i + 1,
            connected: num_components == 1,
            largest_component_fraction: largest / n,
        });
    }
    Ok(steps)
}

/// Number of removals after which the graph first disconnects, if it does
/// within the simulated horizon.
pub fn disconnection_point(steps: &[AttackStep]) -> Option<usize> {
    steps.iter().find(|s| !s.connected).map(|s| s.removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_graph::GraphBuilder;

    fn config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.1,
            ..ApproxConfig::default()
        }
    }

    /// Two meshes joined by two tie lines — the classic "weak corridor".
    fn two_region_grid() -> Graph {
        let a = generators::grid(6, 6).unwrap();
        let mut b = GraphBuilder::from_edges(72, a.edges());
        // Diagonals make both regions non-bipartite.
        b = b.add_edge(0, 7).add_edge(36, 43);
        for (u, v) in generators::grid(6, 6).unwrap().edges() {
            b = b.add_edge(36 + u, 36 + v);
        }
        b = b.add_edge(5, 36); // tie line 1
        b = b.add_edge(35, 66); // tie line 2
        b.build().unwrap()
    }

    #[test]
    fn tie_lines_rank_among_the_most_critical_edges() {
        let g = two_region_grid();
        let ranking = edge_criticality(&g, config()).unwrap();
        assert_eq!(ranking.len(), g.num_edges());
        // Scores are sorted descending and lie in [0, 1].
        for pair in ranking.windows(2) {
            assert!(pair[0].resistance >= pair[1].resistance);
        }
        assert!(ranking.iter().all(|e| (0.0..=1.0).contains(&e.resistance)));
        let top10: Vec<(NodeId, NodeId)> = ranking.iter().take(10).map(|e| (e.u, e.v)).collect();
        assert!(
            top10.contains(&(5, 36)) || top10.contains(&(35, 66)),
            "a tie line must appear in the top-10 critical edges: {top10:?}"
        );
    }

    #[test]
    fn targeted_attack_disconnects_faster_than_random() {
        let g = two_region_grid();
        let budget = 12;
        let targeted =
            simulate_attack(&g, config(), AttackStrategy::HighestResistance, budget).unwrap();
        let random =
            simulate_attack(&g, config(), AttackStrategy::Random { seed: 17 }, budget).unwrap();
        assert_eq!(targeted.len(), budget);
        assert_eq!(random.len(), budget);
        let targeted_disconnect = disconnection_point(&targeted).unwrap_or(usize::MAX);
        let random_disconnect = disconnection_point(&random).unwrap_or(usize::MAX);
        assert!(
            targeted_disconnect <= random_disconnect,
            "targeted {targeted_disconnect} vs random {random_disconnect}"
        );
        // Component fractions never increase as edges are removed.
        for pair in targeted.windows(2) {
            assert!(
                pair[1].largest_component_fraction <= pair[0].largest_component_fraction + 1e-12
            );
        }
    }

    #[test]
    fn kirchhoff_estimate_matches_exact_on_complete_graph() {
        // K_n: Kf = n - 1 exactly.
        let n = 30;
        let g = generators::complete(n).unwrap();
        let (estimate, stderr) = estimate_kirchhoff_index(&g, config(), 200, 3).unwrap();
        let exact = n as f64 - 1.0;
        assert!(
            (estimate - exact).abs() < 4.0 * stderr.max(0.5),
            "estimate {estimate} ± {stderr} vs exact {exact}"
        );
    }

    #[test]
    fn kirchhoff_estimate_tracks_index_crate_on_structured_graph() {
        let g = generators::community_social_network(150, 8.0, 2, 0.05, 6).unwrap();
        let exact = er_index::ErIndex::build(&g).unwrap().kirchhoff_index();
        let (estimate, stderr) = estimate_kirchhoff_index(&g, config(), 400, 11).unwrap();
        assert!(
            (estimate - exact).abs() < 5.0 * stderr + 0.05 * exact,
            "estimate {estimate} ± {stderr} vs exact {exact}"
        );
    }

    #[test]
    fn bridges_score_one_in_criticality() {
        let g = generators::lollipop(8, 3).unwrap();
        let ranking = edge_criticality(&g, config()).unwrap();
        // The three tail edges (including the clique attachment) are bridges
        // and must occupy the top ranks with r ≈ 1.
        for e in ranking.iter().take(3) {
            assert!(
                e.resistance > 0.9,
                "bridge ({}, {}) scored {}",
                e.u,
                e.v,
                e.resistance
            );
        }
    }
}
