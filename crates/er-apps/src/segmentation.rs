//! Commute-time image segmentation on pixel-grid graphs.
//!
//! The paper cites image segmentation \[9, 50\] as an ER application: pixels
//! are nodes, similar neighbouring pixels are connected, and commute-time
//! (equivalently, effective-resistance) clustering separates regions because
//! few edges cross a perceptual boundary, so the resistance across the
//! boundary is large even when a handful of noisy links leak through it.
//!
//! The module provides a small synthetic-image substrate (the paper's image
//! data is not available, and real image IO is out of scope) plus a
//! segmentation pipeline: threshold the intensity difference of 4-neighbour
//! pixels into a graph, then run [`ResistanceClustering`] on its largest
//! connected component.

use crate::clustering::{ClusteringConfig, ResistanceClustering};
use er_graph::{analysis, Graph, GraphBuilder};
use er_index::IndexError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grey-scale synthetic image (row-major intensities in `[0, 1]`).
#[derive(Clone, Debug)]
pub struct SyntheticImage {
    width: usize,
    height: usize,
    intensities: Vec<f64>,
}

impl SyntheticImage {
    /// Creates an image from raw intensities (must have `width * height`
    /// entries).
    pub fn new(width: usize, height: usize, intensities: Vec<f64>) -> Self {
        assert_eq!(intensities.len(), width * height);
        SyntheticImage {
            width,
            height,
            intensities,
        }
    }

    /// A two-region image: the left half is dark (≈0.2), the right half is
    /// bright (≈0.8), with additive uniform noise of amplitude `noise`.
    pub fn two_region(width: usize, height: usize, noise: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let intensities = (0..width * height)
            .map(|idx| {
                let col = idx % width;
                let base = if col < width / 2 { 0.2 } else { 0.8 };
                (base + noise * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0)
            })
            .collect();
        SyntheticImage::new(width, height, intensities)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Intensity of pixel `(row, col)`.
    pub fn intensity(&self, row: usize, col: usize) -> f64 {
        self.intensities[row * self.width + col]
    }

    /// Ground-truth region of each pixel for the [`two_region`](Self::two_region)
    /// image (0 = left, 1 = right).
    pub fn two_region_truth(&self) -> Vec<usize> {
        (0..self.width * self.height)
            .map(|idx| usize::from(idx % self.width >= self.width / 2))
            .collect()
    }

    /// Builds the 4-neighbour similarity graph: adjacent pixels are connected
    /// iff their intensity difference is below `threshold`. A small number of
    /// across-boundary edges typically survives the threshold when the image
    /// is noisy — that is the case effective-resistance clustering handles.
    pub fn similarity_graph(&self, threshold: f64) -> Graph {
        let mut builder = GraphBuilder::new(self.width * self.height);
        let id = |row: usize, col: usize| row * self.width + col;
        for row in 0..self.height {
            for col in 0..self.width {
                if col + 1 < self.width
                    && (self.intensity(row, col) - self.intensity(row, col + 1)).abs() < threshold
                {
                    builder = builder.add_edge(id(row, col), id(row, col + 1));
                }
                if row + 1 < self.height
                    && (self.intensity(row, col) - self.intensity(row + 1, col)).abs() < threshold
                {
                    builder = builder.add_edge(id(row, col), id(row + 1, col));
                }
                // A diagonal link among similar pixels keeps the per-region
                // graphs non-bipartite (grids are bipartite otherwise).
                if row + 1 < self.height
                    && col + 1 < self.width
                    && (self.intensity(row, col) - self.intensity(row + 1, col + 1)).abs()
                        < threshold
                {
                    builder = builder.add_edge(id(row, col), id(row + 1, col + 1));
                }
            }
        }
        builder.build().expect("pixel graph has at least one node")
    }
}

/// Result of segmenting an image.
#[derive(Clone, Debug)]
pub struct Segmentation {
    /// Segment label per pixel. Pixels outside the largest connected
    /// component of the similarity graph get the special label
    /// [`Segmentation::UNASSIGNED`].
    pub labels: Vec<usize>,
    /// Number of segments produced (excluding unassigned pixels).
    pub num_segments: usize,
    /// Fraction of pixels that belong to the segmented component.
    pub coverage: f64,
}

impl Segmentation {
    /// Label used for pixels that were not part of the segmented component.
    pub const UNASSIGNED: usize = usize::MAX;

    /// Accuracy against a ground-truth binary labelling, taking the best of
    /// the two possible label matchings and ignoring unassigned pixels.
    pub fn binary_accuracy(&self, truth: &[usize]) -> f64 {
        assert_eq!(truth.len(), self.labels.len());
        let mut agree = 0usize;
        let mut disagree = 0usize;
        for (&label, &t) in self.labels.iter().zip(truth) {
            if label == Self::UNASSIGNED {
                continue;
            }
            if label == t {
                agree += 1;
            } else {
                disagree += 1;
            }
        }
        let total = (agree + disagree).max(1) as f64;
        (agree as f64 / total).max(disagree as f64 / total)
    }
}

/// Segments an image into `num_segments` regions.
///
/// The pipeline first thresholds the intensity differences into a similarity
/// graph. If the thresholding alone already splits the graph into at least
/// `num_segments` connected components (the clean-boundary case), the
/// component labels *are* the segmentation. Otherwise — the interesting case,
/// where noisy links leak across the perceptual boundary — resistance
/// clustering of the largest component separates the regions, because the few
/// leaked edges leave the cross-boundary resistance high.
pub fn segment(
    image: &SyntheticImage,
    threshold: f64,
    num_segments: usize,
    seed: u64,
) -> Result<Segmentation, IndexError> {
    let graph = image.similarity_graph(threshold);
    let components = analysis::connected_components(&graph);
    let num_components = components.iter().copied().max().map_or(1, |c| c + 1);
    if num_components >= num_segments.max(1) {
        return Ok(Segmentation {
            labels: components,
            num_segments: num_components,
            coverage: 1.0,
        });
    }
    let (component, mapping) = analysis::largest_connected_component(&graph);
    let config = ClusteringConfig {
        num_clusters: num_segments,
        seed,
        // Pixel grids are near-regular geometric graphs; the raw resistance
        // carries the structure and needs no degree correction.
        degree_correction: false,
        ..ClusteringConfig::default()
    };
    let clustering = ResistanceClustering::new(&component, config).run()?;
    let mut labels = vec![Segmentation::UNASSIGNED; graph.num_nodes()];
    for (local, &original) in mapping.iter().enumerate() {
        labels[original] = clustering.assignments[local];
    }
    let coverage = mapping.len() as f64 / graph.num_nodes() as f64;
    Ok(Segmentation {
        labels,
        num_segments: clustering.num_clusters(),
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_two_region_image_is_segmented_correctly() {
        // With low noise no edge crosses the boundary, so thresholding alone
        // produces two components and the segmentation is exact.
        let image = SyntheticImage::two_region(16, 12, 0.1, 3);
        let segmentation = segment(&image, 0.3, 2, 7).unwrap();
        let truth = image.two_region_truth();
        let accuracy = segmentation.binary_accuracy(&truth);
        assert!(accuracy > 0.95, "accuracy {accuracy}");
        assert_eq!(segmentation.num_segments, 2);
        assert!((segmentation.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_boundary_still_separates_regions() {
        // Noise amplitude 0.4 lets a good number of cross-boundary edges
        // through the 0.45 threshold; resistance clustering still separates
        // the halves because the cross edges stay a small minority.
        let image = SyntheticImage::two_region(14, 10, 0.4, 11);
        let graph = image.similarity_graph(0.45);
        let cross_edges = graph
            .edges()
            .filter(|&(u, v)| {
                let truth = image.two_region_truth();
                truth[u] != truth[v]
            })
            .count();
        assert!(cross_edges > 0, "the interesting case has leaky boundaries");
        let segmentation = segment(&image, 0.45, 2, 5).unwrap();
        let accuracy = segmentation.binary_accuracy(&image.two_region_truth());
        assert!(
            accuracy > 0.8,
            "accuracy {accuracy} with {cross_edges} leaks"
        );
    }

    #[test]
    fn similarity_graph_respects_threshold() {
        let image = SyntheticImage::new(2, 2, vec![0.0, 1.0, 0.05, 0.95]);
        let strict = image.similarity_graph(0.2);
        assert!(strict.has_edge(0, 2), "left column is similar");
        assert!(strict.has_edge(1, 3), "right column is similar");
        assert!(!strict.has_edge(0, 1), "across the jump is dissimilar");
        let permissive = image.similarity_graph(2.0);
        assert_eq!(
            permissive.num_edges(),
            4 + 1,
            "all 4-neighbour pairs plus one diagonal"
        );
    }

    #[test]
    fn accessors_and_truth_labels() {
        let image = SyntheticImage::two_region(8, 4, 0.0, 0);
        assert_eq!(image.width(), 8);
        assert_eq!(image.height(), 4);
        assert!(image.intensity(0, 0) < 0.5);
        assert!(image.intensity(0, 7) > 0.5);
        let truth = image.two_region_truth();
        assert_eq!(truth.iter().filter(|&&t| t == 0).count(), 16);
        assert_eq!(truth.iter().filter(|&&t| t == 1).count(), 16);
    }
}
