//! Graph clustering by effective-resistance distance.
//!
//! Effective resistance is a metric that shrinks when two nodes are joined by
//! many short, edge-disjoint paths, which is exactly the "same community"
//! signal clustering needs (the paper cites ER-based clustering \[2, 51, 79\]).
//! This module implements resistance k-medoids: nodes are assigned to their
//! closest medoid in resistance distance, and medoids are re-chosen from a
//! candidate pool inside each cluster. Distances are exact single-source
//! rows served by [`ResistanceService`]'s index tier, so one medoid update
//! costs one Laplacian solve per evaluated candidate.
//!
//! On graphs with moderately high degrees the raw resistance degenerates to
//! `r(s, t) ≈ 1/d(s) + 1/d(t)` (von Luxburg–Radl–Hein), drowning the
//! community signal in degree variation. The clusterer therefore uses the
//! *degree-corrected* distance `r(s, t) − 1/d(s) − 1/d(t)` by default — the
//! deviation from the degenerate limit, which is exactly the part carrying
//! global structure. Set [`ClusteringConfig::degree_correction`] to `false`
//! to cluster on raw resistances (appropriate for geometric graphs such as
//! the pixel grids in [`crate::segmentation`]).
//!
//! The module also provides the standard external/internal quality measures
//! used by the tests and examples: adjusted Rand index against ground-truth
//! labels and Newman modularity of the discovered partition.

use er_core::ApproxConfig;
use er_graph::{Graph, NodeId};
use er_index::IndexError;
use er_service::{Accuracy, Query, Request, ResistanceService};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the resistance k-medoids algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusteringConfig {
    /// Number of clusters `k`.
    pub num_clusters: usize,
    /// Maximum number of assign/update rounds.
    pub max_iterations: usize,
    /// Number of candidate nodes evaluated per cluster during a medoid update.
    pub candidates_per_cluster: usize,
    /// Whether to subtract the degenerate `1/d(s) + 1/d(t)` term from every
    /// distance (recommended for social-network-like graphs; see the module
    /// docs).
    pub degree_correction: bool,
    /// RNG seed (initial medoid selection and candidate sampling).
    pub seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            num_clusters: 2,
            max_iterations: 12,
            candidates_per_cluster: 6,
            degree_correction: true,
            seed: 0xc1u64,
        }
    }
}

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct ClusteringResult {
    /// Cluster id (0-based) of every node.
    pub assignments: Vec<usize>,
    /// Medoid node of every cluster.
    pub medoids: Vec<NodeId>,
    /// Number of assign/update rounds executed.
    pub iterations: usize,
    /// Whether the assignment reached a fixed point before `max_iterations`.
    pub converged: bool,
}

impl ClusteringResult {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.medoids.len()
    }

    /// The node ids belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Resistance k-medoids clustering.
pub struct ResistanceClustering<'g> {
    graph: &'g Graph,
    config: ClusteringConfig,
}

impl<'g> ResistanceClustering<'g> {
    /// Creates a clusterer for `graph`.
    pub fn new(graph: &'g Graph, config: ClusteringConfig) -> Self {
        ResistanceClustering { graph, config }
    }

    /// The clustering distance from `source` to every node: raw resistance,
    /// or the degree-corrected deviation `r(s, t) − 1/d(s) − 1/d(t)` (clamped
    /// at zero) when the correction is enabled.
    ///
    /// Rows are exact single-source answers from the service's index tier
    /// (one Laplacian column per source, cached across medoid rounds).
    fn distance_row(
        &self,
        service: &ResistanceService,
        source: NodeId,
    ) -> Result<Vec<f64>, IndexError> {
        let mut row = service.single_source(source)?;
        if self.config.degree_correction {
            let inv_source = 1.0 / self.graph.degree(source) as f64;
            for (v, r) in row.iter_mut().enumerate() {
                if v != source {
                    *r = (*r - inv_source - 1.0 / self.graph.degree(v) as f64).max(0.0);
                }
            }
        }
        Ok(row)
    }

    /// Runs the clustering.
    pub fn run(&self) -> Result<ClusteringResult, IndexError> {
        let n = self.graph.num_nodes();
        let k = self.config.num_clusters.max(1).min(n);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let service = ResistanceService::with_config(
            self.graph,
            ApproxConfig::default().reseeded(self.config.seed),
        )?;

        // k-means++-style seeding in (corrected) resistance distance: first
        // medoid is a random node, each further medoid is sampled
        // proportionally to its squared distance from the closest existing
        // medoid.
        let mut medoids: Vec<NodeId> = vec![rng.gen_range(0..n)];
        let mut closest = self.distance_row(&service, medoids[0])?;
        while medoids.len() < k {
            let weights: Vec<f64> = closest.iter().map(|&d| d * d).collect();
            let total: f64 = weights.iter().sum();
            let next = if total <= 0.0 {
                // Degenerate (complete graph with k > distinct distances):
                // pick any node that is not already a medoid.
                (0..n).find(|v| !medoids.contains(v)).unwrap_or(0)
            } else {
                let mut r = rng.gen::<f64>() * total;
                let mut chosen = n - 1;
                for (v, &w) in weights.iter().enumerate() {
                    if r < w {
                        chosen = v;
                        break;
                    }
                    r -= w;
                }
                chosen
            };
            medoids.push(next);
            let distances = self.distance_row(&service, next)?;
            for v in 0..n {
                if distances[v] < closest[v] {
                    closest[v] = distances[v];
                }
            }
        }

        let mut assignments = vec![0usize; n];
        let mut converged = false;
        let mut iterations = 0;
        for _ in 0..self.config.max_iterations.max(1) {
            iterations += 1;
            // Assignment step: nearest medoid in (corrected) resistance distance.
            let mut distance_rows = Vec::with_capacity(k);
            for &m in &medoids {
                distance_rows.push(self.distance_row(&service, m)?);
            }
            let mut new_assignments = vec![0usize; n];
            for v in 0..n {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, row) in distance_rows.iter().enumerate() {
                    if row[v] < best_d {
                        best_d = row[v];
                        best = c;
                    }
                }
                new_assignments[v] = best;
            }
            let unchanged = new_assignments == assignments && iterations > 1;
            assignments = new_assignments;
            if unchanged {
                converged = true;
                break;
            }

            // Update step: evaluate a few candidates per cluster and keep the
            // one with the lowest total resistance to its members.
            for c in 0..k {
                let members: Vec<NodeId> = (0..n).filter(|&v| assignments[v] == c).collect();
                if members.is_empty() {
                    continue;
                }
                let mut candidates = members.clone();
                candidates.shuffle(&mut rng);
                candidates.truncate(self.config.candidates_per_cluster.max(1));
                if !candidates.contains(&medoids[c]) && assignments[medoids[c]] == c {
                    candidates.push(medoids[c]);
                }
                let mut best = medoids[c];
                let mut best_cost = f64::INFINITY;
                for &candidate in &candidates {
                    let row = self.distance_row(&service, candidate)?;
                    let cost: f64 = members.iter().map(|&v| row[v]).sum();
                    if cost < best_cost {
                        best_cost = cost;
                        best = candidate;
                    }
                }
                medoids[c] = best;
            }
        }

        Ok(ClusteringResult {
            assignments,
            medoids,
            iterations,
            converged,
        })
    }
}

/// Newman modularity of a partition (higher is better; 0 for random
/// partitions, negative for anti-community structure).
pub fn modularity(graph: &Graph, assignments: &[usize]) -> f64 {
    assert_eq!(assignments.len(), graph.num_nodes());
    let two_m = graph.num_directed_edges() as f64;
    if two_m == 0.0 {
        return 0.0;
    }
    let num_clusters = assignments.iter().copied().max().map_or(0, |c| c + 1);
    let mut internal = vec![0.0f64; num_clusters];
    let mut degree_sum = vec![0.0f64; num_clusters];
    for v in graph.nodes() {
        degree_sum[assignments[v]] += graph.degree(v) as f64;
    }
    for (u, v) in graph.edges() {
        if assignments[u] == assignments[v] {
            internal[assignments[u]] += 1.0;
        }
    }
    (0..num_clusters)
        .map(|c| 2.0 * internal[c] / two_m - (degree_sum[c] / two_m).powi(2))
        .sum()
}

/// Adjusted Rand index between two labelings (1 = identical partitions,
/// ~0 = independent partitions). Label values need not match, only the
/// induced partition matters.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().copied().max().map_or(0, |x| x + 1);
    let kb = b.iter().copied().max().map_or(0, |x| x + 1);
    let mut contingency = vec![vec![0u64; kb]; ka];
    for i in 0..n {
        contingency[a[i]][b[i]] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_cells: f64 = contingency
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let row_sums: Vec<u64> = contingency.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..kb)
        .map(|j| contingency.iter().map(|row| row[j]).sum())
        .collect();
    let sum_rows: f64 = row_sums.iter().map(|&r| choose2(r)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        1.0
    } else {
        (sum_cells - expected) / (max_index - expected)
    }
}

/// Mean effective resistance inside clusters and across clusters, on a sample
/// of node pairs — the internal quality measure reported by the clustering
/// example (well-separated communities have a large gap).
pub fn resistance_separation(
    graph: &Graph,
    assignments: &[usize],
    sample_pairs: usize,
    seed: u64,
) -> Result<(f64, f64), IndexError> {
    let service = ResistanceService::new(graph)?;
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    let mut guard = 0;
    while (intra.len() < sample_pairs || inter.len() < sample_pairs) && guard < 100 * sample_pairs {
        guard += 1;
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t {
            continue;
        }
        let r = service
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(Accuracy::Exact))?
            .value();
        if assignments[s] == assignments[t] {
            if intra.len() < sample_pairs {
                intra.push(r);
            }
        } else if inter.len() < sample_pairs {
            inter.push(r);
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    Ok((mean(&intra), mean(&inter)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    /// Two dense communities joined by a handful of cross edges, with known
    /// ground-truth labels.
    fn two_communities(seed: u64) -> (Graph, Vec<usize>) {
        let g = generators::community_social_network(160, 12.0, 2, 0.01, seed).unwrap();
        let labels: Vec<usize> = (0..160).map(|v| if v < 80 { 0 } else { 1 }).collect();
        (g, labels)
    }

    #[test]
    fn recovers_planted_communities() {
        let (g, truth) = two_communities(7);
        let config = ClusteringConfig {
            num_clusters: 2,
            ..ClusteringConfig::default()
        };
        let result = ResistanceClustering::new(&g, config).run().unwrap();
        assert_eq!(result.assignments.len(), 160);
        assert_eq!(result.num_clusters(), 2);
        let ari = adjusted_rand_index(&result.assignments, &truth);
        assert!(ari > 0.7, "adjusted Rand index {ari}");
        let q = modularity(&g, &result.assignments);
        assert!(q > 0.2, "modularity {q}");
    }

    #[test]
    fn cluster_bookkeeping_is_consistent() {
        let (g, _) = two_communities(3);
        let result = ResistanceClustering::new(&g, ClusteringConfig::default())
            .run()
            .unwrap();
        let sizes = result.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
        for (c, &size) in sizes.iter().enumerate() {
            let members = result.members(c);
            assert_eq!(members.len(), size);
            assert!(members.iter().all(|&v| result.assignments[v] == c));
        }
        assert!(result.iterations >= 1);
    }

    #[test]
    fn intra_cluster_resistance_is_smaller_than_inter() {
        let (g, truth) = two_communities(11);
        let (intra, inter) = resistance_separation(&g, &truth, 40, 5).unwrap();
        assert!(
            intra < inter,
            "intra-community resistance {intra} should be below inter {inter}"
        );
    }

    #[test]
    fn modularity_of_known_partitions() {
        let (g, truth) = two_communities(19);
        let good = modularity(&g, &truth);
        let trivial = modularity(&g, &vec![0; g.num_nodes()]);
        let alternating: Vec<usize> = (0..g.num_nodes()).map(|v| v % 2).collect();
        let bad = modularity(&g, &alternating);
        assert!(good > 0.3);
        assert!(trivial.abs() < 1e-12);
        assert!(bad < good);
    }

    #[test]
    fn adjusted_rand_index_properties() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Relabelling clusters does not change the index.
        let relabelled = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &relabelled) - 1.0).abs() < 1e-12);
        // A partition into singletons vs. one block is far from 1.
        let singletons = vec![0, 1, 2, 3, 4, 5];
        let one_block = vec![0, 0, 0, 0, 0, 0];
        assert!(adjusted_rand_index(&singletons, &one_block) < 0.1);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }

    #[test]
    fn single_cluster_and_k_equal_n_edge_cases() {
        let g = generators::complete(12).unwrap();
        let one = ResistanceClustering::new(
            &g,
            ClusteringConfig {
                num_clusters: 1,
                ..ClusteringConfig::default()
            },
        )
        .run()
        .unwrap();
        assert!(one.assignments.iter().all(|&a| a == 0));
        let many = ResistanceClustering::new(
            &g,
            ClusteringConfig {
                num_clusters: 40,
                max_iterations: 2,
                ..ClusteringConfig::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!(many.num_clusters(), 12, "k is clamped to n");
    }
}
