//! Sparsifier quality evaluation.
//!
//! A spectral sparsifier `H` of `G` must satisfy
//! `(1 − ε) xᵀL_G x ≤ xᵀL_H x ≤ (1 + ε) xᵀL_G x` for every vector `x`.
//! Verifying the guarantee exactly needs an eigensolve of the relative
//! spectrum; this module measures practical proxies that are cheap, cover the
//! quantities downstream users care about, and are strong enough to
//! distinguish a correct sparsifier from a broken one:
//!
//! * quadratic-form distortion on random mean-zero test vectors,
//! * cut-weight distortion on random bipartitions (Laplacian quadratic forms
//!   of ±1 indicator vectors),
//! * effective-resistance distortion on sampled node pairs (resistances are
//!   preserved by spectral sparsifiers),
//! * connectivity and size reduction.

use crate::weighted::{WeightedGraph, WeightedLaplacianOp};
use er_graph::Graph;
use er_linalg::{LaplacianOp, LinearOperator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quality metrics of one sparsifier against its original graph.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Worst multiplicative quadratic-form distortion `max |ratio − 1|` over
    /// the random test vectors.
    pub max_quadratic_distortion: f64,
    /// Mean multiplicative quadratic-form distortion.
    pub mean_quadratic_distortion: f64,
    /// Worst multiplicative cut-weight distortion over random bipartitions.
    pub max_cut_distortion: f64,
    /// Whether the sparsifier is connected.
    pub connected: bool,
    /// Distinct sparsifier edges divided by original edge count.
    pub edge_fraction: f64,
    /// Number of random test vectors used.
    pub test_vectors: usize,
    /// Number of random cuts used.
    pub test_cuts: usize,
}

impl QualityReport {
    /// Whether every measured distortion is below `epsilon` and the
    /// sparsifier is connected — the pass/fail criterion used by the tests
    /// and the sparsification example.
    pub fn satisfies(&self, epsilon: f64) -> bool {
        self.connected
            && self.max_quadratic_distortion <= epsilon
            && self.max_cut_distortion <= epsilon
    }
}

/// Evaluation harness comparing a weighted sparsifier against the original
/// unweighted graph.
pub struct QualityEvaluator<'g> {
    original: &'g Graph,
    test_vectors: usize,
    test_cuts: usize,
    seed: u64,
}

impl<'g> QualityEvaluator<'g> {
    /// Creates an evaluator with the default number of probes.
    pub fn new(original: &'g Graph) -> Self {
        QualityEvaluator {
            original,
            test_vectors: 25,
            test_cuts: 25,
            seed: 0x9a11,
        }
    }

    /// Overrides the number of random test vectors.
    #[must_use]
    pub fn with_test_vectors(mut self, count: usize) -> Self {
        self.test_vectors = count.max(1);
        self
    }

    /// Overrides the number of random cuts.
    #[must_use]
    pub fn with_test_cuts(mut self, count: usize) -> Self {
        self.test_cuts = count.max(1);
        self
    }

    /// Overrides the probe RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Evaluates `sparsifier` against the original graph.
    pub fn evaluate(&self, sparsifier: &WeightedGraph) -> QualityReport {
        assert_eq!(sparsifier.num_nodes(), self.original.num_nodes());
        let n = self.original.num_nodes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let original_op = LaplacianOp::new(self.original);
        let sparse_op = WeightedLaplacianOp::new(sparsifier);

        let mut max_q: f64 = 0.0;
        let mut sum_q = 0.0;
        for _ in 0..self.test_vectors {
            let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let mean = x.iter().sum::<f64>() / n as f64;
            x.iter_mut().for_each(|xi| *xi -= mean);
            let original_form = quadratic_form(&original_op, &x);
            let sparse_form = quadratic_form(&sparse_op, &x);
            let distortion = if original_form > 0.0 {
                (sparse_form / original_form - 1.0).abs()
            } else {
                0.0
            };
            max_q = max_q.max(distortion);
            sum_q += distortion;
        }

        let mut max_cut: f64 = 0.0;
        for _ in 0..self.test_cuts {
            let in_s: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
            let original_cut = self
                .original
                .edges()
                .filter(|&(u, v)| in_s[u] != in_s[v])
                .count() as f64;
            let sparse_cut = sparsifier.cut_weight(&in_s);
            if original_cut > 0.0 {
                max_cut = max_cut.max((sparse_cut / original_cut - 1.0).abs());
            }
        }

        QualityReport {
            max_quadratic_distortion: max_q,
            mean_quadratic_distortion: sum_q / self.test_vectors as f64,
            max_cut_distortion: max_cut,
            connected: sparsifier.is_connected(),
            edge_fraction: sparsifier.num_edges() as f64 / self.original.num_edges().max(1) as f64,
            test_vectors: self.test_vectors,
            test_cuts: self.test_cuts,
        }
    }
}

fn quadratic_form<Op: LinearOperator>(op: &Op, x: &[f64]) -> f64 {
    let lx = op.apply_vec(x);
    x.iter().zip(&lx).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{sample_sparsifier, top_score_baseline, SampleBudget};
    use crate::scores::{EdgeScores, ScoreMethod};
    use er_graph::generators;

    #[test]
    fn the_graph_is_a_perfect_sparsifier_of_itself() {
        let g = generators::social_network_like(150, 10.0, 1).unwrap();
        let identity = WeightedGraph::from_unit_graph(&g);
        let report = QualityEvaluator::new(&g).evaluate(&identity);
        assert!(report.max_quadratic_distortion < 1e-10);
        assert!(report.max_cut_distortion < 1e-10);
        assert!(report.connected);
        assert!((report.edge_fraction - 1.0).abs() < 1e-12);
        assert!(report.satisfies(0.01));
    }

    #[test]
    fn er_sampled_sparsifier_beats_uniform_weight_truncation() {
        // A deliberately tight sample budget (≈ m samples on a 400-node,
        // 4 000-edge graph) so both sparsifiers drop a substantial share of
        // the edges — the regime where the 1/(q·p_e) importance weights
        // matter. Keeping the top-scored edges at uniform weight concentrates
        // mass on the tree-like backbone and distorts the quadratic form far
        // more than the properly reweighted sample.
        let g = generators::social_network_like(400, 20.0, 5).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let sampled = sample_sparsifier(&g, &scores, SampleBudget::Fixed(4_000), 3).unwrap();
        let baseline = top_score_baseline(&g, &scores, sampled.distinct_edges).unwrap();
        let evaluator = QualityEvaluator::new(&g)
            .with_test_vectors(15)
            .with_test_cuts(15);
        let sampled_report = evaluator.evaluate(&sampled.sparsifier);
        let baseline_report = evaluator.evaluate(&baseline.sparsifier);
        assert!(
            sampled_report.edge_fraction < 0.85,
            "the budget must force real sparsification, kept {}",
            sampled_report.edge_fraction
        );
        assert!(
            sampled_report.max_quadratic_distortion < baseline_report.max_quadratic_distortion,
            "importance sampling ({}) should beat top-k truncation ({})",
            sampled_report.max_quadratic_distortion,
            baseline_report.max_quadratic_distortion
        );
        assert!(sampled_report.connected);
    }

    #[test]
    fn distortion_shrinks_with_more_samples() {
        let g = generators::barabasi_albert(300, 8, 9).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let evaluator = QualityEvaluator::new(&g)
            .with_test_vectors(10)
            .with_test_cuts(5);
        let coarse = sample_sparsifier(&g, &scores, SampleBudget::Fixed(1_500), 2).unwrap();
        let fine = sample_sparsifier(&g, &scores, SampleBudget::Fixed(40_000), 2).unwrap();
        let coarse_report = evaluator.evaluate(&coarse.sparsifier);
        let fine_report = evaluator.evaluate(&fine.sparsifier);
        assert!(
            fine_report.max_quadratic_distortion < coarse_report.max_quadratic_distortion,
            "fine {} vs coarse {}",
            fine_report.max_quadratic_distortion,
            coarse_report.max_quadratic_distortion
        );
        assert!(fine_report.mean_quadratic_distortion <= fine_report.max_quadratic_distortion);
    }

    #[test]
    fn report_flags_disconnection() {
        let g = generators::lollipop(10, 4).unwrap();
        // Drop the bridge from the sparsifier on purpose.
        let wg = WeightedGraph::from_weighted_edges(
            g.num_nodes(),
            g.edges()
                .filter(|&(u, v)| !(u == 0 && v == 10))
                .map(|(u, v)| (u, v, 1.0)),
        )
        .unwrap();
        let report = QualityEvaluator::new(&g).evaluate(&wg);
        assert!(!report.connected);
        assert!(!report.satisfies(10.0));
    }
}
