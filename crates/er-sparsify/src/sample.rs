//! Spectral sparsifier construction by importance sampling.
//!
//! Given per-edge scores, the Spielman–Srivastava sparsifier samples `q`
//! edges *with replacement* from the distribution `p_e ∝ score_e` and gives
//! every sampled copy weight `1 / (q · p_e)`. The expected weighted Laplacian
//! equals the original Laplacian, and with `q = O(n log n / ε²)` samples the
//! quadratic form is preserved within `1 ± ε` with high probability \[62\].
//!
//! This module also provides a deterministic *threshold* variant (keep every
//! edge whose score exceeds a cut-off, reweighted by the inverse keep
//! fraction) used as an ablation baseline: it is what a practitioner might
//! naively do with the same scores, and the quality metrics show why the
//! importance-sampling weights matter.

use crate::scores::EdgeScores;
use crate::weighted::WeightedGraph;
use er_graph::{Graph, GraphError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many edge samples to draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleBudget {
    /// Exactly this many samples.
    Fixed(usize),
    /// `⌈scale · n · ln n / ε²⌉` samples — the Spielman–Srivastava schedule.
    SpectralGuarantee {
        /// Target multiplicative quadratic-form error ε.
        epsilon: f64,
        /// Leading constant (the theory uses a moderately large constant; 0.5–4
        /// is plenty at the graph sizes this repository targets).
        scale: f64,
    },
}

impl SampleBudget {
    /// Resolves the budget to a concrete number of samples for `graph`.
    pub fn resolve(&self, graph: &Graph) -> usize {
        match *self {
            SampleBudget::Fixed(q) => q.max(1),
            SampleBudget::SpectralGuarantee { epsilon, scale } => {
                let n = graph.num_nodes().max(2) as f64;
                ((scale * n * n.ln()) / (epsilon * epsilon)).ceil() as usize
            }
        }
    }
}

/// Report of one sparsifier construction.
#[derive(Clone, Debug)]
pub struct SparsifierOutput {
    /// The reweighted sparsifier.
    pub sparsifier: WeightedGraph,
    /// Number of samples drawn (with replacement).
    pub samples_drawn: usize,
    /// Number of distinct edges kept.
    pub distinct_edges: usize,
}

impl SparsifierOutput {
    /// Fraction of the original edge count kept (distinct edges / m).
    pub fn keep_fraction(&self, original: &Graph) -> f64 {
        self.distinct_edges as f64 / original.num_edges().max(1) as f64
    }
}

/// Samples a Spielman–Srivastava sparsifier from pre-computed edge scores.
pub fn sample_sparsifier(
    graph: &Graph,
    scores: &EdgeScores,
    budget: SampleBudget,
    seed: u64,
) -> Result<SparsifierOutput, GraphError> {
    assert_eq!(
        scores.len(),
        graph.num_edges(),
        "scores must cover every edge of the graph"
    );
    let q = budget.resolve(graph);
    let probabilities = scores.probabilities();
    // Cumulative distribution for inverse-transform sampling.
    let mut cumulative = Vec::with_capacity(probabilities.len());
    let mut acc = 0.0;
    for &p in &probabilities {
        acc += p;
        cumulative.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = vec![0.0; scores.len()];
    for _ in 0..q {
        let r: f64 = rng.gen::<f64>() * acc;
        let idx = cumulative.partition_point(|&c| c < r).min(scores.len() - 1);
        weights[idx] += 1.0 / (q as f64 * probabilities[idx]);
    }
    let distinct_edges = weights.iter().filter(|&&w| w > 0.0).count();
    let sparsifier = WeightedGraph::from_weighted_edges(
        graph.num_nodes(),
        scores
            .edges()
            .iter()
            .zip(&weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(&(u, v), &w)| (u, v, w)),
    )?;
    Ok(SparsifierOutput {
        sparsifier,
        samples_drawn: q,
        distinct_edges,
    })
}

/// Deterministic ablation baseline: keep the `keep_count` highest-score edges
/// with uniform weight `m / keep_count`.
///
/// This preserves total edge weight but not the spectrum; the quality metrics
/// in [`crate::quality`] quantify how much worse it is than importance
/// sampling with the same number of edges.
pub fn top_score_baseline(
    graph: &Graph,
    scores: &EdgeScores,
    keep_count: usize,
) -> Result<SparsifierOutput, GraphError> {
    assert_eq!(scores.len(), graph.num_edges());
    let keep_count = keep_count.clamp(1, scores.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores.scores()[b]
            .partial_cmp(&scores.scores()[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let weight = graph.num_edges() as f64 / keep_count as f64;
    let kept: Vec<(usize, usize, f64)> = order[..keep_count]
        .iter()
        .map(|&idx| {
            let (u, v) = scores.edges()[idx];
            (u, v, weight)
        })
        .collect();
    let sparsifier = WeightedGraph::from_weighted_edges(graph.num_nodes(), kept)?;
    Ok(SparsifierOutput {
        sparsifier,
        samples_drawn: keep_count,
        distinct_edges: keep_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMethod;
    use er_graph::generators;

    #[test]
    fn sampling_preserves_total_laplacian_weight_in_expectation() {
        let g = generators::social_network_like(200, 12.0, 3).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let out = sample_sparsifier(&g, &scores, SampleBudget::Fixed(20_000), 7).unwrap();
        // Total weight is an unbiased estimator of m; with 20k samples it
        // should be within a few percent.
        let total = out.sparsifier.total_weight();
        let m = g.num_edges() as f64;
        assert!(
            (total - m).abs() / m < 0.08,
            "total weight {total} vs m {m}"
        );
        assert_eq!(out.samples_drawn, 20_000);
        assert!(out.distinct_edges <= g.num_edges());
        assert!(out.keep_fraction(&g) <= 1.0);
    }

    #[test]
    fn spectral_budget_grows_with_n_and_shrinks_with_epsilon() {
        let small = generators::complete(50).unwrap();
        let large = generators::complete(200).unwrap();
        let loose = SampleBudget::SpectralGuarantee {
            epsilon: 0.5,
            scale: 1.0,
        };
        let tight = SampleBudget::SpectralGuarantee {
            epsilon: 0.1,
            scale: 1.0,
        };
        assert!(loose.resolve(&large) > loose.resolve(&small));
        assert!(tight.resolve(&small) > loose.resolve(&small));
        assert_eq!(SampleBudget::Fixed(0).resolve(&small), 1);
    }

    #[test]
    fn high_resistance_edges_are_almost_always_kept() {
        // The tail edges of a lollipop are bridges (score 1); with a spectral
        // budget they must survive sampling, otherwise the sparsifier would
        // disconnect.
        let g = generators::lollipop(20, 5).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let out = sample_sparsifier(
            &g,
            &scores,
            SampleBudget::SpectralGuarantee {
                epsilon: 0.3,
                scale: 2.0,
            },
            11,
        )
        .unwrap();
        for tail in 20..24 {
            assert!(
                out.sparsifier.edge_weight(tail, tail + 1) > 0.0
                    || out.sparsifier.edge_weight(19, 20) > 0.0,
                "bridges must be sampled"
            );
        }
        assert!(out.sparsifier.is_connected());
    }

    #[test]
    fn top_score_baseline_keeps_requested_count() {
        let g = generators::social_network_like(100, 8.0, 5).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let keep = g.num_edges() / 3;
        let out = top_score_baseline(&g, &scores, keep).unwrap();
        assert_eq!(out.distinct_edges, keep);
        let total = out.sparsifier.total_weight();
        assert!((total - g.num_edges() as f64).abs() < 1e-6);
        // Requesting more edges than exist is clamped.
        let all = top_score_baseline(&g, &scores, 10 * g.num_edges()).unwrap();
        assert_eq!(all.distinct_edges, g.num_edges());
    }
}
