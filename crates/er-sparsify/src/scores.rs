//! Per-edge effective-resistance scores.
//!
//! Spielman & Srivastava sample every edge `e = (u, v)` with probability
//! proportional to its *effective-resistance score* `w_e · r(u, v)` (unit
//! weights here, so just `r(u, v)`). Computing those scores is precisely the
//! workload the paper accelerates: one pairwise query per edge. This module
//! offers four interchangeable strategies with different cost/accuracy
//! trade-offs so the sparsification pipeline (and its ablation benchmarks) can
//! swap them freely:
//!
//! * [`ScoreMethod::Exact`] — one CG Laplacian solve per edge,
//! * [`ScoreMethod::Geer`] — the paper's GEER estimator per edge,
//! * [`ScoreMethod::Sketch`] — a single Spielman–Srivastava random projection
//!   shared by all edges,
//! * [`ScoreMethod::SpanningTrees`] — Wilson-sampled uniform spanning trees;
//!   the score of `e` is the fraction of trees containing `e`
//!   (`r(e) = Pr[e ∈ UST]`, the HAY identity).

use er_core::{ApproxConfig, EstimatorError};
use er_graph::{Graph, NodeId};
use er_linalg::{LaplacianSolver, ResistanceSketch};
use er_service::{Accuracy, BackendChoice, Query, Request, ResistanceService};
use er_walks::kernel::{self, ScratchPool};
use er_walks::{par, sample_spanning_trees};
use std::collections::HashMap;

/// Strategy for computing per-edge resistance scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScoreMethod {
    /// One conjugate-gradient solve per edge (exact, `O(m)` solves).
    Exact,
    /// GEER with the given additive error per edge.
    Geer {
        /// Additive error ε of each per-edge query.
        epsilon: f64,
    },
    /// One shared random-projection sketch queried per edge.
    Sketch {
        /// Multiplicative error parameter of the sketch (controls row count).
        epsilon: f64,
    },
    /// Uniform-spanning-tree sampling; score = tree-membership frequency.
    SpanningTrees {
        /// Number of Wilson trees to sample.
        samples: usize,
    },
}

/// Per-edge effective-resistance scores for one graph.
#[derive(Clone, Debug)]
pub struct EdgeScores {
    edges: Vec<(NodeId, NodeId)>,
    scores: Vec<f64>,
    method: ScoreMethod,
}

impl EdgeScores {
    /// Minimum score assigned to any edge, so degenerate estimates (a sampled
    /// frequency of zero, a negative Monte Carlo fluctuation) never zero out
    /// an edge's sampling probability entirely.
    pub const SCORE_FLOOR: f64 = 1e-9;

    /// Computes the score of every edge of `graph` with the chosen method,
    /// using all cores (see [`Self::compute_with_threads`]).
    pub fn compute(graph: &Graph, method: ScoreMethod, seed: u64) -> Result<Self, EstimatorError> {
        Self::compute_with_threads(graph, method, seed, par::AUTO)
    }

    /// [`Self::compute`] with an explicit worker-thread count (0 = all cores).
    ///
    /// Scoring is one pairwise query per edge — exactly the workload the paper
    /// accelerates — so every method fans its per-edge work out over the
    /// deterministic parallel layer: CG solves and sketch queries are
    /// deterministic outright, GEER queries fork one estimator per edge on the
    /// edge-index RNG stream, and spanning trees sample on per-tree streams.
    /// For a fixed seed the scores are identical at any thread count.
    pub fn compute_with_threads(
        graph: &Graph,
        method: ScoreMethod,
        seed: u64,
        threads: usize,
    ) -> Result<Self, EstimatorError> {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let scores = match method {
            ScoreMethod::Exact => {
                let solver = LaplacianSolver::for_ground_truth(graph);
                par::par_map_indexed(edges.len() as u64, seed, threads, |i, _| {
                    let (u, v) = edges[i as usize];
                    solver.effective_resistance(u, v)
                })
            }
            ScoreMethod::Geer { epsilon } => {
                // One edge-set request through the unified query plane, with
                // GEER forced: the service forks one estimator per edge on
                // an RNG stream derived from the edge's endpoints (content-
                // addressed since the concurrent-serving redesign), so scores
                // are thread-count invariant and independent of the order in
                // which edges are scored.
                let config = ApproxConfig {
                    epsilon,
                    seed,
                    threads,
                    ..ApproxConfig::default()
                };
                let service = ResistanceService::with_config(graph, config)?;
                let request = Request::new(Query::edge_set(edges.clone()))
                    .with_accuracy(Accuracy::Epsilon {
                        eps: epsilon,
                        delta: config.delta,
                    })
                    .with_backend(BackendChoice::Geer);
                service
                    .submit(&request)
                    .map_err(EstimatorError::from)?
                    .values
            }
            ScoreMethod::Sketch { epsilon } => {
                let sketch = ResistanceSketch::build(graph, epsilon, 24.0, seed);
                edges.iter().map(|&(u, v)| sketch.query(u, v)).collect()
            }
            ScoreMethod::SpanningTrees { samples } => {
                let samples = samples.max(1);
                // Tally tree membership per *edge id* through the walk
                // kernel's scratch layer: each Wilson tree contributes its
                // n − 1 edges (looked up in a prebuilt edge index) instead of
                // scanning all m edges per tree, and workers reuse
                // epoch-stamped sparse tallies instead of zeroing a dense
                // per-edge vector. Integer merges keep the counts
                // thread-count invariant.
                let edge_index: HashMap<(NodeId, NodeId), usize> =
                    edges.iter().enumerate().map(|(idx, &e)| (e, idx)).collect();
                let pool = ScratchPool::new(edges.len());
                // The multi-root lockstep driver grows several of the
                // range's trees concurrently; tree `i` still draws from
                // stream `(seed, i)`, so the counts are bit-identical to
                // the old one-tree-at-a-time loop.
                let (counts, _steps) =
                    kernel::par_tally(samples as u64, threads, &pool, |range, scratch| {
                        sample_spanning_trees(graph, 0, seed, range, &mut |_, tree, steps| {
                            tree.for_each_edge(|u, v| scratch.bump(edge_index[&(u, v)]));
                            scratch.add_steps(steps);
                        })
                    });
                counts
                    .into_iter()
                    .map(|c| c as f64 / samples as f64)
                    .collect()
            }
        };
        let scores = scores
            .into_iter()
            .map(|s| s.clamp(Self::SCORE_FLOOR, 1.0))
            .collect();
        Ok(EdgeScores {
            edges,
            scores,
            method,
        })
    }

    /// The strategy used to compute the scores.
    pub fn method(&self) -> ScoreMethod {
        self.method
    }

    /// The edges, in the same order as [`scores`](Self::scores).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The per-edge scores (clamped into `[SCORE_FLOOR, 1]`).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of edges scored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sum of all scores. Foster's theorem says the exact value is `n − 1`,
    /// which makes this a useful calibration diagnostic for the approximate
    /// methods.
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Sampling probability of each edge: score normalised by the total.
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total();
        self.scores.iter().map(|&s| s / total).collect()
    }

    /// Maximum absolute deviation from a reference score vector (testing and
    /// ablation helper).
    pub fn max_deviation_from(&self, reference: &EdgeScores) -> f64 {
        assert_eq!(self.len(), reference.len());
        self.scores
            .iter()
            .zip(&reference.scores)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn exact_scores_satisfy_fosters_theorem() {
        let g = generators::social_network_like(120, 8.0, 2).unwrap();
        let scores = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        assert_eq!(scores.len(), g.num_edges());
        let foster = scores.total();
        let expected = g.num_nodes() as f64 - 1.0;
        assert!(
            (foster - expected).abs() < 1e-5,
            "Foster sum {foster} vs {expected}"
        );
        let probabilities = scores.probabilities();
        let total: f64 = probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximate_methods_track_exact_scores() {
        let g = generators::social_network_like(150, 10.0, 6).unwrap();
        let exact = EdgeScores::compute(&g, ScoreMethod::Exact, 0).unwrap();
        let geer = EdgeScores::compute(&g, ScoreMethod::Geer { epsilon: 0.1 }, 1).unwrap();
        // Each per-edge query is within ε = 0.1 with probability ≥ 1 − δ; over
        // ~750 edges allow a small slack beyond ε for the rare tail.
        assert!(geer.max_deviation_from(&exact) <= 0.15);
        let trees =
            EdgeScores::compute(&g, ScoreMethod::SpanningTrees { samples: 400 }, 2).unwrap();
        // Tree-frequency estimates of a per-edge probability have standard
        // deviation <= 0.5/sqrt(400) = 0.025; allow five sigmas.
        assert!(trees.max_deviation_from(&exact) < 0.13);
    }

    #[test]
    fn sketch_scores_preserve_foster_total_approximately() {
        let g = generators::barabasi_albert(150, 4, 3).unwrap();
        let sketch = EdgeScores::compute(&g, ScoreMethod::Sketch { epsilon: 0.3 }, 4).unwrap();
        let expected = g.num_nodes() as f64 - 1.0;
        assert!(
            (sketch.total() - expected).abs() / expected < 0.35,
            "sketch total {} vs {expected}",
            sketch.total()
        );
    }

    #[test]
    fn scores_are_clamped_into_unit_interval() {
        let g = generators::complete(12).unwrap();
        for method in [
            ScoreMethod::Exact,
            ScoreMethod::Geer { epsilon: 0.5 },
            ScoreMethod::SpanningTrees { samples: 50 },
        ] {
            let scores = EdgeScores::compute(&g, method, 9).unwrap();
            assert!(scores
                .scores()
                .iter()
                .all(|&s| (EdgeScores::SCORE_FLOOR..=1.0).contains(&s)));
            assert!(!scores.is_empty());
            assert_eq!(scores.method(), method);
        }
    }

    #[test]
    fn tree_edges_of_a_tree_like_region_score_one() {
        // Every spanning tree contains every bridge, so bridges score exactly
        // 1 under the spanning-tree method and exactly 1 under Exact.
        let lolly = generators::lollipop(5, 3).unwrap();
        let exact = EdgeScores::compute(&lolly, ScoreMethod::Exact, 0).unwrap();
        let trees =
            EdgeScores::compute(&lolly, ScoreMethod::SpanningTrees { samples: 64 }, 1).unwrap();
        for (idx, &(u, v)) in exact.edges().iter().enumerate() {
            if u >= 4 || v >= 5 {
                // tail edges are bridges
                assert!((exact.scores()[idx] - 1.0).abs() < 1e-9, "bridge ({u},{v})");
                assert!((trees.scores()[idx] - 1.0).abs() < 1e-12);
            }
        }
    }
}
