//! Spectral graph sparsification by effective resistance.
//!
//! Spielman & Srivastava [62 in the paper] showed that sampling edges with
//! probability proportional to their effective resistance yields a spectral
//! sparsifier — the application the paper's introduction highlights first
//! (cut approximation, max-flow, Laplacian solving). This crate is the
//! end-to-end pipeline built on the pairwise estimators of `er-core`:
//!
//! 1. [`EdgeScores`] — compute `r(u, v)` for every edge with an
//!    interchangeable strategy ([`ScoreMethod`]): exact solves, the paper's
//!    GEER, a shared random-projection sketch, or spanning-tree frequencies.
//! 2. [`sample_sparsifier`] — importance-sample `q` edges with replacement
//!    and reweight them `1 / (q p_e)` ([`SampleBudget`] chooses `q`).
//! 3. [`QualityEvaluator`] — measure quadratic-form, cut and connectivity
//!    distortion of the resulting [`WeightedGraph`] against the original.
//!
//! The deterministic [`top_score_baseline`] is included as the ablation
//! every evaluation compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod quality;
pub mod sample;
pub mod scores;
pub mod weighted;

pub use quality::{QualityEvaluator, QualityReport};
pub use sample::{sample_sparsifier, top_score_baseline, SampleBudget, SparsifierOutput};
pub use scores::{EdgeScores, ScoreMethod};
pub use weighted::{WeightedGraph, WeightedLaplacianOp};
