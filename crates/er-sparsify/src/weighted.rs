//! Edge-weighted undirected graphs.
//!
//! The estimators of the paper work on unweighted graphs ([`er_graph::Graph`]),
//! but the *output* of effective-resistance sparsification is inherently
//! weighted: each sampled edge carries weight `1 / (q · p_e)` so that the
//! sparsifier's Laplacian is an unbiased estimate of the original. This module
//! provides the small weighted-graph substrate the sparsification pipeline
//! needs — weighted degrees, the weighted Laplacian quadratic form, a
//! matrix-free weighted Laplacian operator and connectivity.

use er_graph::{Graph, GraphError, NodeId};
use er_linalg::LinearOperator;

/// An undirected graph with non-negative edge weights, stored as an edge list
/// plus a CSR-style adjacency for traversals.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    num_nodes: usize,
    /// Unique undirected edges `(u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    /// Weight of each edge (parallel samples accumulate here).
    weights: Vec<f64>,
    /// CSR offsets into `adjacency`.
    offsets: Vec<usize>,
    /// `(neighbor, edge index)` pairs.
    adjacency: Vec<(NodeId, usize)>,
}

impl WeightedGraph {
    /// Builds a weighted graph from an edge/weight list. Self-loops and
    /// non-positive weights are rejected; duplicate edges accumulate weight.
    pub fn from_weighted_edges(
        num_nodes: usize,
        weighted_edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Result<Self, GraphError> {
        if num_nodes == 0 {
            return Err(GraphError::Empty);
        }
        let mut dedup: std::collections::BTreeMap<(NodeId, NodeId), f64> =
            std::collections::BTreeMap::new();
        for (u, v, w) in weighted_edges {
            if u >= num_nodes || v >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u.max(v),
                    n: num_nodes,
                });
            }
            if u == v {
                continue;
            }
            if w <= 0.0 || !w.is_finite() {
                return Err(GraphError::Parse {
                    line: 0,
                    message: format!("edge ({u}, {v}) has invalid weight {w}"),
                });
            }
            let key = if u < v { (u, v) } else { (v, u) };
            *dedup.entry(key).or_insert(0.0) += w;
        }
        let edges: Vec<(NodeId, NodeId)> = dedup.keys().copied().collect();
        let weights: Vec<f64> = dedup.values().copied().collect();

        let mut degree_count = vec![0usize; num_nodes];
        for &(u, v) in &edges {
            degree_count[u] += 1;
            degree_count[v] += 1;
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for v in 0..num_nodes {
            offsets[v + 1] = offsets[v] + degree_count[v];
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![(0usize, 0usize); 2 * edges.len()];
        for (idx, &(u, v)) in edges.iter().enumerate() {
            adjacency[cursor[u]] = (v, idx);
            cursor[u] += 1;
            adjacency[cursor[v]] = (u, idx);
            cursor[v] += 1;
        }
        Ok(WeightedGraph {
            num_nodes,
            edges,
            weights,
            offsets,
            adjacency,
        })
    }

    /// Every edge of an unweighted graph with unit weight.
    pub fn from_unit_graph(graph: &Graph) -> Self {
        Self::from_weighted_edges(graph.num_nodes(), graph.edges().map(|(u, v)| (u, v, 1.0)))
            .expect("a valid Graph converts losslessly")
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct undirected edges with positive weight.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over `(u, v, weight)` triples with `u < v`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges
            .iter()
            .zip(&self.weights)
            .map(|(&(u, v), &w)| (u, v, w))
    }

    /// Weighted degree `Σ_{(u,v) ∈ E} w(u, v)` of node `u`.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        self.adjacency[self.offsets[u]..self.offsets[u + 1]]
            .iter()
            .map(|&(_, idx)| self.weights[idx])
            .sum()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The weight of edge `{u, v}` (0 if absent).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> f64 {
        let key = if u < v { (u, v) } else { (v, u) };
        match self.edges.binary_search(&key) {
            Ok(idx) => self.weights[idx],
            Err(_) => 0.0,
        }
    }

    /// The weighted Laplacian quadratic form `xᵀ L_w x = Σ_e w_e (x_u − x_v)²`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_nodes);
        self.weighted_edges()
            .map(|(u, v, w)| {
                let d = x[u] - x[v];
                w * d * d
            })
            .sum()
    }

    /// Weight crossing the cut `(S, V∖S)` where `in_s[v]` marks membership.
    pub fn cut_weight(&self, in_s: &[bool]) -> f64 {
        assert_eq!(in_s.len(), self.num_nodes);
        self.weighted_edges()
            .filter(|&(u, v, _)| in_s[u] != in_s[v])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Whether every node is reachable from node 0 through positive-weight
    /// edges (vacuously true for the single-node graph).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return false;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adjacency[self.offsets[u]..self.offsets[u + 1]] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.num_nodes
    }

    /// Forgets the weights, producing the support graph (used to reuse the
    /// unweighted analyses: connectivity, bipartiteness, generators of query
    /// sets on the sparsifier).
    pub fn support(&self) -> Result<Graph, GraphError> {
        er_graph::GraphBuilder::from_edges(self.num_nodes, self.edges.iter().copied()).build()
    }
}

/// Matrix-free weighted Laplacian `L_w x`.
pub struct WeightedLaplacianOp<'w> {
    graph: &'w WeightedGraph,
}

impl<'w> WeightedLaplacianOp<'w> {
    /// Creates the operator over `graph`.
    pub fn new(graph: &'w WeightedGraph) -> Self {
        WeightedLaplacianOp { graph }
    }
}

impl LinearOperator for WeightedLaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|o| *o = 0.0);
        for (u, v, w) in self.graph.weighted_edges() {
            let d = x[u] - x[v];
            out[u] += w * d;
            out[v] -= w * d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianOp;

    #[test]
    fn unit_conversion_matches_unweighted_laplacian() {
        let g = generators::social_network_like(100, 6.0, 3).unwrap();
        let wg = WeightedGraph::from_unit_graph(&g);
        assert_eq!(wg.num_edges(), g.num_edges());
        assert_eq!(wg.total_weight(), g.num_edges() as f64);
        let x: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 7) as f64 / 7.0).collect();
        let unweighted = LaplacianOp::new(&g).apply_vec(&x);
        let weighted = WeightedLaplacianOp::new(&wg).apply_vec(&x);
        for (a, b) in unweighted.iter().zip(&weighted) {
            assert!((a - b).abs() < 1e-12);
        }
        let qf_direct = wg.quadratic_form(&x);
        let qf_operator: f64 = x.iter().zip(&weighted).map(|(a, b)| a * b).sum();
        assert!((qf_direct - qf_operator).abs() < 1e-9);
    }

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let wg = WeightedGraph::from_weighted_edges(
            3,
            vec![(0, 1, 1.0), (1, 0, 0.5), (1, 2, 2.0), (2, 2, 9.0)],
        )
        .unwrap();
        assert_eq!(wg.num_edges(), 2);
        assert!((wg.edge_weight(0, 1) - 1.5).abs() < 1e-12);
        assert!((wg.edge_weight(1, 0) - 1.5).abs() < 1e-12);
        assert_eq!(wg.edge_weight(0, 2), 0.0);
        assert!((wg.weighted_degree(1) - 3.5).abs() < 1e-12);
        assert!((wg.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(WeightedGraph::from_weighted_edges(0, vec![]).is_err());
        assert!(WeightedGraph::from_weighted_edges(2, vec![(0, 5, 1.0)]).is_err());
        assert!(WeightedGraph::from_weighted_edges(2, vec![(0, 1, 0.0)]).is_err());
        assert!(WeightedGraph::from_weighted_edges(2, vec![(0, 1, -2.0)]).is_err());
        assert!(WeightedGraph::from_weighted_edges(2, vec![(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn cut_weight_and_connectivity() {
        let wg = WeightedGraph::from_weighted_edges(
            4,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 0, 8.0)],
        )
        .unwrap();
        assert!(wg.is_connected());
        let cut = wg.cut_weight(&[true, true, false, false]);
        assert!((cut - (2.0 + 8.0)).abs() < 1e-12);
        let disconnected =
            WeightedGraph::from_weighted_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn support_graph_preserves_structure() {
        let wg = WeightedGraph::from_weighted_edges(
            5,
            vec![
                (0, 1, 0.1),
                (1, 2, 0.2),
                (2, 3, 0.3),
                (3, 4, 0.4),
                (4, 0, 0.5),
            ],
        )
        .unwrap();
        let support = wg.support().unwrap();
        assert_eq!(support.num_nodes(), 5);
        assert_eq!(support.num_edges(), 5);
        assert!(support.has_edge(4, 0));
    }

    #[test]
    fn quadratic_form_is_zero_on_constant_vectors() {
        let g = generators::barabasi_albert(60, 3, 1).unwrap();
        let wg = WeightedGraph::from_unit_graph(&g);
        let constant = vec![3.25; 60];
        assert!(wg.quadratic_form(&constant).abs() < 1e-12);
    }
}
