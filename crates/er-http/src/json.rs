//! A minimal JSON value type, parser and string escaper.
//!
//! The workspace is offline-only (no crates.io), so the HTTP front end
//! carries its own JSON support: a strict recursive-descent parser for
//! request bodies and the small set of emission helpers the response
//! renderers need. Numbers are `f64` — node ids and walk budgets are exact
//! up to 2^53, far beyond any graph this engine serves — and float emission
//! uses Rust's shortest-round-trip `Display`, which is what makes HTTP
//! responses bit-identical to in-process values.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most parsers).
    Object(Vec<(String, Json)>),
}

/// Maximum nesting depth accepted by [`Json::parse`]; deeper input is
/// rejected instead of risking stack exhaustion on adversarial bodies.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    ///
    /// ```
    /// use er_http::json::Json;
    ///
    /// let v = Json::parse(r#"{"query": {"type": "pair", "s": 0, "t": 7}}"#).unwrap();
    /// let query = v.get("query").unwrap();
    /// assert_eq!(query.get("type").and_then(Json::as_str), Some("pair"));
    /// assert_eq!(query.get("t").and_then(Json::as_u64), Some(7));
    /// assert!(Json::parse("{\"open\":").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (last duplicate wins); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions, negatives
    /// and magnitudes beyond 2^53 where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            Some(v as u64)
        } else {
            None
        }
    }

    /// [`Self::as_u64`] narrowed to `usize` (node ids, counts).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}"));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: expect \uDC00..DFFF next.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err("lone low surrogate".into());
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "invalid codepoint".to_string())?,
                        );
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                }
            }
            0x00..=0x1F => return Err("raw control character in string".into()),
            _ => {
                // Re-validate multibyte UTF-8 by slicing from the source.
                let start = *pos - 1;
                let len = utf8_len(c);
                let end = start + len;
                if end > bytes.len() {
                    return Err("truncated UTF-8 sequence".into());
                }
                let s = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|_| "bad \\u escape")?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected a value at byte {start}"));
    }
    // Leading zeros are rejected (JSON forbids 007).
    if *pos - digits_start > 1 && bytes[digits_start] == b'0' {
        return Err(format!("leading zero at byte {digits_start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err("digits required after decimal point".into());
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err("digits required in exponent".into());
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number '{text}'"))
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number using Rust's shortest-round-trip
/// `Display`, so a client that parses it back recovers the exact bits —
/// the property the HTTP-equals-in-process tests pin. Non-finite values
/// (which no healthy response carries) render as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(
            Json::parse(r#""a\"b\u0041\n""#).unwrap(),
            Json::String("a\"bA\n".into())
        );
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "x"}, "a": 3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3), "last dup wins");
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
        let arr = Json::parse("[0, 1.5, \"s\"]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "[1] extra",
            "+1",
            "--1",
            "\"\\ud800\"",
            "{'a': 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Depth bomb: rejected, not a stack overflow.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let raw = Json::parse("\"😀\"").unwrap();
        assert_eq!(raw.as_str(), Some("😀"));
    }

    #[test]
    fn integer_accessors_guard_range_and_fractions() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn number_emission_round_trips_bits() {
        for v in [
            0.25,
            1.0 / 3.0,
            6.02e23,
            1e-300,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
        ] {
            let text = number(v);
            let back: f64 = match Json::parse(&text).unwrap() {
                Json::Number(b) => b,
                other => panic!("{other:?}"),
            };
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
