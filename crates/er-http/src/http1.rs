//! Incremental HTTP/1.1 request parsing and response serialisation.
//!
//! The parser is *incremental*: it is fed the connection's receive buffer
//! and either yields a complete request (reporting how many bytes it
//! consumed, so pipelined requests queued behind it survive in the buffer),
//! asks for more bytes, or rejects the input with the HTTP status the
//! connection should answer before closing. Hard limits on the request
//! line, header block and body keep a hostile peer from ballooning memory:
//! an oversized line or header block is a `431`, an oversized body a `413`,
//! anything malformed a `400`.

use std::collections::HashMap;

/// Parser limits; see [`crate::HttpConfig`] for the server-level knobs that
/// feed these.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Largest accepted head (request line + headers + blank line), bytes.
    pub max_head_bytes: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_head_bytes: 32 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A fully parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target as received (path plus optional `?query`).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header fields, names lowercased; repeated names keep the last value.
    pub headers: HashMap<String, String>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Header lookup by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The target's path with any `?query` suffix split off.
    pub fn path_and_query(&self) -> (&str, Option<&str>) {
        match self.target.split_once('?') {
            Some((path, query)) => (path, Some(query)),
            None => (self.target.as_str(), None),
        }
    }
}

/// One step of incremental parsing.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer holds a prefix of a valid request; read more bytes.
    NeedMore,
    /// A complete request; `consumed` bytes of the buffer belong to it
    /// (drain exactly that many — pipelined successors follow).
    Complete {
        /// The parsed request.
        request: Box<HttpRequest>,
        /// Bytes of the input buffer this request occupied.
        consumed: usize,
    },
    /// The input can never become a valid request (or violates a limit).
    /// Answer with `status` and close the connection.
    Invalid {
        /// HTTP status to answer with (400, 413, 431, 501).
        status: u16,
        /// Human-readable reason, surfaced in the JSON error body.
        message: String,
    },
}

fn invalid(status: u16, message: impl Into<String>) -> ParseStep {
    ParseStep::Invalid {
        status,
        message: message.into(),
    }
}

/// Attempts to parse one request from the front of `buf`.
///
/// ```
/// use er_http::http1::{parse_request, Limits, ParseStep};
///
/// let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
/// match parse_request(raw, &Limits::default()) {
///     ParseStep::Complete { request, consumed } => {
///         assert_eq!(request.method, "GET");
///         assert_eq!(request.target, "/healthz");
///         assert_eq!(consumed, raw.len());
///     }
///     other => panic!("{other:?}"),
/// }
/// // A prefix of the same request just needs more bytes:
/// assert!(matches!(
///     parse_request(&raw[..10], &Limits::default()),
///     ParseStep::NeedMore
/// ));
/// ```
pub fn parse_request(buf: &[u8], limits: &Limits) -> ParseStep {
    // Robustness: tolerate blank lines before the request line (RFC 9112
    // §2.2 says a server SHOULD ignore at least one leading CRLF).
    let mut start = 0usize;
    while buf[start..].starts_with(b"\r\n") {
        start += 2;
    }
    let work = &buf[start..];

    // Locate end of head: CRLFCRLF. Enforce head-size limits even before
    // the terminator arrives so a peer cannot stream an unbounded head.
    let head_end = match find_subslice(work, b"\r\n\r\n") {
        Some(ix) => ix,
        None => {
            if work.len() > limits.max_head_bytes {
                return invalid(431, "request head exceeds limit");
            }
            // The request line alone may already be over its limit.
            if let Some(line_end) = find_subslice(work, b"\r\n") {
                if line_end > limits.max_request_line {
                    return invalid(431, "request line exceeds limit");
                }
            } else if work.len() > limits.max_request_line {
                return invalid(431, "request line exceeds limit");
            }
            return ParseStep::NeedMore;
        }
    };
    if head_end + 4 > limits.max_head_bytes {
        return invalid(431, "request head exceeds limit");
    }

    let head = match std::str::from_utf8(&work[..head_end]) {
        Ok(h) => h,
        Err(_) => return invalid(400, "request head is not valid UTF-8"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return invalid(431, "request line exceeds limit");
    }

    // Request line: METHOD SP TARGET SP VERSION, single spaces only.
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return invalid(400, "malformed request line"),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return invalid(400, "malformed method");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return invalid(400, "unsupported HTTP version"),
    };

    let mut headers = HashMap::new();
    let mut header_count = 0usize;
    for line in lines {
        header_count += 1;
        if header_count > limits.max_headers {
            return invalid(431, "too many headers");
        }
        let Some((name, value)) = line.split_once(':') else {
            return invalid(400, "malformed header line");
        };
        // Obsolete line folding (leading whitespace) and whitespace before
        // the colon are both rejected outright (RFC 9112 §5.2).
        if name.is_empty()
            || name != name.trim()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"-_!#$%&'*+.^`|~".contains(&b))
        {
            return invalid(400, "malformed header name");
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }

    // Body framing. Only Content-Length is implemented; chunked uploads
    // get an honest 501 rather than a silent misread.
    if let Some(te) = headers.get("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return invalid(501, "transfer-encoding is not supported");
        }
    }
    let body_len = match headers.get("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            // usize::MAX could overflow total length math below; anything
            // over the limit is rejected before we ever buffer it.
            Ok(n) if n <= limits.max_body_bytes => n,
            Ok(_) => return invalid(413, "body exceeds limit"),
            Err(_) => return invalid(400, "malformed Content-Length"),
        },
    };

    let body_start = head_end + 4;
    let total = body_start + body_len;
    if work.len() < total {
        return ParseStep::NeedMore;
    }
    ParseStep::Complete {
        request: Box::new(HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            http11,
            headers,
            body: work[body_start..total].to_vec(),
        }),
        consumed: start + total,
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialises a response with the given body and content type.
/// `keep_alive` controls the `Connection` header (the server closes the
/// socket after writing when it is `false`).
pub fn write_response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            reason_phrase(status),
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (HttpRequest, usize) {
        match parse_request(raw, &Limits::default()) {
            ParseStep::Complete { request, consumed } => (*request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    fn status_of(raw: &[u8], limits: &Limits) -> u16 {
        match parse_request(raw, limits) {
            ParseStep::Invalid { status, .. } => status,
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn parses_request_with_body_and_reports_consumed() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\nX-Er-Priority: high\r\n\r\nabcdGET /next";
        let (req, consumed) = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert!(req.http11);
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("x-er-priority"), Some("high"));
        assert_eq!(&raw[consumed..], b"GET /next", "pipelined tail preserved");
    }

    #[test]
    fn incremental_prefixes_need_more() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
        for cut in [0, 3, 22, 40, raw.len()] {
            assert!(
                matches!(
                    parse_request(&raw[..cut], &Limits::default()),
                    ParseStep::NeedMore
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn keep_alive_semantics_by_version() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\n\r\n");
        assert!(req.keep_alive());
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive());
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive());
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive());
    }

    #[test]
    fn rejects_malformed_input_with_400() {
        let limits = Limits::default();
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET  /x HTTP/1.1\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            assert_eq!(
                status_of(raw, &limits),
                400,
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn enforces_size_limits() {
        let limits = Limits {
            max_request_line: 64,
            max_head_bytes: 256,
            max_headers: 4,
            max_body_bytes: 32,
        };
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert_eq!(status_of(long_target.as_bytes(), &limits), 431);
        // Oversized request line detected even before its CRLF arrives.
        let partial_line = format!("GET /{}", "a".repeat(100));
        assert_eq!(status_of(partial_line.as_bytes(), &limits), 431);
        let many_headers = format!("GET / HTTP/1.1\r\n{}\r\n", "X-H: v\r\n".repeat(10));
        assert_eq!(status_of(many_headers.as_bytes(), &limits), 431);
        let big_head = format!("GET / HTTP/1.1\r\nX-H: {}\r\n\r\n", "v".repeat(400));
        assert_eq!(status_of(big_head.as_bytes(), &limits), 431);
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        assert_eq!(status_of(big_body, &limits), 413);
        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(status_of(chunked, &limits), 501);
    }

    #[test]
    fn skips_leading_crlf_and_splits_query_string() {
        let raw = b"\r\n\r\nGET /metrics?format=json HTTP/1.1\r\n\r\n";
        let (req, consumed) = complete(raw);
        assert_eq!(consumed, raw.len());
        let (path, query) = req.path_and_query();
        assert_eq!(path, "/metrics");
        assert_eq!(query, Some("format=json"));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let bytes = write_response(200, "application/json", "{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
