//! A hand-rolled, std-only HTTP/1.1 front end over the effective-resistance
//! serving plane.
//!
//! [`HttpServer`] binds a TCP listener over a
//! [`ServerHandle`](er_service::ServerHandle) and serves three routes:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /query` | JSON body → [`Request`](er_service::Request) → ticket wait → JSON response |
//! | `GET /metrics` | Coherent [`ServerStats`](er_service::ServerStats) snapshot (Prometheus text, or JSON with `?format=json`) |
//! | `GET /healthz` | Liveness plus worker/queue gauges |
//!
//! The protocol layer is written against the workspace's offline-shim
//! policy: no crates.io, just `std::net`. It still behaves like a grown-up
//! server — incremental parsing with keep-alive and pipelining, hard limits
//! on request line / header block / body sizes (`431`/`431`/`413`), a
//! bounded connection pool (`503` beyond it), read timeouts that turn
//! slow-loris stalls into `408`, and scheduler back-pressure surfaced as
//! `503` ([`ServiceError::Overloaded`](er_service::ServiceError)) and `504`
//! ([`ServiceError::DeadlineExceeded`](er_service::ServiceError)).
//!
//! Per-connection session defaults ride on headers and persist across
//! keep-alive requests: `X-ER-Priority` (`low`/`normal`/`high`),
//! `X-ER-Deadline-Ms` (`<ms>` or `none`), `X-ER-Accuracy` (`exact`,
//! `walks:N`, `epsilon:EPS[:DELTA]`, or `default`), and `X-ER-Backend`
//! (a backend name or `auto`).
//!
//! Float values are emitted with shortest-round-trip formatting, so an HTTP
//! response parsed back with `str::parse::<f64>()` is **bit-identical** to
//! the in-process answer — the serving plane's determinism invariant
//! survives the socket.
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//!
//! use er_http::{HttpConfig, HttpServer};
//! use er_service::{ResistanceServer, ResistanceService, ServerConfig};
//!
//! let graph = er_graph::generators::complete(12).unwrap();
//! let service = ResistanceService::new(graph).unwrap();
//! let handle = ResistanceServer::spawn(service, ServerConfig::default());
//! let server = HttpServer::bind(handle, HttpConfig::default()).unwrap();
//!
//! let mut conn = TcpStream::connect(server.local_addr()).unwrap();
//! let body = r#"{"query": {"type": "pair", "s": 0, "t": 11}, "accuracy": {"type": "exact"}}"#;
//! write!(
//!     conn,
//!     "POST /query HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains("\"backend\":"));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http1;
pub mod json;
mod server;

pub use server::{HttpConfig, HttpServer};
