//! Mapping between the wire (JSON over HTTP) and the in-process serving
//! types: request bodies → [`Request`], [`Response`] → JSON,
//! [`ServiceError`] → HTTP status, and [`ServerStats`] → `/metrics`
//! expositions.
//!
//! Response values are emitted with shortest-round-trip float formatting
//! ([`crate::json::number`]), which is what makes an HTTP answer
//! bit-identical to the in-process one once the client parses it back.

use crate::json::{self, Json};
use er_core::CostBreakdown;
use er_service::{Accuracy, BackendChoice, Query, Request, Response, ServerStats, ServiceError};

/// Parses a `POST /query` JSON body into a [`Request`].
///
/// Body schema (see the crate docs for examples):
///
/// ```text
/// {
///   "query":    {"type": "pair", "s": 0, "t": 7}
///             | {"type": "batch", "pairs": [[0,1],[2,3]]}
///             | {"type": "single_source", "source": 0}
///             | {"type": "diagonal"}
///             | {"type": "edge_set", "edges": [[0,1]]}
///             | {"type": "top_k", "source": 0, "k": 5},
///   "accuracy": {"type": "epsilon", "eps": 0.1, "delta": 0.01}   // optional
///             | {"type": "walk_budget", "walks": 10000}
///             | {"type": "exact"},
///   "backend":  "geer"                                            // optional
/// }
/// ```
pub fn parse_query_body(body: &str) -> Result<Request, String> {
    parse_query_body_with_defaults(body, None, None)
}

/// [`parse_query_body`] with per-connection session defaults: when the body
/// omits `"accuracy"` or `"backend"`, the connection's header-set defaults
/// (from `X-ER-Accuracy` / `X-ER-Backend`) apply instead of the global ones.
pub fn parse_query_body_with_defaults(
    body: &str,
    default_accuracy: Option<Accuracy>,
    default_backend: Option<BackendChoice>,
) -> Result<Request, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let query_field = doc.get("query").ok_or("missing \"query\" field")?;
    let query = parse_query(query_field)?;
    let mut request = Request::new(query);
    match doc.get("accuracy") {
        Some(acc) => request = request.with_accuracy(parse_accuracy(acc)?),
        None => {
            if let Some(acc) = default_accuracy {
                request = request.with_accuracy(acc);
            }
        }
    }
    match doc.get("backend") {
        Some(backend) => {
            let raw = backend.as_str().ok_or("\"backend\" must be a string")?;
            let choice =
                BackendChoice::parse(raw).ok_or_else(|| format!("unknown backend \"{raw}\""))?;
            request = request.with_backend(choice);
        }
        None => {
            if let Some(choice) = default_backend {
                request = request.with_backend(choice);
            }
        }
    }
    Ok(request)
}

fn parse_query(v: &Json) -> Result<Query, String> {
    let kind = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("query needs a string \"type\"")?;
    match kind {
        "pair" => Ok(Query::Pair {
            s: field_node(v, "s")?,
            t: field_node(v, "t")?,
        }),
        "batch" => Ok(Query::Batch {
            pairs: field_pairs(v, "pairs")?,
        }),
        "single_source" => Ok(Query::SingleSource {
            source: field_node(v, "source")?,
        }),
        "diagonal" => Ok(Query::Diagonal),
        "edge_set" => Ok(Query::EdgeSet {
            edges: field_pairs(v, "edges")?,
        }),
        "top_k" => Ok(Query::TopK {
            source: field_node(v, "source")?,
            k: field_node(v, "k")?,
        }),
        other => Err(format!("unknown query type \"{other}\"")),
    }
}

fn field_node(v: &Json, name: &str) -> Result<usize, String> {
    v.get(name)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))
}

fn field_pairs(v: &Json, name: &str) -> Result<Vec<(usize, usize)>, String> {
    let items = v
        .get(name)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("\"{name}\" must be an array of [s, t] pairs"))?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            match pair {
                Some(p) => match (p[0].as_usize(), p[1].as_usize()) {
                    (Some(s), Some(t)) => Ok((s, t)),
                    _ => Err(format!("\"{name}\" entries must hold two node ids")),
                },
                None => Err(format!("\"{name}\" entries must be [s, t] pairs")),
            }
        })
        .collect()
}

/// Parses an `"accuracy"` object; also used for the `X-ER-Accuracy` session
/// header's structured form (`exact`, `walks:N`, `epsilon:EPS[:DELTA]`) via
/// [`parse_accuracy_spec`].
fn parse_accuracy(v: &Json) -> Result<Accuracy, String> {
    let kind = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("accuracy needs a string \"type\"")?;
    match kind {
        "epsilon" => {
            let default = Accuracy::default();
            let (default_eps, default_delta) = match default {
                Accuracy::Epsilon { eps, delta } => (eps, delta),
                _ => unreachable!("default accuracy is epsilon"),
            };
            let eps = match v.get("eps") {
                Some(e) => e.as_f64().ok_or("\"eps\" must be a number")?,
                None => default_eps,
            };
            let delta = match v.get("delta") {
                Some(d) => d.as_f64().ok_or("\"delta\" must be a number")?,
                None => default_delta,
            };
            if !(eps > 0.0 && eps.is_finite() && delta > 0.0 && delta < 1.0) {
                return Err("epsilon accuracy needs eps > 0 and 0 < delta < 1".into());
            }
            Ok(Accuracy::Epsilon { eps, delta })
        }
        "walk_budget" => {
            let walks = v
                .get("walks")
                .and_then(Json::as_u64)
                .ok_or("\"walks\" must be a non-negative integer")?;
            Ok(Accuracy::WalkBudget(walks))
        }
        "exact" => Ok(Accuracy::Exact),
        other => Err(format!("unknown accuracy type \"{other}\"")),
    }
}

/// Parses the compact accuracy spelling used by the `X-ER-Accuracy` session
/// header: `exact`, `walks:N`, or `epsilon:EPS[:DELTA]`.
pub fn parse_accuracy_spec(spec: &str) -> Result<Accuracy, String> {
    let spec = spec.trim();
    if spec.eq_ignore_ascii_case("exact") {
        return Ok(Accuracy::Exact);
    }
    if let Some(n) = spec.strip_prefix("walks:") {
        let walks = n
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("invalid walk budget \"{n}\""))?;
        return Ok(Accuracy::WalkBudget(walks));
    }
    if let Some(rest) = spec.strip_prefix("epsilon:") {
        let mut parts = rest.splitn(2, ':');
        let eps = parts
            .next()
            .unwrap_or("")
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("invalid epsilon in \"{spec}\""))?;
        let delta = match parts.next() {
            Some(d) => d
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid delta in \"{spec}\""))?,
            None => 0.01,
        };
        if !(eps > 0.0 && eps.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err("epsilon accuracy needs eps > 0 and 0 < delta < 1".into());
        }
        return Ok(Accuracy::Epsilon { eps, delta });
    }
    Err(format!(
        "unknown accuracy spec \"{spec}\" (expected exact | walks:N | epsilon:EPS[:DELTA])"
    ))
}

fn cost_json(cost: &CostBreakdown) -> String {
    format!(
        "{{\"random_walks\":{},\"walk_steps\":{},\"matvec_ops\":{},\"solver_iterations\":{},\"spanning_trees\":{}}}",
        cost.random_walks, cost.walk_steps, cost.matvec_ops, cost.solver_iterations, cost.spanning_trees
    )
}

/// Renders a successful [`Response`] as the `POST /query` JSON body.
///
/// `values` uses shortest-round-trip float formatting, so
/// `str::parse::<f64>()` on each element recovers the in-process bits
/// exactly. `cost` is the whole (possibly shared) plan cost; the
/// `shared_cost` / `owned_cost` split is what metrics pipelines should
/// aggregate (shared counted once per coalesced group).
pub fn render_response(response: &Response) -> String {
    let values: Vec<String> = response.values.iter().map(|v| json::number(*v)).collect();
    let nodes: Vec<String> = response.nodes.iter().map(|n| n.to_string()).collect();
    format!(
        "{{\"values\":[{}],\"nodes\":[{}],\"backend\":\"{}\",\"cost\":{},\"shared_cost\":{},\"owned_cost\":{},\"cache_hits\":{},\"backend_calls\":{},\"trivial_queries\":{}}}",
        values.join(","),
        nodes.join(","),
        json::escape(response.backend),
        cost_json(&response.cost),
        cost_json(&response.shared_cost),
        cost_json(&response.owned_cost()),
        response.cache_hits,
        response.backend_calls,
        response.trivial_queries,
    )
}

/// Renders an error JSON body: `{"error": <kind>, "message": <text>}`.
pub fn render_error(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":\"{}\",\"message\":\"{}\"}}",
        json::escape(kind),
        json::escape(message)
    )
}

/// Maps a [`ServiceError`] to its HTTP status and a machine-readable kind.
///
/// * malformed / unanswerable requests → `400`
/// * internal index failures → `500`
/// * [`ServiceError::Overloaded`] and shutdown → `503` (back off, retry)
/// * [`ServiceError::DeadlineExceeded`] → `504`
pub fn error_status(err: &ServiceError) -> (u16, &'static str) {
    match err {
        ServiceError::Estimator(_) => (400, "estimator"),
        ServiceError::UnsupportedShape { .. } => (400, "unsupported_shape"),
        ServiceError::InvalidRequest { .. } => (400, "invalid_request"),
        ServiceError::Index(_) => (500, "index"),
        ServiceError::Overloaded { .. } => (503, "overloaded"),
        ServiceError::ServerShutdown => (503, "shutting_down"),
        ServiceError::DeadlineExceeded => (504, "deadline_exceeded"),
    }
}

/// The counter list backing both `/metrics` expositions, in stable order.
fn stat_fields(stats: &ServerStats) -> [(&'static str, u64, &'static str); 9] {
    [
        (
            "submitted",
            stats.submitted,
            "Requests admitted into the queue (including dedup attachers)",
        ),
        (
            "completed",
            stats.completed,
            "Tickets fulfilled, successfully or with an error",
        ),
        (
            "executed_jobs",
            stats.executed_jobs,
            "Backend executions performed",
        ),
        (
            "deduplicated",
            stats.deduplicated,
            "Submits attached to an identical queued request",
        ),
        (
            "attached_running",
            stats.attached_running,
            "Submits attached to an identical running execution",
        ),
        (
            "coalesced_batches",
            stats.coalesced_batches,
            "Coalesced executions merging two or more requests",
        ),
        (
            "coalesced_requests",
            stats.coalesced_requests,
            "Requests answered through a coalesced execution",
        ),
        (
            "rejected_overloaded",
            stats.rejected_overloaded,
            "Submits rejected by admission control",
        ),
        (
            "expired",
            stats.expired,
            "Jobs whose deadline lapsed before pickup",
        ),
    ]
}

/// Renders a coherent [`ServerStats`] snapshot as the `/metrics` JSON body.
pub fn render_stats_json(stats: &ServerStats) -> String {
    let fields: Vec<String> = stat_fields(stats)
        .iter()
        .map(|(name, value, _)| format!("\"{name}\":{value}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders a coherent [`ServerStats`] snapshot in Prometheus text
/// exposition format (one `er_server_<counter>` family per field).
pub fn render_stats_prometheus(stats: &ServerStats) -> String {
    let mut out = String::new();
    for (name, value, help) in stat_fields(stats) {
        out.push_str(&format!(
            "# HELP er_server_{name} {help}\n# TYPE er_server_{name} counter\ner_server_{name} {value}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_shape() {
        let pair = parse_query_body(r#"{"query":{"type":"pair","s":3,"t":9}}"#).unwrap();
        assert_eq!(pair.query, Query::Pair { s: 3, t: 9 });
        assert_eq!(pair.accuracy, Accuracy::default());
        assert_eq!(pair.backend, None);

        let batch =
            parse_query_body(r#"{"query":{"type":"batch","pairs":[[0,1],[2,3]]}}"#).unwrap();
        assert_eq!(
            batch.query,
            Query::Batch {
                pairs: vec![(0, 1), (2, 3)]
            }
        );

        let ss = parse_query_body(r#"{"query":{"type":"single_source","source":5}}"#).unwrap();
        assert_eq!(ss.query, Query::SingleSource { source: 5 });

        let diag = parse_query_body(r#"{"query":{"type":"diagonal"}}"#).unwrap();
        assert_eq!(diag.query, Query::Diagonal);

        let edges = parse_query_body(r#"{"query":{"type":"edge_set","edges":[[1,2]]}}"#).unwrap();
        assert_eq!(
            edges.query,
            Query::EdgeSet {
                edges: vec![(1, 2)]
            }
        );

        let topk = parse_query_body(r#"{"query":{"type":"top_k","source":0,"k":4}}"#).unwrap();
        assert_eq!(topk.query, Query::TopK { source: 0, k: 4 });
    }

    #[test]
    fn parses_accuracy_and_backend() {
        let r = parse_query_body(
            r#"{"query":{"type":"pair","s":0,"t":1},
                "accuracy":{"type":"epsilon","eps":0.2,"delta":0.05},
                "backend":"geer"}"#,
        )
        .unwrap();
        assert_eq!(
            r.accuracy,
            Accuracy::Epsilon {
                eps: 0.2,
                delta: 0.05
            }
        );
        assert_eq!(r.backend, Some(BackendChoice::Geer));

        let r = parse_query_body(
            r#"{"query":{"type":"pair","s":0,"t":1},"accuracy":{"type":"walk_budget","walks":500}}"#,
        )
        .unwrap();
        assert_eq!(r.accuracy, Accuracy::WalkBudget(500));

        let r = parse_query_body(
            r#"{"query":{"type":"pair","s":0,"t":1},"accuracy":{"type":"exact"}}"#,
        )
        .unwrap();
        assert_eq!(r.accuracy, Accuracy::Exact);
    }

    #[test]
    fn rejects_malformed_bodies() {
        for bad in [
            "not json",
            "{}",
            r#"{"query":{"type":"warp","s":0,"t":1}}"#,
            r#"{"query":{"type":"pair","s":-1,"t":1}}"#,
            r#"{"query":{"type":"pair","s":0.5,"t":1}}"#,
            r#"{"query":{"type":"pair","s":0}}"#,
            r#"{"query":{"type":"batch","pairs":[[0]]}}"#,
            r#"{"query":{"type":"pair","s":0,"t":1},"backend":"quantum"}"#,
            r#"{"query":{"type":"pair","s":0,"t":1},"accuracy":{"type":"epsilon","eps":-1}}"#,
            r#"{"query":{"type":"pair","s":0,"t":1},"accuracy":{"type":"walk_budget"}}"#,
        ] {
            assert!(parse_query_body(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn accuracy_spec_header_forms() {
        assert_eq!(parse_accuracy_spec("exact").unwrap(), Accuracy::Exact);
        assert_eq!(
            parse_accuracy_spec("walks:1000").unwrap(),
            Accuracy::WalkBudget(1000)
        );
        assert_eq!(
            parse_accuracy_spec("epsilon:0.2").unwrap(),
            Accuracy::Epsilon {
                eps: 0.2,
                delta: 0.01
            }
        );
        assert_eq!(
            parse_accuracy_spec("epsilon:0.2:0.05").unwrap(),
            Accuracy::Epsilon {
                eps: 0.2,
                delta: 0.05
            }
        );
        assert!(parse_accuracy_spec("bogus").is_err());
        assert!(parse_accuracy_spec("walks:-3").is_err());
        assert!(parse_accuracy_spec("epsilon:0").is_err());
    }

    #[test]
    fn error_statuses_match_the_contract() {
        assert_eq!(
            error_status(&ServiceError::Overloaded { queue_depth: 4 }).0,
            503
        );
        assert_eq!(error_status(&ServiceError::DeadlineExceeded).0, 504);
        assert_eq!(error_status(&ServiceError::ServerShutdown).0, 503);
        assert_eq!(
            error_status(&ServiceError::InvalidRequest {
                message: "x".into()
            })
            .0,
            400
        );
    }

    #[test]
    fn response_rendering_round_trips_value_bits() {
        let response = Response {
            values: vec![1.0 / 3.0, 0.1 + 0.2],
            nodes: vec![4, 7],
            backend: "GEER",
            cost: CostBreakdown::default(),
            shared_cost: CostBreakdown::default(),
            item_costs: Vec::new(),
            cache_hits: 1,
            backend_calls: 2,
            trivial_queries: 0,
        };
        let body = render_response(&response);
        let doc = Json::parse(&body).unwrap();
        let values = doc.get("values").and_then(Json::as_array).unwrap();
        for (got, want) in values.iter().zip(&response.values) {
            assert_eq!(got.as_f64().unwrap().to_bits(), want.to_bits());
        }
        assert_eq!(doc.get("backend").and_then(Json::as_str), Some("GEER"));
        assert_eq!(doc.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert!(doc.get("shared_cost").is_some());
        assert!(doc.get("owned_cost").is_some());
    }

    #[test]
    fn stats_expositions_cover_every_counter() {
        let stats = ServerStats {
            submitted: 10,
            completed: 9,
            attached_running: 2,
            ..ServerStats::default()
        };
        let json_body = render_stats_json(&stats);
        let doc = Json::parse(&json_body).unwrap();
        assert_eq!(doc.get("submitted").and_then(Json::as_u64), Some(10));
        assert_eq!(doc.get("attached_running").and_then(Json::as_u64), Some(2));
        let prom = render_stats_prometheus(&stats);
        assert!(prom.contains("# TYPE er_server_submitted counter"));
        assert!(prom.contains("er_server_attached_running 2"));
        assert!(prom.contains("er_server_completed 9"));
    }
}
