//! The TCP acceptor, bounded connection pool, and per-connection protocol
//! loop tying [`http1`](crate::http1) to a [`ServerHandle`].

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use er_service::{Accuracy, BackendChoice, Priority, ServerHandle, SubmitOptions};

use crate::api;
use crate::http1::{self, HttpRequest, Limits, ParseStep};

/// Configuration for [`HttpServer::bind`].
#[derive(Clone, Debug)]
pub struct HttpConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port — read it back
    /// with [`HttpServer::local_addr`]).
    pub addr: String,
    /// Bound on concurrently served connections; one beyond it is answered
    /// `503` and closed immediately.
    pub max_connections: usize,
    /// Socket read timeout. A connection idle between requests for this
    /// long is closed quietly; one that stalls *mid-request* (slow-loris
    /// partial writes) is answered `408` and closed.
    pub read_timeout: Duration,
    /// Longest accepted request line, bytes (`431` beyond it).
    pub max_request_line: usize,
    /// Largest accepted head (request line + headers), bytes (`431`).
    pub max_head_bytes: usize,
    /// Most headers accepted on one request (`431`).
    pub max_headers: usize,
    /// Largest accepted request body, bytes (`413`).
    pub max_body_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        let limits = Limits::default();
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            read_timeout: Duration::from_secs(10),
            max_request_line: limits.max_request_line,
            max_head_bytes: limits.max_head_bytes,
            max_headers: limits.max_headers,
            max_body_bytes: limits.max_body_bytes,
        }
    }
}

impl HttpConfig {
    fn limits(&self) -> Limits {
        Limits {
            max_request_line: self.max_request_line,
            max_head_bytes: self.max_head_bytes,
            max_headers: self.max_headers,
            max_body_bytes: self.max_body_bytes,
        }
    }
}

struct HttpShared {
    handle: ServerHandle,
    limits: Limits,
    read_timeout: Duration,
    max_connections: usize,
    active: AtomicUsize,
    shutting_down: AtomicBool,
    /// Live connection streams (clones), keyed by connection id, so
    /// shutdown can unblock reads instead of waiting out their timeouts.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A running HTTP front end over a [`ServerHandle`].
///
/// Dropping the server without calling [`shutdown`](HttpServer::shutdown)
/// leaves the acceptor thread running for the life of the process; prefer
/// an explicit shutdown (tests do) or [`join`](HttpServer::join) (the CLI
/// does, serving until the process is killed).
pub struct HttpServer {
    shared: Arc<HttpShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpServer {
    /// Binds `config.addr` and starts accepting connections, serving
    /// queries through `handle`.
    pub fn bind(handle: ServerHandle, config: HttpConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            handle,
            limits: config.limits(),
            read_timeout: config.read_timeout,
            max_connections: config.max_connections,
            active: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let workers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("er-http-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared, workers))?
        };
        Ok(HttpServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound socket address (the actual port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying serving-plane handle (for stats, in-process submits).
    pub fn handle(&self) -> &ServerHandle {
        &self.shared.handle
    }

    /// Stops accepting, unblocks and joins every connection thread, then
    /// joins the acceptor. The inner [`ServerHandle`] drops with the server
    /// (draining the query workers if this was the last handle).
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with one throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection reads so their threads notice the flag now
        // rather than at their next read timeout.
        for (_, stream) in self.shared.conns.lock().expect("conn registry").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.workers.lock().expect("worker list"));
        for t in threads {
            let _ = t.join();
        }
    }

    /// Blocks until the acceptor thread exits (it never does unless
    /// [`shutdown`](HttpServer::shutdown) is called from another thread or
    /// the process dies) — what `er-cli serve` parks on.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<HttpShared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Bounded pool: admission is an atomic increment; over the bound we
        // answer 503 so clients see back-pressure instead of a hang.
        if shared.active.fetch_add(1, Ordering::SeqCst) >= shared.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            let body = api::render_error("overloaded", "connection limit reached");
            let _ = (&stream).write_all(&http1::write_response(
                503,
                "application/json",
                &body,
                false,
            ));
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conn registry")
                .insert(conn_id, clone);
        }
        let shared_conn = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("er-http-conn".into())
            .spawn(move || {
                serve_connection(stream, &shared_conn);
                shared_conn
                    .conns
                    .lock()
                    .expect("conn registry")
                    .remove(&conn_id);
                shared_conn.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(t) => workers.lock().expect("worker list").push(t),
            Err(_) => {
                shared.conns.lock().expect("conn registry").remove(&conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Session defaults a connection accumulates from `X-ER-*` headers; they
/// persist across keep-alive requests on the same connection.
#[derive(Default)]
struct ConnDefaults {
    priority: Priority,
    deadline: Option<Duration>,
    accuracy: Option<Accuracy>,
    backend: Option<BackendChoice>,
}

fn serve_connection(mut stream: TcpStream, shared: &HttpShared) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut defaults = ConnDefaults::default();

    loop {
        // Drain every complete pipelined request already buffered before
        // touching the socket again.
        match http1::parse_request(&buf, &shared.limits) {
            ParseStep::Complete { request, consumed } => {
                buf.drain(..consumed);
                let keep_alive =
                    request.keep_alive() && !shared.shutting_down.load(Ordering::SeqCst);
                let (status, content_type, body) = handle_request(&request, shared, &mut defaults);
                let response = http1::write_response(status, &content_type, &body, keep_alive);
                if stream.write_all(&response).is_err() || !keep_alive {
                    break;
                }
                continue;
            }
            ParseStep::Invalid { status, message } => {
                let body = api::render_error("bad_request", &message);
                let _ = stream.write_all(&http1::write_response(
                    status,
                    "application/json",
                    &body,
                    false,
                ));
                break;
            }
            ParseStep::NeedMore => {}
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    // Idle keep-alive connection: close quietly.
                    break;
                }
                // Mid-request stall (slow-loris): tell the peer and close.
                let body = api::render_error("timeout", "timed out reading the request");
                let _ = stream.write_all(&http1::write_response(
                    408,
                    "application/json",
                    &body,
                    false,
                ));
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Applies any `X-ER-*` session headers to the connection defaults.
/// `X-ER-Priority: low|normal|high`; `X-ER-Deadline-Ms: <ms>|none`;
/// `X-ER-Accuracy: exact|walks:N|epsilon:EPS[:DELTA]|default`;
/// `X-ER-Backend: <name>|auto`.
fn apply_session_headers(request: &HttpRequest, defaults: &mut ConnDefaults) -> Result<(), String> {
    if let Some(p) = request.header("x-er-priority") {
        defaults.priority = match p.to_ascii_lowercase().as_str() {
            "low" => Priority::Low,
            "normal" => Priority::Normal,
            "high" => Priority::High,
            other => return Err(format!("unknown priority \"{other}\"")),
        };
    }
    if let Some(d) = request.header("x-er-deadline-ms") {
        defaults.deadline = if d.eq_ignore_ascii_case("none") {
            None
        } else {
            let ms = d
                .parse::<u64>()
                .map_err(|_| format!("invalid deadline \"{d}\""))?;
            Some(Duration::from_millis(ms))
        };
    }
    if let Some(a) = request.header("x-er-accuracy") {
        defaults.accuracy = if a.eq_ignore_ascii_case("default") {
            None
        } else {
            Some(api::parse_accuracy_spec(a)?)
        };
    }
    if let Some(b) = request.header("x-er-backend") {
        defaults.backend = if b.eq_ignore_ascii_case("auto") {
            None
        } else {
            Some(BackendChoice::parse(b).ok_or_else(|| format!("unknown backend \"{b}\""))?)
        };
    }
    Ok(())
}

fn handle_request(
    request: &HttpRequest,
    shared: &HttpShared,
    defaults: &mut ConnDefaults,
) -> (u16, String, String) {
    if let Err(message) = apply_session_headers(request, defaults) {
        return (
            400,
            "application/json".into(),
            api::render_error("bad_session_header", &message),
        );
    }
    let (path, query_string) = request.path_and_query();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"workers\":{},\"pending\":{}}}",
                shared.handle.worker_count(),
                shared.handle.pending()
            );
            (200, "application/json".into(), body)
        }
        ("GET", "/metrics") => {
            let stats = shared.handle.stats();
            let wants_json = query_string
                .map(|q| q.split('&').any(|kv| kv == "format=json"))
                .unwrap_or(false)
                || request
                    .header("accept")
                    .is_some_and(|a| a.contains("application/json"));
            if wants_json {
                (
                    200,
                    "application/json".into(),
                    api::render_stats_json(&stats),
                )
            } else {
                (
                    200,
                    "text/plain; version=0.0.4".into(),
                    api::render_stats_prometheus(&stats),
                )
            }
        }
        ("POST", "/query") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(b) => b,
                Err(_) => {
                    return (
                        400,
                        "application/json".into(),
                        api::render_error("bad_request", "body is not valid UTF-8"),
                    )
                }
            };
            let parsed =
                api::parse_query_body_with_defaults(body, defaults.accuracy, defaults.backend);
            let service_request = match parsed {
                Ok(r) => r,
                Err(message) => {
                    return (
                        400,
                        "application/json".into(),
                        api::render_error("bad_request", &message),
                    )
                }
            };
            let options = SubmitOptions {
                priority: defaults.priority,
                deadline: defaults.deadline,
            };
            let outcome = shared
                .handle
                .submit_with(service_request, options)
                .and_then(|ticket| ticket.wait());
            match outcome {
                Ok(response) => (
                    200,
                    "application/json".into(),
                    api::render_response(&response),
                ),
                Err(err) => {
                    let (status, kind) = api::error_status(&err);
                    (
                        status,
                        "application/json".into(),
                        api::render_error(kind, &err.to_string()),
                    )
                }
            }
        }
        (_, "/healthz" | "/metrics" | "/query") => (
            405,
            "application/json".into(),
            api::render_error("method_not_allowed", "wrong method for this route"),
        ),
        _ => (
            404,
            "application/json".into(),
            api::render_error("not_found", "unknown route"),
        ),
    }
}
