//! All-pairs effective resistance for small graphs.
//!
//! The paper explicitly rules out materialising all `O(n²)` pairwise values on
//! large graphs — that is the whole point of per-pair queries — but small
//! graphs (up to a few thousand nodes) are exactly where downstream analyses
//! such as sparsifier construction, clustering validation and Kirchhoff-index
//! studies want the full matrix. [`AllPairsResistance`] computes it from the
//! dense pseudo-inverse and exposes the classic whole-graph summaries
//! (Foster's theorem check, Kirchhoff index, resistance diameter, extreme
//! pairs).

use crate::error::IndexError;
use er_graph::{analysis, Graph, NodeId};
use er_linalg::LaplacianSolver;
use er_walks::par;

/// Dense matrix of all pairwise effective resistances.
pub struct AllPairsResistance {
    n: usize,
    /// Row-major `n × n` resistance values.
    values: Vec<f64>,
}

impl AllPairsResistance {
    /// Default node cap: beyond this the dense computation is refused.
    pub const DEFAULT_NODE_CAP: usize = 2_000;

    /// Computes the full resistance matrix (default node cap, all cores).
    pub fn compute(graph: &Graph) -> Result<Self, IndexError> {
        Self::compute_with_cap(graph, Self::DEFAULT_NODE_CAP)
    }

    /// Computes the full resistance matrix, refusing graphs with more than
    /// `node_cap` nodes (the `O(n²)` storage and `O(n)` Laplacian solves
    /// mirror the paper's argument for why all-pairs materialisation does not
    /// scale). Uses all cores; see [`Self::compute_with_threads`].
    pub fn compute_with_cap(graph: &Graph, node_cap: usize) -> Result<Self, IndexError> {
        Self::compute_with_threads(graph, node_cap, par::AUTO)
    }

    /// [`Self::compute_with_cap`] with an explicit worker-thread count
    /// (0 = all cores).
    ///
    /// The matrix is assembled from the columns of `L†` — one conjugate-
    /// gradient solve `L x = e_s` per node, fanned out over the deterministic
    /// parallel layer (CG is deterministic, so the matrix is identical at any
    /// thread count) — then `r(s, t) = L†(s,s) + L†(t,t) − 2 L†(t,s)`.
    pub fn compute_with_threads(
        graph: &Graph,
        node_cap: usize,
        threads: usize,
    ) -> Result<Self, IndexError> {
        analysis::validate_ergodic(graph)?;
        let n = graph.num_nodes();
        if n > node_cap {
            return Err(IndexError::BudgetExceeded {
                resource: "memory",
                message: format!("all-pairs ER needs an {n}×{n} dense matrix; cap is {node_cap}"),
            });
        }
        let solver = LaplacianSolver::new(graph, 1e-10, 20 * n.max(100));
        let columns = par::par_map_indexed(n as u64, 0, threads, |s, _| {
            let mut rhs = vec![0.0; n];
            rhs[s as usize] = 1.0;
            let (x, _) = solver.solve(&rhs);
            x
        });
        let mut values = vec![0.0; n * n];
        for s in 0..n {
            for t in (s + 1)..n {
                let r = (columns[s][s] + columns[t][t] - columns[s][t] - columns[t][s]).max(0.0);
                values[s * n + t] = r;
                values[t * n + s] = r;
            }
        }
        Ok(AllPairsResistance { n, values })
    }

    /// Number of nodes covered by the matrix.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// `r(s, t)` (0 on the diagonal).
    pub fn get(&self, s: NodeId, t: NodeId) -> f64 {
        self.values[s * self.n + t]
    }

    /// Sum of `r(u, v)` over the edges of `graph`. Foster's theorem states
    /// this equals exactly `n − 1` for any connected graph — a strong
    /// whole-matrix correctness check.
    pub fn foster_sum(&self, graph: &Graph) -> f64 {
        graph.edges().map(|(u, v)| self.get(u, v)).sum()
    }

    /// The Kirchhoff index `Σ_{s<t} r(s, t)`.
    pub fn kirchhoff_index(&self) -> f64 {
        let mut total = 0.0;
        for s in 0..self.n {
            for t in (s + 1)..self.n {
                total += self.get(s, t);
            }
        }
        total
    }

    /// The largest resistance over all pairs ("resistance diameter") and a
    /// pair attaining it.
    pub fn resistance_diameter(&self) -> (f64, (NodeId, NodeId)) {
        let mut best = (0.0, (0, 0));
        for s in 0..self.n {
            for t in (s + 1)..self.n {
                let r = self.get(s, t);
                if r > best.0 {
                    best = (r, (s, t));
                }
            }
        }
        best
    }

    /// The `k` most dissimilar (highest-resistance) pairs, sorted descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(NodeId, NodeId, f64)> {
        let mut pairs: Vec<(NodeId, NodeId, f64)> = (0..self.n)
            .flat_map(|s| ((s + 1)..self.n).map(move |t| (s, t)))
            .map(|(s, t)| (s, t, self.get(s, t)))
            .collect();
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        pairs.truncate(k);
        pairs
    }

    /// Average resistance over all distinct pairs.
    pub fn mean_resistance(&self) -> f64 {
        let pairs = (self.n * (self.n - 1) / 2) as f64;
        if pairs == 0.0 {
            0.0
        } else {
            self.kirchhoff_index() / pairs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn foster_theorem_holds() {
        for (name, g) in [
            ("complete", generators::complete(12).unwrap()),
            ("lollipop", generators::lollipop(6, 4).unwrap()),
            (
                "social",
                generators::social_network_like(80, 6.0, 2).unwrap(),
            ),
        ] {
            let apr = AllPairsResistance::compute(&g).unwrap();
            let foster = apr.foster_sum(&g);
            let expected = g.num_nodes() as f64 - 1.0;
            assert!(
                (foster - expected).abs() < 1e-6,
                "{name}: Foster sum {foster} vs n-1 = {expected}"
            );
        }
    }

    #[test]
    fn complete_graph_matrix_is_uniform() {
        let n = 10;
        let g = generators::complete(n).unwrap();
        let apr = AllPairsResistance::compute(&g).unwrap();
        for s in 0..n {
            assert_eq!(apr.get(s, s), 0.0);
            for t in 0..n {
                if s != t {
                    assert!((apr.get(s, t) - 2.0 / n as f64).abs() < 1e-9);
                }
            }
        }
        assert!((apr.mean_resistance() - 2.0 / n as f64).abs() < 1e-9);
    }

    #[test]
    fn diameter_of_lollipop_is_between_tail_tip_and_clique() {
        let g = generators::lollipop(6, 6).unwrap();
        let apr = AllPairsResistance::compute(&g).unwrap();
        let (diameter, (s, t)) = apr.resistance_diameter();
        // The farthest pair must involve the tail tip (last node).
        assert!(s == g.num_nodes() - 1 || t == g.num_nodes() - 1);
        assert!(diameter >= 6.0, "tail alone contributes 6 ohms");
        let top = apr.top_pairs(3);
        assert_eq!(top.len(), 3);
        assert!((top[0].2 - diameter).abs() < 1e-12);
        assert!(top[0].2 >= top[1].2 && top[1].2 >= top[2].2);
    }

    #[test]
    fn node_cap_is_enforced() {
        let g = generators::complete(50).unwrap();
        assert!(AllPairsResistance::compute_with_cap(&g, 10).is_err());
        assert!(AllPairsResistance::compute_with_cap(&g, 50).is_ok());
    }

    #[test]
    fn kirchhoff_matches_single_source_index() {
        let g = generators::barabasi_albert(90, 3, 8).unwrap();
        let apr = AllPairsResistance::compute(&g).unwrap();
        let index = crate::ErIndex::build(&g).unwrap();
        assert!(
            (apr.kirchhoff_index() - index.kirchhoff_index()).abs() / apr.kirchhoff_index() < 1e-6
        );
    }
}
