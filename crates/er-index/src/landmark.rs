//! Landmark-based effective-resistance bounds.
//!
//! Effective resistance is a squared Euclidean distance
//! (`r(s, t) = ‖L†^{1/2}(e_s − e_t)‖²`), so `√r` is a metric. Pre-computing
//! the exact resistance from a small set of *landmark* nodes to every node
//! therefore yields, for any pair `(s, t)` and landmark `l`, the triangle
//! bounds
//!
//! ```text
//! (√r(s,l) − √r(t,l))²  ≤  r(s, t)  ≤  (√r(s,l) + √r(t,l))²
//! ```
//!
//! Taking the best bound over all landmarks gives an O(k)-time answer per
//! query with no per-query solves or walks — useful as a filter in front of
//! the exact estimators ("only run GEER when the bounds are too loose") and as
//! a standalone approximation when the workload tolerates bounded relative
//! error.

use crate::diagonal::DiagonalStrategy;
use crate::error::IndexError;
use crate::single_source::ErIndex;
use er_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How landmark nodes are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// Uniformly at random.
    Random,
    /// The highest-degree nodes (hubs cover social networks well).
    HighestDegree,
    /// Half hubs, half uniform random.
    Mixed,
}

/// Lower/upper bounds (and a point estimate) for one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LandmarkBounds {
    /// Best (largest) lower bound over all landmarks.
    pub lower: f64,
    /// Best (smallest) upper bound over all landmarks.
    pub upper: f64,
}

impl LandmarkBounds {
    /// Midpoint of the bounds — the index's point estimate.
    pub fn estimate(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Width of the bound interval; small width means the landmarks localise
    /// the pair well and no exact query is needed.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether a value lies inside the (closed) bound interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-9 && value <= self.upper + 1e-9
    }
}

/// Landmark index: exact resistance vectors from `k` landmarks to all nodes.
pub struct LandmarkIndex {
    landmarks: Vec<NodeId>,
    /// `sqrt_resistances[j][v] = √r(landmark_j, v)`.
    sqrt_resistances: Vec<Vec<f64>>,
    num_nodes: usize,
}

impl LandmarkIndex {
    /// Builds an index with `num_landmarks` landmarks chosen by `selection`,
    /// using exact per-node solves for the pseudo-inverse diagonal.
    pub fn build(
        graph: &Graph,
        num_landmarks: usize,
        selection: LandmarkSelection,
        seed: u64,
    ) -> Result<Self, IndexError> {
        Self::build_with(
            graph,
            num_landmarks,
            selection,
            DiagonalStrategy::ExactSolves,
            seed,
        )
    }

    /// Builds an index with an explicit diagonal strategy (a Hutchinson
    /// diagonal makes the stored resistances — and hence the bounds —
    /// approximate; use only when a fuzzy filter is acceptable).
    pub fn build_with(
        graph: &Graph,
        num_landmarks: usize,
        selection: LandmarkSelection,
        diagonal: DiagonalStrategy,
        seed: u64,
    ) -> Result<Self, IndexError> {
        if num_landmarks == 0 {
            return Err(IndexError::InvalidConfiguration {
                name: "num_landmarks",
                message: "must be at least 1".into(),
            });
        }
        let n = graph.num_nodes();
        let num_landmarks = num_landmarks.min(n);
        let landmarks = select_landmarks(graph, num_landmarks, selection, seed, &[]);
        Self::build_for_landmarks(graph, landmarks, diagonal, seed)
    }

    /// Builds an index whose landmark set *starts with* `required` (deduped,
    /// in the given order) and is topped up with `num_extra` further
    /// landmarks chosen by `selection` from the remaining nodes.
    ///
    /// The required nodes keep their positions: `landmarks()[i]` is
    /// `required[i]` for the first `required.len()` distinct entries, so
    /// callers that anchor other structures to the required set (the sharded
    /// serving plane anchors per-shard boundary *portals* this way) can
    /// index [`sqrt_resistance`](Self::sqrt_resistance) by position without
    /// a lookup.
    ///
    /// ```
    /// use er_graph::generators;
    /// use er_index::{LandmarkIndex, LandmarkSelection};
    ///
    /// let g = generators::social_network_like(120, 8.0, 5).unwrap();
    /// let index =
    ///     LandmarkIndex::build_with_required(&g, &[3, 77], 4, LandmarkSelection::Mixed, 1)
    ///         .unwrap();
    /// assert_eq!(&index.landmarks()[..2], &[3, 77]);
    /// assert_eq!(index.landmarks().len(), 6);
    /// assert_eq!(index.sqrt_resistance(0, 3), 0.0, "√r(3, 3) = 0");
    /// ```
    pub fn build_with_required(
        graph: &Graph,
        required: &[NodeId],
        num_extra: usize,
        selection: LandmarkSelection,
        seed: u64,
    ) -> Result<Self, IndexError> {
        let n = graph.num_nodes();
        let mut landmarks: Vec<NodeId> = Vec::with_capacity(required.len() + num_extra);
        for &v in required {
            if v >= n {
                return Err(IndexError::Graph(er_graph::GraphError::NodeOutOfRange {
                    node: v,
                    n,
                }));
            }
            if !landmarks.contains(&v) {
                landmarks.push(v);
            }
        }
        if landmarks.is_empty() && num_extra == 0 {
            return Err(IndexError::InvalidConfiguration {
                name: "required",
                message: "need at least one required or extra landmark".into(),
            });
        }
        let num_extra = num_extra.min(n - landmarks.len());
        let extra = select_landmarks(graph, num_extra, selection, seed, &landmarks);
        landmarks.extend(extra);
        Self::build_for_landmarks(graph, landmarks, DiagonalStrategy::ExactSolves, seed)
    }

    /// Solves the landmark columns for an explicit, already-validated
    /// landmark list.
    fn build_for_landmarks(
        graph: &Graph,
        landmarks: Vec<NodeId>,
        diagonal: DiagonalStrategy,
        seed: u64,
    ) -> Result<Self, IndexError> {
        let mut index = ErIndex::build_with(graph, diagonal, seed)?
            .with_column_capacity(landmarks.len().max(1));
        let mut sqrt_resistances = Vec::with_capacity(landmarks.len());
        for &l in &landmarks {
            let profile = index.single_source(l)?;
            sqrt_resistances.push(profile.into_iter().map(|r| r.max(0.0).sqrt()).collect());
        }
        Ok(LandmarkIndex {
            landmarks,
            sqrt_resistances,
            num_nodes: graph.num_nodes(),
        })
    }

    /// Reassembles an index from previously extracted parts —
    /// `sqrt_resistances[j][v]` must be `√r(landmarks[j], v)` on the graph
    /// the index will serve. This is the re-injection seam of incremental
    /// dynamic serving: the dynamic service extracts the table, advances it
    /// through Sherman–Morrison rank-1 updates as edges mutate, and rebuilds
    /// the index for the next epoch without re-solving any landmark column.
    ///
    /// ```
    /// use er_graph::generators;
    /// use er_index::{LandmarkIndex, LandmarkSelection};
    ///
    /// let g = generators::social_network_like(100, 7.0, 2).unwrap();
    /// let built = LandmarkIndex::build(&g, 4, LandmarkSelection::Mixed, 1).unwrap();
    /// let table: Vec<Vec<f64>> = (0..4)
    ///     .map(|j| (0..100).map(|v| built.sqrt_resistance(j, v)).collect())
    ///     .collect();
    /// let rebuilt =
    ///     LandmarkIndex::from_parts(built.landmarks().to_vec(), table, 100).unwrap();
    /// assert_eq!(rebuilt.bounds(5, 60).unwrap(), built.bounds(5, 60).unwrap());
    /// ```
    pub fn from_parts(
        landmarks: Vec<NodeId>,
        sqrt_resistances: Vec<Vec<f64>>,
        num_nodes: usize,
    ) -> Result<Self, IndexError> {
        if landmarks.is_empty() || landmarks.len() != sqrt_resistances.len() {
            return Err(IndexError::InvalidConfiguration {
                name: "landmarks",
                message: format!(
                    "need matching non-empty landmark ({}) and table ({}) lengths",
                    landmarks.len(),
                    sqrt_resistances.len()
                ),
            });
        }
        for &l in &landmarks {
            if l >= num_nodes {
                return Err(IndexError::Graph(er_graph::GraphError::NodeOutOfRange {
                    node: l,
                    n: num_nodes,
                }));
            }
        }
        if sqrt_resistances.iter().any(|row| row.len() != num_nodes) {
            return Err(IndexError::InvalidConfiguration {
                name: "sqrt_resistances",
                message: format!("every row must have num_nodes = {num_nodes} entries"),
            });
        }
        Ok(LandmarkIndex {
            landmarks,
            sqrt_resistances,
            num_nodes,
        })
    }

    /// The landmark node ids.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// The stored exact `√r(landmark, v)` for the landmark at position
    /// `landmark_pos` of [`landmarks`](Self::landmarks).
    ///
    /// This is the per-side ingredient of cross-shard interval stitching:
    /// `√r` is a metric, so per-side landmark distances compose with
    /// landmark-landmark distances by the triangle inequality.
    ///
    /// # Panics
    /// Panics if `landmark_pos` or `v` is out of range.
    pub fn sqrt_resistance(&self, landmark_pos: usize, v: NodeId) -> f64 {
        self.sqrt_resistances[landmark_pos][v]
    }

    /// Number of nodes covered by the index.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Triangle-inequality bounds on `r(s, t)` using every landmark.
    pub fn bounds(&self, s: NodeId, t: NodeId) -> Result<LandmarkBounds, IndexError> {
        if s >= self.num_nodes || t >= self.num_nodes {
            return Err(IndexError::Graph(er_graph::GraphError::NodeOutOfRange {
                node: s.max(t),
                n: self.num_nodes,
            }));
        }
        if s == t {
            return Ok(LandmarkBounds {
                lower: 0.0,
                upper: 0.0,
            });
        }
        let mut lower: f64 = 0.0;
        let mut upper = f64::INFINITY;
        for (j, &l) in self.landmarks.iter().enumerate() {
            let a = self.sqrt_resistances[j][s];
            let b = self.sqrt_resistances[j][t];
            let low = (a - b) * (a - b);
            let high = (a + b) * (a + b);
            lower = lower.max(low);
            upper = upper.min(high);
            // A query endpoint that *is* a landmark gives exact values.
            if l == s || l == t {
                let exact = if l == s { b * b } else { a * a };
                return Ok(LandmarkBounds {
                    lower: exact,
                    upper: exact,
                });
            }
        }
        Ok(LandmarkBounds { lower, upper })
    }

    /// Point estimate (bound midpoint) for `r(s, t)`.
    pub fn estimate(&self, s: NodeId, t: NodeId) -> Result<f64, IndexError> {
        Ok(self.bounds(s, t)?.estimate())
    }
}

/// Chooses `k` landmarks by `selection` among the nodes not in `exclude`
/// (the already-fixed required landmarks of
/// [`LandmarkIndex::build_with_required`]).
fn select_landmarks(
    graph: &Graph,
    k: usize,
    selection: LandmarkSelection,
    seed: u64,
    exclude: &[NodeId],
) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let eligible = || (0..n).filter(|v| !exclude.contains(v));
    let by_degree = || {
        let mut nodes: Vec<NodeId> = eligible().collect();
        nodes.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
        nodes
    };
    match selection {
        LandmarkSelection::Random => {
            let mut nodes: Vec<NodeId> = eligible().collect();
            nodes.shuffle(&mut rng);
            nodes.truncate(k);
            nodes
        }
        LandmarkSelection::HighestDegree => {
            let mut nodes = by_degree();
            nodes.truncate(k);
            nodes
        }
        LandmarkSelection::Mixed => {
            let hubs = k / 2;
            let mut chosen: Vec<NodeId> = by_degree().into_iter().take(hubs).collect();
            let mut rest: Vec<NodeId> = eligible().filter(|v| !chosen.contains(v)).collect();
            rest.shuffle(&mut rng);
            chosen.extend(rest.into_iter().take(k - chosen.len()));
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn bounds_always_contain_the_exact_value() {
        let g = generators::social_network_like(150, 8.0, 5).unwrap();
        let index = LandmarkIndex::build(&g, 8, LandmarkSelection::Mixed, 3).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &(s, t) in &[(0usize, 75usize), (10, 140), (33, 34), (7, 7)] {
            let exact = solver.effective_resistance(s, t);
            let bounds = index.bounds(s, t).unwrap();
            assert!(
                bounds.contains(exact),
                "({s},{t}): exact {exact} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
            assert!(bounds.lower <= bounds.upper + 1e-12);
        }
    }

    #[test]
    fn landmark_endpoint_queries_are_exact() {
        let g = generators::barabasi_albert(100, 3, 2).unwrap();
        let index = LandmarkIndex::build(&g, 5, LandmarkSelection::HighestDegree, 1).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let l = index.landmarks()[0];
        let other = if l == 0 { 1 } else { 0 };
        let bounds = index.bounds(l, other).unwrap();
        let exact = solver.effective_resistance(l, other);
        assert!((bounds.lower - exact).abs() < 1e-6);
        assert!((bounds.upper - exact).abs() < 1e-6);
        assert!(bounds.width() < 1e-6);
    }

    #[test]
    fn more_landmarks_never_loosen_bounds() {
        let g = generators::social_network_like(120, 7.0, 9).unwrap();
        let small = LandmarkIndex::build(&g, 2, LandmarkSelection::HighestDegree, 4).unwrap();
        let large = LandmarkIndex::build(&g, 10, LandmarkSelection::HighestDegree, 4).unwrap();
        // The first two landmarks of the high-degree selection coincide, so the
        // 10-landmark bounds can only be tighter or equal.
        for &(s, t) in &[(3usize, 90usize), (20, 60), (55, 119)] {
            let b_small = small.bounds(s, t).unwrap();
            let b_large = large.bounds(s, t).unwrap();
            assert!(b_large.lower >= b_small.lower - 1e-9);
            assert!(b_large.upper <= b_small.upper + 1e-9);
        }
    }

    #[test]
    fn selection_strategies_produce_requested_counts() {
        let g = generators::barabasi_albert(200, 4, 7).unwrap();
        for selection in [
            LandmarkSelection::Random,
            LandmarkSelection::HighestDegree,
            LandmarkSelection::Mixed,
        ] {
            let index = LandmarkIndex::build(&g, 6, selection, 11).unwrap();
            assert_eq!(index.landmarks().len(), 6);
            assert_eq!(index.num_nodes(), 200);
            let mut sorted = index.landmarks().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "landmarks must be distinct");
        }
        // Hubs-first selection starts with the maximum-degree node.
        let hubs = LandmarkIndex::build(&g, 3, LandmarkSelection::HighestDegree, 0).unwrap();
        let max_degree = g.max_degree();
        assert_eq!(g.degree(hubs.landmarks()[0]), max_degree);
    }

    #[test]
    fn required_landmarks_keep_their_positions_and_bound_soundly() {
        let g = generators::social_network_like(140, 8.0, 6).unwrap();
        let required = vec![10, 40, 10, 99]; // duplicate is dropped
        let index =
            LandmarkIndex::build_with_required(&g, &required, 3, LandmarkSelection::Mixed, 2)
                .unwrap();
        assert_eq!(&index.landmarks()[..3], &[10, 40, 99]);
        assert_eq!(index.landmarks().len(), 6);
        let mut sorted = index.landmarks().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "extras never repeat the required set");
        // Stored sqrt distances are the exact per-landmark profiles.
        let solver = LaplacianSolver::for_ground_truth(&g);
        for pos in 0..3 {
            let l = index.landmarks()[pos];
            assert_eq!(index.sqrt_resistance(pos, l), 0.0);
            let exact = solver.effective_resistance(l, 77);
            assert!((index.sqrt_resistance(pos, 77).powi(2) - exact).abs() < 1e-6);
        }
        // Bounds built on a required-landmark index stay sound.
        for &(s, t) in &[(0usize, 70usize), (10, 120), (40, 99)] {
            let exact = solver.effective_resistance(s, t);
            assert!(index.bounds(s, t).unwrap().contains(exact));
        }
        // Out-of-range required nodes and empty configurations are rejected.
        assert!(
            LandmarkIndex::build_with_required(&g, &[999], 2, LandmarkSelection::Random, 0)
                .is_err()
        );
        assert!(
            LandmarkIndex::build_with_required(&g, &[], 0, LandmarkSelection::Random, 0).is_err()
        );
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let g = generators::complete(10).unwrap();
        assert!(LandmarkIndex::build(&g, 0, LandmarkSelection::Random, 0).is_err());
        let index = LandmarkIndex::build(&g, 20, LandmarkSelection::Random, 0).unwrap();
        assert_eq!(index.landmarks().len(), 10, "clamped to n");
        assert!(index.bounds(0, 99).is_err());
    }
}
