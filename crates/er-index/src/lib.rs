//! Indexing and workload layer on top of pairwise effective-resistance
//! estimation.
//!
//! The paper's estimators ([`er_core::Geer`], [`er_core::Amc`]) answer one
//! ε-approximate pair query at a time with no preprocessing beyond the
//! spectral bound λ. Real workloads wrap that primitive in recurring access
//! patterns, which this crate provides:
//!
//! * [`ErIndex`] — single-source / exact pairwise resistance from Laplacian
//!   pseudo-inverse columns plus a pre-computed diagonal
//!   ([`DiagonalStrategy`]), including Kirchhoff index and nearest-neighbour
//!   search.
//! * [`AllPairsResistance`] — the full resistance matrix for small graphs,
//!   with Foster's-theorem and resistance-diameter summaries.
//! * [`LandmarkIndex`] — O(k)-per-query lower/upper bounds from `k` landmark
//!   columns, exploiting that `√r` is a metric.
//! * [`QueryCache`] / [`BatchExecutor`] — memoisation and batched execution
//!   over any [`er_core::ResistanceEstimator`].
//! * [`DynamicEr`] — an editable graph with lazily refreshed spectral
//!   preprocessing for insert/delete/query workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allpairs;
pub mod batch;
pub mod cache;
pub mod diagonal;
pub mod dynamic;
pub mod error;
pub mod landmark;
pub mod single_source;

pub use allpairs::AllPairsResistance;
pub use batch::{BatchExecutor, BatchReport};
pub use cache::QueryCache;
pub use diagonal::{pseudo_inverse_diagonal, DiagonalStrategy};
pub use dynamic::DynamicEr;
pub use error::IndexError;
pub use landmark::{LandmarkBounds, LandmarkIndex, LandmarkSelection};
pub use single_source::{
    nearest_from_row, resistance_from_column, row_from_column, solve_column, ErIndex,
};
