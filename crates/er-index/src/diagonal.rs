//! Estimation of the diagonal of the Laplacian pseudo-inverse.
//!
//! Every column-based identity for effective resistance,
//! `r(s, t) = L†(s, s) + L†(t, t) − 2 L†(s, t)`, needs the diagonal of `L†`.
//! A single column is one Laplacian solve, but the diagonal touches every
//! column, so the indexing layer offers three strategies with very different
//! cost/accuracy trade-offs:
//!
//! * [`DiagonalStrategy::ExactSolves`] — `n` conjugate-gradient solves,
//!   exact up to solver tolerance, `O(n · m)` per build (fine up to a few
//!   thousand nodes).
//! * [`DiagonalStrategy::DensePseudoInverse`] — a full Jacobi
//!   eigendecomposition, `O(n³)`; only sensible for very small graphs but a
//!   useful independent cross-check in tests.
//! * [`DiagonalStrategy::Hutchinson`] — the stochastic diagonal estimator
//!   `diag(L†) ≈ (1/k) Σ_j z_j ∘ (L† z_j)` with Rademacher probes `z_j`;
//!   `k` solves, unbiased, with per-entry standard deviation on the order of
//!   the off-diagonal mass of the corresponding row — an approximation, and
//!   documented as such.

use er_graph::Graph;
use er_linalg::{DenseMatrix, LaplacianSolver};
use er_walks::par;
use rand::Rng;

/// How to obtain `diag(L†)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagonalStrategy {
    /// One CG solve per node (exact up to solver tolerance).
    ExactSolves,
    /// Full dense pseudo-inverse (exact, `O(n³)`, small graphs only).
    DensePseudoInverse,
    /// Hutchinson stochastic estimator with the given number of probes.
    Hutchinson {
        /// Number of Rademacher probe vectors (each probe is one CG solve).
        probes: usize,
    },
}

/// Computes (or estimates) the diagonal of the Laplacian pseudo-inverse.
///
/// The returned vector has length `n`; entry `v` is `L†(v, v)`, which equals
/// the average of `r(v, u)` over the "electrical" distribution and is always
/// non-negative for the exact strategies.
pub fn pseudo_inverse_diagonal(graph: &Graph, strategy: DiagonalStrategy, seed: u64) -> Vec<f64> {
    pseudo_inverse_diagonal_with_threads(graph, strategy, seed, par::AUTO)
}

/// [`pseudo_inverse_diagonal`] with an explicit worker-thread count
/// (0 = all cores). The per-node solves of [`DiagonalStrategy::ExactSolves`]
/// and the probes of [`DiagonalStrategy::Hutchinson`] fan out over the
/// deterministic parallel layer; results are identical at any thread count.
pub fn pseudo_inverse_diagonal_with_threads(
    graph: &Graph,
    strategy: DiagonalStrategy,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let n = graph.num_nodes();
    match strategy {
        DiagonalStrategy::ExactSolves => {
            let solver = LaplacianSolver::for_ground_truth(graph);
            par::par_map_indexed(n as u64, seed, threads, |v, _| {
                let mut rhs = vec![0.0; n];
                rhs[v as usize] = 1.0;
                let (x, _) = solver.solve(&rhs);
                x[v as usize]
            })
        }
        DiagonalStrategy::DensePseudoInverse => {
            let pinv = DenseMatrix::laplacian(graph).pseudo_inverse(1e-9);
            (0..n).map(|v| pinv.get(v, v)).collect()
        }
        DiagonalStrategy::Hutchinson { probes } => {
            let probes = probes.max(1);
            let solver = LaplacianSolver::for_ground_truth(graph);
            let mut diag = par::par_fold_indexed(
                probes as u64,
                seed,
                threads,
                || vec![0.0f64; n],
                |_, probe_rng, acc: &mut Vec<f64>| {
                    let z: Vec<f64> = (0..n)
                        .map(|_| if probe_rng.gen::<bool>() { 1.0 } else { -1.0 })
                        .collect();
                    let (x, _) = solver.solve(&z);
                    for v in 0..n {
                        acc[v] += z[v] * x[v];
                    }
                },
                |total, part| {
                    for (t, p) in total.iter_mut().zip(part) {
                        *t += p;
                    }
                },
            );
            for d in &mut diag {
                *d /= probes as f64;
            }
            diag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn exact_strategies_agree_on_small_graphs() {
        let g = generators::social_network_like(60, 6.0, 3).unwrap();
        let by_solves = pseudo_inverse_diagonal(&g, DiagonalStrategy::ExactSolves, 0);
        let by_dense = pseudo_inverse_diagonal(&g, DiagonalStrategy::DensePseudoInverse, 0);
        for v in 0..g.num_nodes() {
            assert!(
                (by_solves[v] - by_dense[v]).abs() < 1e-6,
                "node {v}: {} vs {}",
                by_solves[v],
                by_dense[v]
            );
            assert!(by_solves[v] > 0.0);
        }
    }

    #[test]
    fn diagonal_recovers_known_complete_graph_value() {
        // For K_n, L† = (I - J/n) / n, so every diagonal entry is (n-1)/n².
        let n = 8;
        let g = generators::complete(n).unwrap();
        let diag = pseudo_inverse_diagonal(&g, DiagonalStrategy::ExactSolves, 0);
        let expected = (n as f64 - 1.0) / (n as f64 * n as f64);
        for &d in &diag {
            assert!((d - expected).abs() < 1e-9, "{d} vs {expected}");
        }
    }

    #[test]
    fn hutchinson_estimate_tracks_the_exact_diagonal() {
        let g = generators::complete(12).unwrap();
        let exact = pseudo_inverse_diagonal(&g, DiagonalStrategy::ExactSolves, 0);
        let approx = pseudo_inverse_diagonal(&g, DiagonalStrategy::Hutchinson { probes: 600 }, 7);
        let mean_abs_err: f64 = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| (e - a).abs())
            .sum::<f64>()
            / exact.len() as f64;
        // K_12 has tiny off-diagonal mass, so a few hundred probes suffice.
        assert!(mean_abs_err < 0.02, "mean abs error {mean_abs_err}");
    }

    #[test]
    fn hutchinson_with_zero_probes_is_clamped_to_one() {
        let g = generators::complete(5).unwrap();
        let d = pseudo_inverse_diagonal(&g, DiagonalStrategy::Hutchinson { probes: 0 }, 1);
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|x| x.is_finite()));
    }
}
