//! Column-based exact index: single-source effective resistance.
//!
//! The per-pair estimators of the paper (AMC, GEER) are the right tool when a
//! workload asks for a handful of arbitrary pairs. Many applications instead
//! ask for *one source against many targets* — "rank all candidate friends of
//! user `s` by resistance", "profile node `s` against the whole graph". For
//! that access pattern the column identity
//!
//! ```text
//! r(s, t) = L†(s, s) + L†(t, t) − 2 L†(t, s)
//! ```
//!
//! answers *all* targets of a source with a single Laplacian solve (the column
//! `L† e_s`), provided `diag(L†)` is available. [`ErIndex`] therefore
//! pre-computes the diagonal once (strategy chosen by the caller, see
//! [`DiagonalStrategy`]) and caches recently used columns.

use crate::diagonal::{pseudo_inverse_diagonal_with_threads, DiagonalStrategy};
use crate::error::IndexError;
use er_graph::{analysis, Graph, IntoGraphArc, NodeId};
use er_linalg::LaplacianSolver;
use er_walks::par;
use std::collections::HashMap;
use std::sync::Arc;

/// Solves the pseudo-inverse column `L† e_s` — the one Laplacian solve both
/// [`ErIndex`] and any external column tier (the service's concurrent
/// `IndexBackend`) must perform identically, so a tolerance or centring
/// change lands in every tier at once.
pub fn solve_column(graph: &Graph, s: NodeId) -> Vec<f64> {
    let solver = LaplacianSolver::for_ground_truth(graph);
    let mut rhs = vec![0.0; graph.num_nodes()];
    rhs[s] = 1.0;
    let (x, _) = solver.solve(&rhs);
    x
}

/// `r(s, t)` from the pseudo-inverse diagonal and the column `L† e_s`, with
/// the `.max(0.0)` clamp absorbing solver-tolerance negatives near zero.
/// The single source of truth for the column identity — [`ErIndex`] and any
/// external column tier (the service's concurrent `IndexBackend`) must
/// agree bit for bit, so both call this.
pub fn resistance_from_column(diagonal: &[f64], column: &[f64], s: NodeId, t: NodeId) -> f64 {
    if s == t {
        return 0.0;
    }
    (diagonal[s] + diagonal[t] - 2.0 * column[t]).max(0.0)
}

/// The full row `r(s, ·)` from the diagonal and the column `L† e_s`
/// (`r(s, s) = 0`); shared like [`resistance_from_column`].
pub fn row_from_column(diagonal: &[f64], column: &[f64], s: NodeId) -> Vec<f64> {
    (0..diagonal.len())
        .map(|t| resistance_from_column(diagonal, column, s, t))
        .collect()
}

/// The `k` nodes nearest to `s` given its full resistance row, sorted
/// ascending with `s` itself excluded; shared tie-breaking for every
/// nearest-neighbour surface.
pub fn nearest_from_row(row: Vec<f64>, s: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    let mut scored: Vec<(NodeId, f64)> = row
        .into_iter()
        .enumerate()
        .filter(|&(v, _)| v != s)
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

/// Exact (up to solver tolerance) effective-resistance index built from
/// Laplacian pseudo-inverse columns and a pre-computed diagonal.
///
/// The index owns the graph behind an `Arc`, so it is `Send`, storable in
/// services, and free of borrow lifetimes.
pub struct ErIndex {
    graph: Arc<Graph>,
    diagonal: Vec<f64>,
    strategy: DiagonalStrategy,
    columns: HashMap<NodeId, Vec<f64>>,
    column_capacity: usize,
    solves: u64,
}

impl ErIndex {
    /// Default number of pseudo-inverse columns kept in the cache.
    pub const DEFAULT_COLUMN_CAPACITY: usize = 64;

    /// Builds the index with the exact per-node-solve diagonal. `O(n)` CG
    /// solves, fanned out over all cores; intended for graphs up to a few
    /// thousand nodes.
    pub fn build(graph: impl IntoGraphArc) -> Result<Self, IndexError> {
        Self::build_with(graph, DiagonalStrategy::ExactSolves, 0)
    }

    /// Builds the index with an explicit diagonal strategy and RNG seed (the
    /// seed only matters for [`DiagonalStrategy::Hutchinson`]), using all
    /// cores for the diagonal fan-out.
    pub fn build_with(
        graph: impl IntoGraphArc,
        strategy: DiagonalStrategy,
        seed: u64,
    ) -> Result<Self, IndexError> {
        Self::build_with_threads(graph, strategy, seed, par::AUTO)
    }

    /// [`Self::build_with`] with an explicit worker-thread count (0 = all
    /// cores); the diagonal is identical at any thread count.
    pub fn build_with_threads(
        graph: impl IntoGraphArc,
        strategy: DiagonalStrategy,
        seed: u64,
        threads: usize,
    ) -> Result<Self, IndexError> {
        let graph = graph.into_graph_arc();
        analysis::validate_ergodic(&graph)?;
        let diagonal = pseudo_inverse_diagonal_with_threads(&graph, strategy, seed, threads);
        let solves = match strategy {
            DiagonalStrategy::ExactSolves => graph.num_nodes() as u64,
            DiagonalStrategy::DensePseudoInverse => 0,
            DiagonalStrategy::Hutchinson { probes } => probes.max(1) as u64,
        };
        Ok(ErIndex {
            graph,
            diagonal,
            strategy,
            columns: HashMap::new(),
            column_capacity: Self::DEFAULT_COLUMN_CAPACITY,
            solves,
        })
    }

    /// Sets how many pseudo-inverse columns are cached (at least 1).
    #[must_use]
    pub fn with_column_capacity(mut self, capacity: usize) -> Self {
        self.column_capacity = capacity.max(1);
        self
    }

    /// The graph the index answers queries about.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared graph handle.
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The diagonal strategy the index was built with.
    pub fn strategy(&self) -> DiagonalStrategy {
        self.strategy
    }

    /// `L†(v, v)` for node `v`.
    pub fn diagonal_entry(&self, v: NodeId) -> Result<f64, IndexError> {
        self.graph.check_node(v)?;
        Ok(self.diagonal[v])
    }

    /// The full pre-computed pseudo-inverse diagonal `diag(L†)`, indexed by
    /// node id — for callers that build their own column tier on top of the
    /// index (e.g. the service's concurrent `IndexBackend`).
    pub fn diagonal(&self) -> &[f64] {
        &self.diagonal
    }

    /// Total number of Laplacian solves performed so far (build + queries).
    pub fn total_solves(&self) -> u64 {
        self.solves
    }

    /// Number of columns currently cached.
    pub fn cached_columns(&self) -> usize {
        self.columns.len()
    }

    /// The configured column-cache capacity.
    pub fn column_capacity(&self) -> usize {
        self.column_capacity
    }

    /// Takes the cached columns out of the index — for handing the warm
    /// working set over to an external column tier without re-solving.
    pub fn take_cached_columns(&mut self) -> HashMap<NodeId, Vec<f64>> {
        std::mem::take(&mut self.columns)
    }

    /// Makes the column `L† e_s` resident in the cache, then hands it back
    /// as a shared borrow so callers can read `self.diagonal` alongside it.
    fn column(&mut self, s: NodeId) -> &[f64] {
        if !self.columns.contains_key(&s) {
            if self.columns.len() >= self.column_capacity {
                // Evict an arbitrary column; the cache is a working set, not
                // an LRU — sources in this access pattern repeat immediately
                // or not at all.
                if let Some(&evict) = self.columns.keys().next() {
                    self.columns.remove(&evict);
                }
            }
            let x = solve_column(&self.graph, s);
            self.solves += 1;
            self.columns.insert(s, x);
        }
        &self.columns[&s]
    }

    /// The effective resistance `r(s, t)`, exact up to solver tolerance.
    pub fn resistance(&mut self, s: NodeId, t: NodeId) -> Result<f64, IndexError> {
        self.graph.check_node(s)?;
        self.graph.check_node(t)?;
        if s == t {
            return Ok(0.0);
        }
        self.column(s);
        Ok(resistance_from_column(
            &self.diagonal,
            &self.columns[&s],
            s,
            t,
        ))
    }

    /// The resistance from `s` to every node of the graph (`r(s, s) = 0`),
    /// using exactly one Laplacian solve beyond the cached state.
    pub fn single_source(&mut self, s: NodeId) -> Result<Vec<f64>, IndexError> {
        self.graph.check_node(s)?;
        self.column(s);
        Ok(row_from_column(&self.diagonal, &self.columns[&s], s))
    }

    /// The `k` nodes closest to `s` in effective resistance (excluding `s`
    /// itself), sorted ascending — the "similarity search" access pattern.
    pub fn nearest(&mut self, s: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, IndexError> {
        Ok(nearest_from_row(self.single_source(s)?, s, k))
    }

    /// The Kirchhoff index `Σ_{s<t} r(s, t) = n · trace(L†)` of the graph, a
    /// global robustness measure used by the power-network literature the
    /// paper cites. With the diagonal already in hand this is `O(n)`.
    pub fn kirchhoff_index(&self) -> f64 {
        self.graph.num_nodes() as f64 * self.diagonal.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn resistance_matches_direct_solver() {
        let g = generators::social_network_like(120, 8.0, 9).unwrap();
        let mut index = ErIndex::build(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &(s, t) in &[(0usize, 60usize), (5, 119), (30, 31), (2, 2)] {
            let via_index = index.resistance(s, t).unwrap();
            let via_solver = solver.effective_resistance(s, t);
            assert!(
                (via_index - via_solver).abs() < 1e-7,
                "({s},{t}): {via_index} vs {via_solver}"
            );
        }
    }

    #[test]
    fn single_source_profile_is_consistent_with_pairwise_queries() {
        let g = generators::barabasi_albert(150, 3, 4).unwrap();
        let mut index = ErIndex::build(&g).unwrap();
        let profile = index.single_source(17).unwrap();
        assert_eq!(profile.len(), 150);
        assert_eq!(profile[17], 0.0);
        for &t in &[0usize, 50, 149] {
            let pairwise = index.resistance(17, t).unwrap();
            assert!((profile[t] - pairwise).abs() < 1e-9);
        }
    }

    #[test]
    fn path_graph_resistance_is_hop_distance() {
        // On a tree, r(s, t) is the path length between s and t; a path graph
        // is bipartite so validate_ergodic would reject it — add a chord to
        // make it non-bipartite without touching the far end of the path.
        let path = generators::path(12).unwrap();
        let g = er_graph::transform::add_edges(&path, &[(0, 2)]).unwrap();
        let mut index = ErIndex::build(&g).unwrap();
        // Nodes 5..11 are still connected by the unique path, so r equals the
        // number of hops.
        assert!((index.resistance(5, 8).unwrap() - 3.0).abs() < 1e-7);
        assert!((index.resistance(10, 11).unwrap() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn nearest_returns_sorted_neighbours_first() {
        let g = generators::lollipop(8, 5).unwrap();
        let mut index = ErIndex::build(&g).unwrap();
        let nearest = index.nearest(0, 4).unwrap();
        assert_eq!(nearest.len(), 4);
        for pair in nearest.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // The closest nodes to a clique member are other clique members, not
        // the tail tip.
        assert!(nearest.iter().all(|&(v, _)| v < 8));
    }

    #[test]
    fn kirchhoff_index_of_complete_graph_matches_formula() {
        // K_n: r(u, v) = 2/n for every pair, so Kf = C(n,2) · 2/n = n - 1.
        let n = 9;
        let g = generators::complete(n).unwrap();
        let index = ErIndex::build(&g).unwrap();
        assert!((index.kirchhoff_index() - (n as f64 - 1.0)).abs() < 1e-7);
    }

    #[test]
    fn column_cache_respects_capacity() {
        let g = generators::complete(30).unwrap();
        let mut index = ErIndex::build(&g).unwrap().with_column_capacity(2);
        index.resistance(0, 1).unwrap();
        index.resistance(2, 3).unwrap();
        index.resistance(4, 5).unwrap();
        assert!(index.cached_columns() <= 2);
        assert!(index.total_solves() >= 33, "30 build solves + 3 columns");
    }

    #[test]
    fn invalid_nodes_and_graphs_are_rejected() {
        let g = generators::complete(5).unwrap();
        let mut index = ErIndex::build(&g).unwrap();
        assert!(index.resistance(0, 9).is_err());
        assert!(index.single_source(7).is_err());
        let disconnected = er_graph::GraphBuilder::from_edges(4, vec![(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(ErIndex::build(&disconnected).is_err());
    }
}
