//! Batched query execution over any [`ResistanceEstimator`].
//!
//! The benchmark workloads of the paper (Section 5.1) and most applications
//! issue queries in batches: 100 random pairs, every candidate of one user,
//! every edge of a subgraph. [`BatchExecutor`] wraps an arbitrary estimator
//! with the [`QueryCache`], deduplicates symmetric repeats inside and across
//! batches, short-circuits self-pairs, and reports how much work the cache
//! saved.

use crate::cache::QueryCache;
use er_core::{EstimatorError, ForkableEstimator, ResistanceEstimator};
use er_graph::NodeId;
use er_walks::par;
use std::collections::HashMap;

/// Summary of one executed batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Estimated resistance per input pair, in input order.
    pub values: Vec<f64>,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries that had to run the estimator.
    pub estimator_calls: u64,
    /// Self-pairs answered as 0 without touching estimator or cache.
    pub trivial_queries: u64,
}

impl BatchReport {
    /// Fraction of non-trivial queries served from the cache.
    pub fn savings(&self) -> f64 {
        let total = self.cache_hits + self.estimator_calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Executes batches of pairwise queries through a shared cache.
#[derive(Debug)]
pub struct BatchExecutor {
    cache: QueryCache,
}

impl BatchExecutor {
    /// Creates an executor whose cache holds `cache_capacity` pairs.
    pub fn new(cache_capacity: usize) -> Self {
        BatchExecutor {
            cache: QueryCache::new(cache_capacity),
        }
    }

    /// Read access to the underlying cache (for statistics).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Runs every pair through `estimator`, serving repeats from the cache.
    ///
    /// Stops at the first estimator error (cache contents from already
    /// answered queries are kept, so a retry after fixing the problem does not
    /// repeat work).
    pub fn run<E: ResistanceEstimator>(
        &mut self,
        estimator: &mut E,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<BatchReport, EstimatorError> {
        let mut values = Vec::with_capacity(pairs.len());
        let mut cache_hits = 0;
        let mut estimator_calls = 0;
        let mut trivial_queries = 0;
        for &(s, t) in pairs {
            if s == t {
                trivial_queries += 1;
                values.push(0.0);
                continue;
            }
            if let Some(v) = self.cache.get(s, t) {
                cache_hits += 1;
                values.push(v);
                continue;
            }
            let estimate = estimator.estimate(s, t)?;
            estimator_calls += 1;
            self.cache.insert(s, t, estimate.value);
            values.push(estimate.value);
        }
        Ok(BatchReport {
            values,
            cache_hits,
            estimator_calls,
            trivial_queries,
        })
    }

    /// Runs a batch through `estimator` with the misses fanned out over
    /// `threads` worker threads (0 = all cores).
    ///
    /// Cache lookups and dedup happen up front on the calling thread; each
    /// distinct uncached pair is then answered by an independent fork of the
    /// estimator on the RNG stream of the pair's first position in the batch,
    /// so for a fixed estimator seed the report is identical at any thread
    /// count — and identical no matter how the queries interleave.
    ///
    /// Error semantics match [`Self::run`] in spirit: if any query fails, the
    /// error of the earliest-position failing query is returned, but values
    /// that were computed successfully are still cached for a retry.
    pub fn run_parallel<E: ForkableEstimator>(
        &mut self,
        estimator: &E,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Result<BatchReport, EstimatorError> {
        let mut values = vec![0.0; pairs.len()];
        let mut cache_hits = 0;
        let mut trivial_queries = 0;
        // Position in `misses` of each distinct uncached pair, keyed by the
        // cache's canonical (ordered) form.
        let mut miss_index: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut misses: Vec<(usize, (NodeId, NodeId))> = Vec::new();
        // Positions whose value comes from miss slot i.
        let mut resolve: Vec<(usize, usize)> = Vec::new();
        for (pos, &(s, t)) in pairs.iter().enumerate() {
            if s == t {
                trivial_queries += 1;
                continue;
            }
            if let Some(v) = self.cache.get(s, t) {
                cache_hits += 1;
                values[pos] = v;
                continue;
            }
            let key = (s.min(t), s.max(t));
            let slot = *miss_index.entry(key).or_insert_with(|| {
                misses.push((pos, (s, t)));
                misses.len() - 1
            });
            if misses[slot].0 == pos {
                resolve.push((pos, slot));
            } else {
                // Repeat of a pair already scheduled in this batch: counts as
                // a cache hit, exactly like the sequential executor.
                cache_hits += 1;
                resolve.push((pos, slot));
            }
        }

        let results: Vec<(usize, Result<f64, EstimatorError>)> = par::par_map_indexed(
            misses.len() as u64,
            0, // streams come from batch positions, not from this seed
            threads,
            |i, _| {
                let (pos, (s, t)) = misses[i as usize];
                let mut fork = estimator.fork(pos as u64);
                (pos, fork.estimate(s, t).map(|e| e.value))
            },
        );

        let mut slot_values = vec![0.0; misses.len()];
        let mut first_error: Option<(usize, EstimatorError)> = None;
        for (slot, (pos, result)) in results.into_iter().enumerate() {
            match result {
                Ok(value) => {
                    let (s, t) = misses[slot].1;
                    self.cache.insert(s, t, value);
                    slot_values[slot] = value;
                }
                Err(err) => {
                    if first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
                        first_error = Some((pos, err));
                    }
                }
            }
        }
        if let Some((_, err)) = first_error {
            return Err(err);
        }
        for (pos, slot) in resolve {
            values[pos] = slot_values[slot];
        }
        Ok(BatchReport {
            values,
            cache_hits,
            estimator_calls: misses.len() as u64,
            trivial_queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{Estimate, EstimatorError};

    /// Test double that returns `base + s + t` and counts invocations.
    struct Counting {
        calls: u64,
    }

    impl ResistanceEstimator for Counting {
        fn name(&self) -> &'static str {
            "COUNTING"
        }
        fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
            self.calls += 1;
            if s >= 1000 || t >= 1000 {
                return Err(EstimatorError::InvalidParameter {
                    name: "node",
                    message: "out of range in test double".into(),
                });
            }
            Ok(Estimate::with_value((s + t) as f64 / 100.0))
        }
    }

    #[test]
    fn repeats_and_symmetric_pairs_hit_the_cache() {
        let mut executor = BatchExecutor::new(16);
        let mut estimator = Counting { calls: 0 };
        let pairs = [(1, 2), (2, 1), (1, 2), (3, 4), (4, 4)];
        let report = executor.run(&mut estimator, &pairs).unwrap();
        assert_eq!(report.values.len(), 5);
        assert_eq!(report.estimator_calls, 2, "only (1,2) and (3,4) run");
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.trivial_queries, 1);
        assert_eq!(estimator.calls, 2);
        assert_eq!(report.values[0], report.values[1]);
        assert_eq!(report.values[4], 0.0);
        assert!((report.savings() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_persists_across_batches() {
        let mut executor = BatchExecutor::new(16);
        let mut estimator = Counting { calls: 0 };
        executor.run(&mut estimator, &[(5, 6), (7, 8)]).unwrap();
        let second = executor.run(&mut estimator, &[(6, 5), (9, 10)]).unwrap();
        assert_eq!(second.cache_hits, 1);
        assert_eq!(second.estimator_calls, 1);
        assert_eq!(estimator.calls, 3);
    }

    #[test]
    fn errors_propagate_but_answered_queries_stay_cached() {
        let mut executor = BatchExecutor::new(16);
        let mut estimator = Counting { calls: 0 };
        let result = executor.run(&mut estimator, &[(1, 2), (5000, 1), (3, 4)]);
        assert!(result.is_err());
        // (1, 2) was answered before the failure and is cached now.
        let retry = executor.run(&mut estimator, &[(1, 2)]).unwrap();
        assert_eq!(retry.cache_hits, 1);
        assert_eq!(retry.estimator_calls, 0);
    }

    /// Forkable test double whose value records which RNG stream served it,
    /// so the tests can verify stream assignment is position-based.
    #[derive(Clone)]
    struct Forky {
        stream: u64,
    }

    impl ResistanceEstimator for Forky {
        fn name(&self) -> &'static str {
            "FORKY"
        }
        fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
            if s >= 1000 || t >= 1000 {
                return Err(EstimatorError::InvalidParameter {
                    name: "node",
                    message: format!("out of range in test double ({s},{t})"),
                });
            }
            Ok(Estimate::with_value(
                (s + t) as f64 + self.stream as f64 / 1000.0,
            ))
        }
    }

    impl er_core::ForkableEstimator for Forky {
        fn fork(&self, stream: u64) -> Self {
            Forky { stream }
        }
    }

    #[test]
    fn parallel_batch_matches_reporting_and_is_thread_invariant() {
        let pairs = [(1, 2), (2, 1), (1, 2), (3, 4), (4, 4), (5, 6)];
        let run_at = |threads: usize| {
            let mut executor = BatchExecutor::new(16);
            executor
                .run_parallel(&Forky { stream: 0 }, &pairs, threads)
                .unwrap()
        };
        let base = run_at(1);
        assert_eq!(base.estimator_calls, 3, "(1,2), (3,4), (5,6)");
        assert_eq!(base.cache_hits, 2);
        assert_eq!(base.trivial_queries, 1);
        assert_eq!(base.values[4], 0.0);
        assert_eq!(base.values[0], base.values[1]);
        // Stream ids come from batch positions: (1,2) at position 0, (3,4) at 3.
        assert_eq!(base.values[0], 3.0);
        assert_eq!(base.values[3], 7.0 + 0.003);
        for threads in [2, 8] {
            assert_eq!(run_at(threads), base, "differs at {threads} threads");
        }
    }

    #[test]
    fn parallel_batch_reports_earliest_error_but_caches_successes() {
        let mut executor = BatchExecutor::new(16);
        let result = executor.run_parallel(&Forky { stream: 0 }, &[(1, 2), (5000, 1), (3, 4)], 4);
        assert!(result.is_err());
        // (1, 2) and (3, 4) were computed and cached despite the failure.
        let retry = executor
            .run_parallel(&Forky { stream: 0 }, &[(1, 2), (3, 4)], 4)
            .unwrap();
        assert_eq!(retry.cache_hits, 2);
        assert_eq!(retry.estimator_calls, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut executor = BatchExecutor::new(4);
        let mut estimator = Counting { calls: 0 };
        let report = executor.run(&mut estimator, &[]).unwrap();
        assert!(report.values.is_empty());
        assert_eq!(report.savings(), 0.0);
    }
}
