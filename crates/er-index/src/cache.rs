//! Bounded memoisation of answered queries.
//!
//! Real query workloads repeat pairs (recommendation candidates overlap,
//! robustness analyses re-rank the same edges); a small bounded cache in front
//! of any estimator removes that redundant work. Effective resistance is
//! symmetric, so the cache normalises `(s, t)` to `(min, max)` and serves both
//! orientations from one entry.

use er_graph::NodeId;
use std::collections::{HashMap, VecDeque};

/// A bounded FIFO cache of answered pairwise queries.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    values: HashMap<(NodeId, NodeId), f64>,
    insertion_order: VecDeque<(NodeId, NodeId)>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity: capacity.max(1),
            values: HashMap::new(),
            insertion_order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn key(s: NodeId, t: NodeId) -> (NodeId, NodeId) {
        if s <= t {
            (s, t)
        } else {
            (t, s)
        }
    }

    /// Looks up a pair, counting a hit or miss.
    pub fn get(&mut self, s: NodeId, t: NodeId) -> Option<f64> {
        match self.values.get(&Self::key(s, t)).copied() {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a pair *without* counting a hit or miss — for opportunistic
    /// probes (e.g. a coarser cache tier checking whether an exact tier
    /// already holds the answer) that must not skew this cache's statistics.
    pub fn peek(&self, s: NodeId, t: NodeId) -> Option<f64> {
        self.values.get(&Self::key(s, t)).copied()
    }

    /// Inserts (or overwrites) the value for a pair, evicting the oldest
    /// entry when full.
    pub fn insert(&mut self, s: NodeId, t: NodeId, value: f64) {
        let key = Self::key(s, t);
        if self.values.insert(key, value).is_none() {
            self.insertion_order.push_back(key);
            if self.values.len() > self.capacity {
                if let Some(oldest) = self.insertion_order.pop_front() {
                    self.values.remove(&oldest);
                }
            }
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups so far (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&mut self) {
        self.values.clear();
        self.insertion_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let mut cache = QueryCache::new(8);
        cache.insert(3, 7, 0.5);
        assert_eq!(cache.get(7, 3), Some(0.5));
        assert_eq!(cache.get(3, 7), Some(0.5));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn eviction_is_fifo_and_respects_capacity() {
        let mut cache = QueryCache::new(2);
        cache.insert(0, 1, 0.1);
        cache.insert(0, 2, 0.2);
        cache.insert(0, 3, 0.3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(0, 1), None, "oldest entry evicted");
        assert_eq!(cache.get(0, 2), Some(0.2));
        assert_eq!(cache.get(0, 3), Some(0.3));
    }

    #[test]
    fn overwriting_does_not_grow_the_cache() {
        let mut cache = QueryCache::new(4);
        cache.insert(1, 2, 0.5);
        cache.insert(2, 1, 0.75);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1, 2), Some(0.75));
    }

    #[test]
    fn statistics_and_clear() {
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
        cache.insert(0, 1, 1.0);
        cache.get(0, 1);
        cache.get(5, 6);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.hits(), 1, "statistics survive clear");
    }

    #[test]
    fn peek_serves_both_orientations_without_touching_statistics() {
        let mut cache = QueryCache::new(4);
        cache.insert(2, 9, 0.25);
        assert_eq!(cache.peek(9, 2), Some(0.25));
        assert_eq!(cache.peek(2, 9), Some(0.25));
        assert_eq!(cache.peek(0, 1), None);
        assert_eq!(cache.hits(), 0, "peek never counts a hit");
        assert_eq!(cache.misses(), 0, "peek never counts a miss");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let cache = QueryCache::new(0);
        assert_eq!(cache.capacity(), 1);
    }
}
