//! Error type shared by the indexing layer.

use er_core::EstimatorError;
use er_graph::GraphError;
use std::fmt;

/// Errors produced while building or querying an index.
#[derive(Debug)]
pub enum IndexError {
    /// The underlying graph is invalid for the requested operation
    /// (out-of-range node, disconnected, bipartite, …).
    Graph(GraphError),
    /// A wrapped per-query estimator failed.
    Estimator(EstimatorError),
    /// The requested index configuration is invalid.
    InvalidConfiguration {
        /// Parameter at fault.
        name: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The index would exceed its configured size budget.
    BudgetExceeded {
        /// Resource at fault ("memory", "landmarks", …).
        resource: &'static str,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Graph(e) => write!(f, "graph error: {e}"),
            IndexError::Estimator(e) => write!(f, "estimator error: {e}"),
            IndexError::InvalidConfiguration { name, message } => {
                write!(f, "invalid index configuration `{name}`: {message}")
            }
            IndexError::BudgetExceeded { resource, message } => {
                write!(f, "index budget exceeded ({resource}): {message}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Graph(e) => Some(e),
            IndexError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for IndexError {
    fn from(e: GraphError) -> Self {
        IndexError::Graph(e)
    }
}

impl From<EstimatorError> for IndexError {
    fn from(e: EstimatorError) -> Self {
        IndexError::Estimator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let g: IndexError = GraphError::NotConnected.into();
        assert!(g.to_string().contains("connected"));
        let c = IndexError::InvalidConfiguration {
            name: "landmarks",
            message: "must be positive".into(),
        };
        assert!(c.to_string().contains("landmarks"));
        let b = IndexError::BudgetExceeded {
            resource: "memory",
            message: "too many nodes".into(),
        };
        assert!(b.to_string().contains("memory"));
    }

    #[test]
    fn source_is_preserved_for_wrapped_errors() {
        use std::error::Error;
        let g: IndexError = GraphError::Empty.into();
        assert!(g.source().is_some());
        let c = IndexError::InvalidConfiguration {
            name: "k",
            message: String::new(),
        };
        assert!(c.source().is_none());
    }
}
