//! Effective resistance on an evolving graph.
//!
//! The paper's estimators assume a static graph plus a one-off spectral
//! preprocessing step (λ = max{|λ₂|, |λₙ|}). Applications such as anomaly
//! detection on time-evolving graphs (cited in the paper's introduction via
//! \[64\]) instead interleave edge insertions/deletions with queries.
//! [`DynamicEr`] keeps an editable edge set and refreshes its snapshot
//! (CSR graph + λ + [`GraphContext`]) *lazily and incrementally*:
//!
//! * mutations are O(log m) set updates mirrored into an
//!   [`OverlayGraph`](er_graph::OverlayGraph) (per-node sorted adjacency
//!   deltas over the previous snapshot's CSR), so a burst never rebuilds the
//!   CSR eagerly;
//! * the first query after a burst pays an **incremental refresh**: an
//!   `O(n + m)` overlay collapse (no global edge re-sort) plus a
//!   warm-started Lanczos run seeded with the previous refresh's Ritz
//!   vector — a third of the cold iteration budget;
//! * every [`refresh_interval`](DynamicEr::refresh_interval) mutations, the
//!   refresh is a **full rebuild** instead — the exact cold path
//!   (`GraphBuilder` + cold-start Lanczos), dropping all warm state — so
//!   drift from chained incremental refreshes is bounded by construction:
//!   the post-rebuild snapshot is bit-identical to a from-scratch one.
//!
//! The snapshot caches its [`GraphContext`], so `context()` is an Arc clone,
//! not a CSR copy.

use crate::error::IndexError;
use er_core::{ApproxConfig, GraphContext};
use er_graph::{Graph, GraphBuilder, NodeId, OverlayGraph};
use er_linalg::{spectral_bounds_warm, LaplacianSolver};
use std::collections::BTreeSet;
use std::sync::Arc;

/// An editable graph with lazily refreshed effective-resistance estimation.
pub struct DynamicEr {
    num_nodes: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
    config: ApproxConfig,
    lanczos_iterations: usize,
    /// Cached snapshot ([`GraphContext`]: graph Arc + λ), refreshed lazily.
    snapshot: Option<GraphContext>,
    /// The version the cached snapshot corresponds to.
    snapshot_version: u64,
    /// Editable view over the snapshot's CSR; tracks mutations between
    /// refreshes so the next refresh collapses deltas instead of re-sorting.
    overlay: Option<OverlayGraph>,
    /// Ritz vector from the previous Lanczos run, warm-starting the next
    /// incremental refresh. Dropped on full rebuilds (cold start).
    warm_ritz: Option<Vec<f64>>,
    /// Full rebuild every this many mutations (the drift cap K).
    refresh_interval: u64,
    mutations_since_full: u64,
    last_refresh_full: bool,
    version: u64,
    full_rebuilds: u64,
    incremental_refreshes: u64,
}

impl DynamicEr {
    /// Default drift cap: one full (bit-identical, cold-path) rebuild per
    /// this many mutations; refreshes in between are incremental.
    pub const DEFAULT_REFRESH_INTERVAL: u64 = 64;

    /// Creates a dynamic graph from an initial edge list.
    pub fn new(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        config: ApproxConfig,
    ) -> Self {
        let normalized = edges
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        DynamicEr {
            num_nodes,
            edges: normalized,
            config,
            lanczos_iterations: 120,
            snapshot: None,
            snapshot_version: 0,
            overlay: None,
            warm_ritz: None,
            refresh_interval: Self::DEFAULT_REFRESH_INTERVAL,
            mutations_since_full: 0,
            last_refresh_full: false,
            version: 0,
            full_rebuilds: 0,
            incremental_refreshes: 0,
        }
    }

    /// Creates a dynamic graph seeded from an existing static graph.
    pub fn from_graph(graph: &Graph, config: ApproxConfig) -> Self {
        Self::new(graph.num_nodes(), graph.edges(), config)
    }

    /// Sets the drift cap: a full cold-path rebuild every `interval`
    /// mutations (refreshes in between are incremental). `interval = 1`
    /// makes every refresh a full rebuild (the pre-incremental behaviour).
    pub fn with_refresh_interval(mut self, interval: u64) -> Self {
        self.refresh_interval = interval.max(1);
        self
    }

    /// The configured drift cap K.
    pub fn refresh_interval(&self) -> u64 {
        self.refresh_interval
    }

    /// Number of nodes (fixed for the lifetime of the structure).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Monotone counter bumped by every successful mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many times the snapshot (graph + λ) has been refreshed, full
    /// rebuilds and incremental refreshes combined.
    pub fn rebuilds(&self) -> u64 {
        self.full_rebuilds + self.incremental_refreshes
    }

    /// How many refreshes were full cold-path rebuilds (CSR from scratch +
    /// cold-start Lanczos; bit-identical to a fresh build).
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// How many refreshes were incremental (overlay collapse + warm-started
    /// Lanczos).
    pub fn incremental_refreshes(&self) -> u64 {
        self.incremental_refreshes
    }

    /// Mutations applied since the last full rebuild.
    pub fn mutations_since_full(&self) -> u64 {
        self.mutations_since_full
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&Self::key(u, v))
    }

    /// The editable overlay view of the current edge set, if a snapshot has
    /// been built. Mutations keep it current even while the snapshot is
    /// stale, so Sherman–Morrison callers can run a pre-mutation CG solve
    /// against it without materialising a CSR.
    pub fn overlay(&self) -> Option<&OverlayGraph> {
        self.overlay.as_ref()
    }

    fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), IndexError> {
        if v < self.num_nodes {
            Ok(())
        } else {
            Err(IndexError::Graph(er_graph::GraphError::NodeOutOfRange {
                node: v,
                n: self.num_nodes,
            }))
        }
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge was
    /// not already present (self-loops are rejected with `false`).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, IndexError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        let inserted = self.edges.insert(Self::key(u, v));
        if inserted {
            self.note_mutation(|overlay| {
                overlay.insert_edge(u, v);
            });
        }
        Ok(inserted)
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, IndexError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let removed = self.edges.remove(&Self::key(u, v));
        if removed {
            self.note_mutation(|overlay| {
                overlay.remove_edge(u, v);
            });
        }
        Ok(removed)
    }

    fn note_mutation(&mut self, apply: impl FnOnce(&mut OverlayGraph)) {
        self.version += 1;
        self.mutations_since_full += 1;
        if let Some(overlay) = &mut self.overlay {
            apply(overlay);
        }
    }

    fn ensure_snapshot(&mut self) -> Result<(), IndexError> {
        if self.snapshot.is_some() && self.snapshot_version == self.version {
            return Ok(());
        }
        let take_incremental_path = self
            .overlay
            .as_ref()
            .is_some_and(|_| self.mutations_since_full < self.refresh_interval);
        let context = if take_incremental_path {
            // Incremental refresh: O(n + m) overlay collapse (no global edge
            // sort) + warm-started Lanczos at a third of the cold budget.
            let graph = self.overlay.as_ref().expect("checked above").collapse();
            er_graph::analysis::validate_ergodic(&graph)?;
            let warm_budget = (self.lanczos_iterations / 3).max(12);
            let ((l2, ln), ritz) =
                spectral_bounds_warm(&graph, warm_budget, 0xd1a, self.warm_ritz.as_deref());
            let lambda = l2.abs().max(ln.abs()).clamp(1e-9, 1.0 - 1e-9);
            let context = GraphContext::with_lambda(graph, lambda)?;
            self.warm_ritz = ritz;
            self.incremental_refreshes += 1;
            self.last_refresh_full = false;
            context
        } else {
            // Full rebuild: the exact cold path, bit-identical to building a
            // fresh `DynamicEr` from the current edge set. All warm state is
            // dropped, so incremental drift cannot survive a full rebuild.
            let graph =
                GraphBuilder::from_edges(self.num_nodes, self.edges.iter().copied()).build()?;
            er_graph::analysis::validate_ergodic(&graph)?;
            let ((l2, ln), ritz) =
                spectral_bounds_warm(&graph, self.lanczos_iterations, 0xd1a, None);
            let lambda = l2.abs().max(ln.abs()).clamp(1e-9, 1.0 - 1e-9);
            let context = GraphContext::with_lambda(graph, lambda)?;
            self.warm_ritz = ritz;
            self.mutations_since_full = 0;
            self.full_rebuilds += 1;
            self.last_refresh_full = true;
            context
        };
        self.overlay = Some(OverlayGraph::new(Arc::clone(context.graph_arc())));
        self.snapshot = Some(context);
        self.snapshot_version = self.version;
        Ok(())
    }

    /// Whether the most recent snapshot refresh was a full rebuild (`true`)
    /// rather than an incremental one. Callers use it after a refresh to
    /// decide whether Sherman–Morrison-carried state must be dropped to
    /// preserve the bit-identity contract.
    pub fn last_refresh_was_full(&self) -> bool {
        self.last_refresh_full
    }

    /// The current graph snapshot (refreshing it if needed).
    pub fn graph(&mut self) -> Result<&Graph, IndexError> {
        self.ensure_snapshot()?;
        Ok(self.snapshot.as_ref().expect("just ensured").graph())
    }

    /// A [`GraphContext`] for the current snapshot. The context is cached
    /// inside the snapshot, so this is an Arc clone (reference-count bump),
    /// not a CSR copy. Approximate queries go through the service layer
    /// (`er_service::DynamicResistanceService`), which holds one of these per
    /// snapshot version; this structure itself only manages the evolving
    /// edge set.
    pub fn context(&mut self) -> Result<GraphContext, IndexError> {
        self.ensure_snapshot()?;
        Ok(self.snapshot.as_ref().expect("just ensured").clone())
    }

    /// The estimator configuration queries on this graph should use.
    pub fn config(&self) -> ApproxConfig {
        self.config
    }

    /// Exact resistance on the current graph (CG solve), for callers that
    /// want ground truth after a mutation burst.
    pub fn resistance_exact(&mut self, s: NodeId, t: NodeId) -> Result<f64, IndexError> {
        self.check_node(s)?;
        self.check_node(t)?;
        self.ensure_snapshot()?;
        let graph = self.snapshot.as_ref().expect("just ensured").graph();
        Ok(LaplacianSolver::for_ground_truth(graph).effective_resistance(s, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn base_config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.05,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn inserting_edges_never_increases_resistance() {
        // Rayleigh monotonicity: adding an edge can only decrease r(s, t).
        let g = generators::social_network_like(200, 6.0, 1).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let before = dynamic.resistance_exact(3, 150).unwrap();
        assert!(dynamic.insert_edge(3, 150).unwrap());
        let after = dynamic.resistance_exact(3, 150).unwrap();
        assert!(
            after < before,
            "adding the direct edge must lower r: {after} vs {before}"
        );
        assert!(after <= 1.0 + 1e-9, "edge endpoints have r <= 1");
    }

    #[test]
    fn removing_edges_never_decreases_resistance() {
        let g = generators::complete(20).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let before = dynamic.resistance_exact(0, 1).unwrap();
        assert!(dynamic.remove_edge(0, 1).unwrap());
        let after = dynamic.resistance_exact(0, 1).unwrap();
        assert!(after > before);
    }

    #[test]
    fn context_tracks_exact_values_across_mutations() {
        let g = generators::social_network_like(300, 10.0, 7).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let exact_before = dynamic.resistance_exact(5, 200).unwrap();
        let ctx = dynamic.context().unwrap();
        assert_eq!(ctx.graph().num_edges(), g.num_edges());
        dynamic.insert_edge(5, 200).unwrap();
        let exact_after = dynamic.resistance_exact(5, 200).unwrap();
        assert!(exact_after < exact_before, "Rayleigh monotonicity");
        let ctx = dynamic.context().unwrap();
        assert_eq!(ctx.graph().num_edges(), g.num_edges() + 1);
        assert_eq!(dynamic.config().epsilon, base_config().epsilon);
    }

    #[test]
    fn snapshot_is_rebuilt_lazily() {
        let g = generators::complete(30).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        assert_eq!(dynamic.rebuilds(), 0);
        dynamic.resistance_exact(0, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 1);
        dynamic.resistance_exact(1, 6).unwrap();
        assert_eq!(dynamic.rebuilds(), 1, "no mutation, no rebuild");
        dynamic.insert_edge(0, 1).unwrap_or(false);
        dynamic.remove_edge(2, 3).unwrap();
        dynamic.remove_edge(4, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 1, "mutations alone do not rebuild");
        dynamic.resistance_exact(0, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 2, "one rebuild for the whole burst");
    }

    #[test]
    fn refreshes_are_incremental_until_the_drift_cap() {
        let g = generators::social_network_like(100, 6.0, 2).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config()).with_refresh_interval(3);
        dynamic.context().unwrap();
        assert_eq!(dynamic.full_rebuilds(), 1, "first build is always full");
        assert_eq!(dynamic.incremental_refreshes(), 0);

        // One mutation -> refresh is incremental (1 < K = 3).
        dynamic.insert_edge(0, 50).unwrap();
        dynamic.context().unwrap();
        assert_eq!(dynamic.incremental_refreshes(), 1);
        assert!(!dynamic.last_refresh_was_full());

        // Two more mutations reach the cap -> full rebuild, counter resets.
        dynamic.insert_edge(1, 51).unwrap();
        dynamic.insert_edge(2, 52).unwrap();
        dynamic.context().unwrap();
        assert_eq!(dynamic.full_rebuilds(), 2);
        assert_eq!(dynamic.incremental_refreshes(), 1);
        assert!(dynamic.last_refresh_was_full());
        assert_eq!(dynamic.mutations_since_full(), 0);
    }

    #[test]
    fn incremental_snapshot_matches_full_rebuild_answers() {
        // The incremental path (overlay collapse + warm Lanczos) must agree
        // with a from-scratch DynamicEr on the same edge set: identical CSR
        // (exact resistances bit-equal) and a λ within Lanczos accuracy.
        let g = generators::social_network_like(300, 8.0, 5).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config()).with_refresh_interval(1000);
        dynamic.context().unwrap();
        dynamic.insert_edge(7, 200).unwrap();
        dynamic.insert_edge(40, 180).unwrap();
        dynamic.remove_edge(7, 200).unwrap();
        let incremental_r = dynamic.resistance_exact(12, 250).unwrap();
        assert!(dynamic.incremental_refreshes() >= 1);
        let incremental_lambda = dynamic.context().unwrap().lambda();

        let mut fresh = DynamicEr::new(
            300,
            dynamic.edges.iter().copied().collect::<Vec<_>>(),
            base_config(),
        );
        let fresh_r = fresh.resistance_exact(12, 250).unwrap();
        assert_eq!(
            incremental_r.to_bits(),
            fresh_r.to_bits(),
            "collapsed CSR must match the rebuilt CSR exactly"
        );
        let fresh_lambda = fresh.context().unwrap().lambda();
        assert!(
            (incremental_lambda - fresh_lambda).abs() < 1e-6,
            "warm λ {incremental_lambda} vs cold λ {fresh_lambda}"
        );
    }

    #[test]
    fn context_is_cached_per_version_not_copied_per_call() {
        let g = generators::complete(30).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let a = dynamic.context().unwrap();
        let b = dynamic.context().unwrap();
        assert!(
            std::sync::Arc::ptr_eq(a.graph_arc(), b.graph_arc()),
            "repeat context() calls share one graph Arc"
        );
        dynamic.insert_edge(0, 1).unwrap_or(false);
        dynamic.remove_edge(2, 3).unwrap();
        let c = dynamic.context().unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(a.graph_arc(), c.graph_arc()),
            "mutations produce a fresh snapshot graph"
        );
    }

    #[test]
    fn mutation_bookkeeping_and_validation() {
        let mut dynamic = DynamicEr::new(
            5,
            vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
            base_config(),
        );
        assert_eq!(dynamic.num_edges(), 6);
        assert!(dynamic.has_edge(1, 0));
        assert!(!dynamic.insert_edge(0, 1).unwrap(), "already present");
        assert!(!dynamic.insert_edge(3, 3).unwrap(), "self-loop rejected");
        assert!(!dynamic.remove_edge(0, 4).unwrap(), "absent edge");
        assert!(dynamic.insert_edge(0, 9).is_err(), "out of range");
        let v = dynamic.version();
        assert!(dynamic.insert_edge(0, 3).unwrap());
        assert_eq!(dynamic.version(), v + 1);
    }

    #[test]
    fn disconnecting_the_graph_is_reported() {
        let mut dynamic = DynamicEr::new(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)], base_config());
        assert!(dynamic.resistance_exact(0, 3).is_ok());
        dynamic.remove_edge(2, 3).unwrap();
        assert!(matches!(
            dynamic.resistance_exact(0, 3),
            Err(IndexError::Graph(_))
        ));
        // Reconnecting recovers; the failed refresh did not corrupt state.
        dynamic.insert_edge(0, 3).unwrap();
        assert!(dynamic.resistance_exact(0, 3).is_ok());
    }

    #[test]
    fn overlay_stays_current_between_refreshes() {
        let g = generators::social_network_like(80, 6.0, 3).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config()).with_refresh_interval(1000);
        assert!(dynamic.overlay().is_none(), "no snapshot yet");
        dynamic.context().unwrap();
        dynamic.insert_edge(0, 40).unwrap();
        let removed = {
            let overlay = dynamic.overlay().unwrap();
            assert!(overlay.has_edge(0, 40), "overlay sees pending mutations");
            overlay.neighbors(5)[0]
        };
        dynamic.remove_edge(5, removed).unwrap();
        assert!(!dynamic.overlay().unwrap().has_edge(5, removed));
        // After a refresh the overlay is rebased over the new snapshot.
        dynamic.context().unwrap();
        let overlay = dynamic.overlay().unwrap();
        assert!(overlay.is_clean());
        assert!(overlay.has_edge(0, 40));
    }
}
