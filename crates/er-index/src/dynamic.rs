//! Effective resistance on an evolving graph.
//!
//! The paper's estimators assume a static graph plus a one-off spectral
//! preprocessing step (λ = max{|λ₂|, |λₙ|}). Applications such as anomaly
//! detection on time-evolving graphs (cited in the paper's introduction via
//! \[64\]) instead interleave edge insertions/deletions with queries.
//! [`DynamicEr`] keeps an editable edge set and rebuilds the CSR snapshot and
//! its spectral preprocessing *lazily*: mutations are O(log m) set updates,
//! and the first query after a burst of mutations pays the rebuild once.

use crate::error::IndexError;
use er_core::{ApproxConfig, GraphContext};
use er_graph::{Graph, GraphBuilder, NodeId};
use er_linalg::{spectral_bounds, LaplacianSolver};
use std::collections::BTreeSet;

/// An editable graph with lazily refreshed effective-resistance estimation.
pub struct DynamicEr {
    num_nodes: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
    config: ApproxConfig,
    lanczos_iterations: usize,
    /// Cached snapshot (graph + λ), invalidated by mutations.
    snapshot: Option<(Graph, f64)>,
    version: u64,
    rebuilds: u64,
}

impl DynamicEr {
    /// Creates a dynamic graph from an initial edge list.
    pub fn new(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        config: ApproxConfig,
    ) -> Self {
        let normalized = edges
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        DynamicEr {
            num_nodes,
            edges: normalized,
            config,
            lanczos_iterations: 120,
            snapshot: None,
            version: 0,
            rebuilds: 0,
        }
    }

    /// Creates a dynamic graph seeded from an existing static graph.
    pub fn from_graph(graph: &Graph, config: ApproxConfig) -> Self {
        Self::new(graph.num_nodes(), graph.edges(), config)
    }

    /// Number of nodes (fixed for the lifetime of the structure).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Monotone counter bumped by every successful mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many times the snapshot (graph + λ) has been rebuilt.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&Self::key(u, v))
    }

    fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), IndexError> {
        if v < self.num_nodes {
            Ok(())
        } else {
            Err(IndexError::Graph(er_graph::GraphError::NodeOutOfRange {
                node: v,
                n: self.num_nodes,
            }))
        }
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge was
    /// not already present (self-loops are rejected with `false`).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, IndexError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(false);
        }
        let inserted = self.edges.insert(Self::key(u, v));
        if inserted {
            self.version += 1;
            self.snapshot = None;
        }
        Ok(inserted)
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, IndexError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let removed = self.edges.remove(&Self::key(u, v));
        if removed {
            self.version += 1;
            self.snapshot = None;
        }
        Ok(removed)
    }

    fn ensure_snapshot(&mut self) -> Result<(), IndexError> {
        if self.snapshot.is_none() {
            let graph =
                GraphBuilder::from_edges(self.num_nodes, self.edges.iter().copied()).build()?;
            er_graph::analysis::validate_ergodic(&graph)?;
            let (l2, ln) = spectral_bounds(&graph, self.lanczos_iterations, 0xd1a);
            let lambda = l2.abs().max(ln.abs()).clamp(1e-9, 1.0 - 1e-9);
            self.snapshot = Some((graph, lambda));
            self.rebuilds += 1;
        }
        Ok(())
    }

    /// The current graph snapshot (rebuilding it if needed).
    pub fn graph(&mut self) -> Result<&Graph, IndexError> {
        self.ensure_snapshot()?;
        Ok(&self.snapshot.as_ref().expect("just ensured").0)
    }

    /// A [`GraphContext`] for the current snapshot, re-using the cached
    /// spectral preprocessing. Approximate queries go through the service
    /// layer (`er_service::DynamicResistanceService`), which holds one of
    /// these per snapshot version; this structure itself only manages the
    /// evolving edge set.
    pub fn context(&mut self) -> Result<GraphContext, IndexError> {
        self.ensure_snapshot()?;
        let (graph, lambda) = self.snapshot.as_ref().expect("just ensured");
        Ok(GraphContext::with_lambda(graph, *lambda)?)
    }

    /// The estimator configuration queries on this graph should use.
    pub fn config(&self) -> ApproxConfig {
        self.config
    }

    /// Exact resistance on the current graph (CG solve), for callers that
    /// want ground truth after a mutation burst.
    pub fn resistance_exact(&mut self, s: NodeId, t: NodeId) -> Result<f64, IndexError> {
        self.check_node(s)?;
        self.check_node(t)?;
        self.ensure_snapshot()?;
        let (graph, _) = self.snapshot.as_ref().expect("just ensured");
        Ok(LaplacianSolver::for_ground_truth(graph).effective_resistance(s, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn base_config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.05,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn inserting_edges_never_increases_resistance() {
        // Rayleigh monotonicity: adding an edge can only decrease r(s, t).
        let g = generators::social_network_like(200, 6.0, 1).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let before = dynamic.resistance_exact(3, 150).unwrap();
        assert!(dynamic.insert_edge(3, 150).unwrap());
        let after = dynamic.resistance_exact(3, 150).unwrap();
        assert!(
            after < before,
            "adding the direct edge must lower r: {after} vs {before}"
        );
        assert!(after <= 1.0 + 1e-9, "edge endpoints have r <= 1");
    }

    #[test]
    fn removing_edges_never_decreases_resistance() {
        let g = generators::complete(20).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let before = dynamic.resistance_exact(0, 1).unwrap();
        assert!(dynamic.remove_edge(0, 1).unwrap());
        let after = dynamic.resistance_exact(0, 1).unwrap();
        assert!(after > before);
    }

    #[test]
    fn context_tracks_exact_values_across_mutations() {
        let g = generators::social_network_like(300, 10.0, 7).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        let exact_before = dynamic.resistance_exact(5, 200).unwrap();
        let ctx = dynamic.context().unwrap();
        assert_eq!(ctx.graph().num_edges(), g.num_edges());
        dynamic.insert_edge(5, 200).unwrap();
        let exact_after = dynamic.resistance_exact(5, 200).unwrap();
        assert!(exact_after < exact_before, "Rayleigh monotonicity");
        let ctx = dynamic.context().unwrap();
        assert_eq!(ctx.graph().num_edges(), g.num_edges() + 1);
        assert_eq!(dynamic.config().epsilon, base_config().epsilon);
    }

    #[test]
    fn snapshot_is_rebuilt_lazily() {
        let g = generators::complete(30).unwrap();
        let mut dynamic = DynamicEr::from_graph(&g, base_config());
        assert_eq!(dynamic.rebuilds(), 0);
        dynamic.resistance_exact(0, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 1);
        dynamic.resistance_exact(1, 6).unwrap();
        assert_eq!(dynamic.rebuilds(), 1, "no mutation, no rebuild");
        dynamic.insert_edge(0, 1).unwrap_or(false);
        dynamic.remove_edge(2, 3).unwrap();
        dynamic.remove_edge(4, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 1, "mutations alone do not rebuild");
        dynamic.resistance_exact(0, 5).unwrap();
        assert_eq!(dynamic.rebuilds(), 2, "one rebuild for the whole burst");
    }

    #[test]
    fn mutation_bookkeeping_and_validation() {
        let mut dynamic = DynamicEr::new(
            5,
            vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
            base_config(),
        );
        assert_eq!(dynamic.num_edges(), 6);
        assert!(dynamic.has_edge(1, 0));
        assert!(!dynamic.insert_edge(0, 1).unwrap(), "already present");
        assert!(!dynamic.insert_edge(3, 3).unwrap(), "self-loop rejected");
        assert!(!dynamic.remove_edge(0, 4).unwrap(), "absent edge");
        assert!(dynamic.insert_edge(0, 9).is_err(), "out of range");
        let v = dynamic.version();
        assert!(dynamic.insert_edge(0, 3).unwrap());
        assert_eq!(dynamic.version(), v + 1);
    }

    #[test]
    fn disconnecting_the_graph_is_reported() {
        let mut dynamic = DynamicEr::new(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)], base_config());
        assert!(dynamic.resistance_exact(0, 3).is_ok());
        dynamic.remove_edge(2, 3).unwrap();
        assert!(matches!(
            dynamic.resistance_exact(0, 3),
            Err(IndexError::Graph(_))
        ));
    }
}
