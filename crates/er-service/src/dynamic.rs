//! The query plane over an evolving graph.
//!
//! [`DynamicEr`] (er-index) manages an editable edge set with lazily rebuilt
//! spectral preprocessing; [`DynamicResistanceService`] puts a
//! [`ResistanceService`] in front of it, rebuilding the service — planner
//! state, cache tier, memoized backends — once per mutation burst. Queries
//! between mutations reuse everything; the first query after a mutation pays
//! the rebuild once, exactly like the snapshot underneath.

use crate::error::ServiceError;
use crate::query::{Query, Request};
use crate::response::Response;
use crate::service::ResistanceService;
use er_core::ApproxConfig;
use er_graph::{Graph, NodeId};
use er_index::DynamicEr;

/// A [`ResistanceService`] over an editable graph.
///
/// ```
/// use er_service::DynamicResistanceService;
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(200, 8.0, 3).unwrap();
/// let mut dynamic = DynamicResistanceService::from_graph(&graph, Default::default());
/// let before = dynamic.resistance(0, 100).unwrap();
/// dynamic.insert_edge(0, 100).unwrap();
/// let after = dynamic.resistance(0, 100).unwrap();
/// assert!(after < before, "Rayleigh monotonicity");
/// ```
pub struct DynamicResistanceService {
    dynamic: DynamicEr,
    config: ApproxConfig,
    /// The service for snapshot `version`, rebuilt when the version moves.
    service: Option<(u64, ResistanceService)>,
}

impl DynamicResistanceService {
    /// Creates a dynamic service from an initial edge list.
    pub fn new(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        config: ApproxConfig,
    ) -> Self {
        DynamicResistanceService {
            dynamic: DynamicEr::new(num_nodes, edges, config),
            config,
            service: None,
        }
    }

    /// Creates a dynamic service seeded from an existing static graph.
    pub fn from_graph(graph: &Graph, config: ApproxConfig) -> Self {
        Self::new(graph.num_nodes(), graph.edges(), config)
    }

    /// Inserts the undirected edge `{u, v}` (see [`DynamicEr::insert_edge`]).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, ServiceError> {
        Ok(self.dynamic.insert_edge(u, v)?)
    }

    /// Removes the undirected edge `{u, v}` (see [`DynamicEr::remove_edge`]).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, ServiceError> {
        Ok(self.dynamic.remove_edge(u, v)?)
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.dynamic.has_edge(u, v)
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.dynamic.num_edges()
    }

    /// Monotone counter bumped by every successful mutation.
    pub fn version(&self) -> u64 {
        self.dynamic.version()
    }

    /// How many service rebuilds queries have paid for so far.
    pub fn rebuilds(&self) -> u64 {
        self.dynamic.rebuilds()
    }

    /// The service for the current snapshot, rebuilding it if a mutation
    /// happened since the last query.
    ///
    /// This is the *only* `&mut` left on the query path: it guards the
    /// rebuild-on-stale check. The returned service itself answers through
    /// `&self`, so callers that pin a snapshot can fan queries out across
    /// threads (or spawn a [`crate::ResistanceServer`] over a clone of the
    /// snapshot's context).
    pub fn service(&mut self) -> Result<&ResistanceService, ServiceError> {
        let version = self.dynamic.version();
        let stale = !matches!(&self.service, Some((v, _)) if *v == version);
        if stale {
            let context = self.dynamic.context()?;
            self.service = Some((
                version,
                ResistanceService::from_context(context, self.config),
            ));
        }
        Ok(&self.service.as_ref().expect("rebuilt above").1)
    }

    /// Submits a request against the current snapshot (`&mut` only for the
    /// possible rebuild; the submit itself is `&self`).
    pub fn submit(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.service()?.submit(request)
    }

    /// One ε-approximate pair query at the configured accuracy.
    pub fn resistance(&mut self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        let accuracy = self.config.into();
        Ok(self
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))?
            .value())
    }

    /// Exact resistance on the current snapshot (CG solve), for callers that
    /// want ground truth after a mutation burst.
    pub fn resistance_exact(&mut self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        Ok(self.dynamic.resistance_exact(s, t)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.05,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn approximate_queries_track_exact_values_across_mutations() {
        let g = generators::social_network_like(300, 10.0, 7).unwrap();
        let mut dynamic = DynamicResistanceService::from_graph(&g, config());
        let approx = dynamic.resistance(5, 200).unwrap();
        let exact = dynamic.resistance_exact(5, 200).unwrap();
        assert!((approx - exact).abs() <= config().epsilon);
        dynamic.insert_edge(5, 200).unwrap();
        dynamic.insert_edge(5, 201).unwrap();
        let approx = dynamic.resistance(5, 200).unwrap();
        let exact = dynamic.resistance_exact(5, 200).unwrap();
        assert!((approx - exact).abs() <= config().epsilon);
        assert!(dynamic.has_edge(5, 201));
    }

    #[test]
    fn service_is_rebuilt_once_per_mutation_burst() {
        let g = generators::complete(30).unwrap();
        let mut dynamic = DynamicResistanceService::from_graph(&g, config());
        dynamic.resistance(0, 5).unwrap();
        let first = dynamic.version();
        // Same version: the service (and its cache) is reused — a repeat of
        // the query is a cache hit, not a recomputation.
        let repeat = dynamic
            .submit(&Request::new(Query::pair(0, 5)).with_accuracy(config().into()))
            .unwrap();
        assert_eq!(repeat.backend_calls, 0, "served from the cache tier");
        dynamic.insert_edge(0, 9).unwrap_or(false);
        dynamic.remove_edge(2, 3).unwrap();
        assert!(dynamic.version() > first);
        // After the burst, the next query rebuilds and recomputes.
        let fresh = dynamic
            .submit(&Request::new(Query::pair(0, 5)).with_accuracy(config().into()))
            .unwrap();
        assert_eq!(fresh.backend_calls, 1, "cache was dropped with the rebuild");
    }

    #[test]
    fn mutations_change_answers_in_the_right_direction() {
        let g = generators::social_network_like(200, 8.0, 1).unwrap();
        let mut dynamic = DynamicResistanceService::from_graph(&g, config());
        let before = dynamic.resistance(3, 150).unwrap();
        dynamic.insert_edge(3, 150).unwrap();
        let after = dynamic.resistance(3, 150).unwrap();
        assert!(after < before + config().epsilon);
        assert!(
            after <= 1.0 + config().epsilon,
            "edge endpoints have r <= 1"
        );
    }
}
