//! The query plane over an evolving graph.
//!
//! [`DynamicEr`] (er-index) manages an editable edge set with incrementally
//! refreshed spectral preprocessing; [`DynamicResistanceService`] puts a
//! [`ResistanceService`] in front of it with two mechanisms the static stack
//! does not need:
//!
//! * **Epoch swap.** The live service is an `Arc<ServiceEpoch>` held in a
//!   swap slot. Queries clone the `Arc` and answer on it; mutations advance
//!   a version counter, and the *next* query that finds the slot stale
//!   installs a fresh epoch. Readers pinned on the old `Arc` keep answering
//!   old-version bits; nobody blocks on a mutation burst — if the updater
//!   lock is busy, a query simply serves the previous epoch.
//! * **Sherman–Morrison carry.** When the current epoch has built INDEX
//!   state (the resident L⁺ diagonal and columns, plus any landmark
//!   distance table), each edge mutation advances that state in `O(n)` per
//!   resident vector via [`RankOneUpdate`] instead of discarding it. The
//!   next epoch is then assembled around the carried state, so mid-burst
//!   refreshes never re-run the `O(n·solves)` index build. Every K-th
//!   snapshot refresh is a full cold rebuild (see
//!   [`DynamicEr::with_refresh_interval`]) that drops the carried state:
//!   post-refresh answers are bit-identical to a cold rebuild, and drift
//!   between refreshes is bounded by the K-interval.
//!
//! Deletions whose Sherman–Morrison denominator `1 − r(u, v)` is too small
//! (bridges and near-bridges) refuse the rank-1 path: the carried state is
//! dropped and the next refresh re-solves with CG ([`cg_fallbacks`]
//! counts these).
//!
//! [`cg_fallbacks`]: DynamicResistanceService::cg_fallbacks

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::backend::{IndexBackend, LandmarkBackend};
use crate::error::ServiceError;
use crate::query::{Query, Request};
use crate::response::Response;
use crate::service::ResistanceService;
use er_core::ApproxConfig;
use er_graph::{Graph, NodeId};
use er_index::{DynamicEr, LandmarkIndex};
use er_linalg::{solve_overlay_laplacian, RankOneUpdate};

/// Deletion denominator floor for *carried-state* updates. Looser than
/// [`er_linalg::MIN_DELETE_DENOMINATOR`]: carried state is advanced through
/// many chained updates, so we bail to a CG re-solve earlier than a one-shot
/// update would need to.
const CARRIED_DELETE_FLOOR: f64 = 1e-3;

/// CG tolerance used when the update vector `w = L⁺(e_u − e_v)` has to be
/// solved fresh (endpoint columns not resident).
const UPDATE_SOLVE_TOLERANCE: f64 = 1e-8;

/// One immutable snapshot of the serving stack: the service plus the graph
/// version it was built for. Readers that clone the `Arc` keep a consistent
/// view for as long as they hold it, regardless of concurrent mutations.
pub struct ServiceEpoch {
    version: u64,
    service: ResistanceService,
}

impl ServiceEpoch {
    /// The [`DynamicResistanceService::version`] this epoch serves.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The immutable service for this epoch.
    pub fn service(&self) -> &ResistanceService {
        &self.service
    }
}

/// INDEX-tier state carried across mutations via Sherman–Morrison.
struct CarriedState {
    /// Resident L⁺ diagonal (length `n`).
    diagonal: Vec<f64>,
    /// Resident L⁺ columns, keyed by source node.
    columns: Vec<(NodeId, Vec<f64>)>,
    /// Column-cache capacity of the harvested backend.
    column_capacity: usize,
    /// Solve count the harvested backend reported (for cost accounting).
    build_solves: u64,
    /// Landmark ids and their *resistance* rows `r(landmark, v)` (squared
    /// back from the stored `√r` so [`RankOneUpdate::apply_resistance`]
    /// applies directly).
    landmarks: Option<(Vec<NodeId>, Vec<Vec<f64>>)>,
    /// Whether the state came from an exact-solve build (harvested from a
    /// live epoch) and may be re-installed into the next epoch. Seeded
    /// benchmark state (`seed_index_state`) is maintained and measured but
    /// never installed.
    exact: bool,
}

/// The single-writer side: the editable graph plus carried state and
/// counters. Guarded by `DynamicResistanceService::inner`.
struct Updater {
    dynamic: DynamicEr,
    carried: Option<CarriedState>,
    sm_updates: u64,
    cg_fallbacks: u64,
    service_refreshes: u64,
}

/// A [`ResistanceService`] over an editable graph, epoch-swapped so queries
/// never block on mutations.
///
/// All methods take `&self`: mutations serialize on an internal updater
/// lock, queries clone the current [`ServiceEpoch`] `Arc` and answer on it.
///
/// ```
/// use er_service::DynamicResistanceService;
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(200, 8.0, 3).unwrap();
/// let dynamic = DynamicResistanceService::from_graph(&graph, Default::default());
/// let before = dynamic.resistance(0, 100).unwrap();
/// dynamic.insert_edge(0, 100).unwrap();
/// let after = dynamic.resistance(0, 100).unwrap();
/// assert!(after < before, "Rayleigh monotonicity");
/// ```
pub struct DynamicResistanceService {
    config: ApproxConfig,
    /// Mirror of `dynamic.version()`, readable without the updater lock.
    version: AtomicU64,
    inner: Mutex<Updater>,
    /// The swap slot. Held only long enough to clone or replace the `Arc`.
    epoch: Mutex<Option<Arc<ServiceEpoch>>>,
}

impl DynamicResistanceService {
    /// Creates a dynamic service from an initial edge list.
    pub fn new(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        config: ApproxConfig,
    ) -> Self {
        DynamicResistanceService {
            config,
            version: AtomicU64::new(0),
            inner: Mutex::new(Updater {
                dynamic: DynamicEr::new(num_nodes, edges, config),
                carried: None,
                sm_updates: 0,
                cg_fallbacks: 0,
                service_refreshes: 0,
            }),
            epoch: Mutex::new(None),
        }
    }

    /// Creates a dynamic service seeded from an existing static graph.
    pub fn from_graph(graph: &Graph, config: ApproxConfig) -> Self {
        Self::new(graph.num_nodes(), graph.edges(), config)
    }

    /// Full cold rebuild every `interval` mutations (see
    /// [`DynamicEr::with_refresh_interval`]); intermediate refreshes are
    /// incremental.
    pub fn with_refresh_interval(self, interval: u64) -> Self {
        let DynamicResistanceService {
            config,
            version,
            inner,
            epoch,
        } = self;
        let Updater {
            dynamic,
            carried,
            sm_updates,
            cg_fallbacks,
            service_refreshes,
        } = inner.into_inner().expect("updater lock poisoned");
        DynamicResistanceService {
            config,
            version,
            inner: Mutex::new(Updater {
                dynamic: dynamic.with_refresh_interval(interval),
                carried,
                sm_updates,
                cg_fallbacks,
                service_refreshes,
            }),
            epoch,
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, Updater> {
        self.inner.lock().expect("updater lock poisoned")
    }

    fn lock_epoch(&self) -> MutexGuard<'_, Option<Arc<ServiceEpoch>>> {
        self.epoch.lock().expect("epoch slot poisoned")
    }

    /// Inserts the undirected edge `{u, v}` (see [`DynamicEr::insert_edge`]).
    pub fn insert_edge(&self, u: NodeId, v: NodeId) -> Result<bool, ServiceError> {
        self.mutate(u, v, true)
    }

    /// Removes the undirected edge `{u, v}` (see [`DynamicEr::remove_edge`]).
    pub fn remove_edge(&self, u: NodeId, v: NodeId) -> Result<bool, ServiceError> {
        self.mutate(u, v, false)
    }

    fn mutate(&self, u: NodeId, v: NodeId, insert: bool) -> Result<bool, ServiceError> {
        let mut inner = self.lock_inner();
        let n = inner.dynamic.num_nodes();
        let will_change = u < n && v < n && u != v && (insert != inner.dynamic.has_edge(u, v));
        if will_change {
            self.harvest_carried(&mut inner);
            let update = self.prepare_update(&mut inner, u, v, insert);
            let changed = if insert {
                inner.dynamic.insert_edge(u, v)?
            } else {
                inner.dynamic.remove_edge(u, v)?
            };
            debug_assert!(changed);
            self.apply_carried_update(&mut inner, update);
            self.version
                .store(inner.dynamic.version(), Ordering::Release);
            Ok(changed)
        } else {
            // No-ops and out-of-range arguments keep DynamicEr's semantics
            // (Ok(false) / Err) and touch no serving state.
            Ok(if insert {
                inner.dynamic.insert_edge(u, v)?
            } else {
                inner.dynamic.remove_edge(u, v)?
            })
        }
    }

    /// Harvests INDEX-tier state from the installed epoch, if that epoch is
    /// current (pre-mutation) and nothing is carried yet. Harvested state is
    /// exact-solve grade, so it may be re-installed into later epochs.
    fn harvest_carried(&self, inner: &mut Updater) {
        if inner.carried.is_some() {
            return;
        }
        let epoch = match self.lock_epoch().clone() {
            Some(epoch) if epoch.version() == inner.dynamic.version() => epoch,
            _ => return,
        };
        let Some(index) = epoch.service().index_backend() else {
            return;
        };
        let landmarks = epoch.service().landmark_backend().map(|backend| {
            let index = backend.index();
            let ids = index.landmarks().to_vec();
            let n = index.num_nodes();
            let rows = (0..ids.len())
                .map(|j| {
                    (0..n)
                        .map(|v| {
                            let s = index.sqrt_resistance(j, v);
                            s * s
                        })
                        .collect()
                })
                .collect();
            (ids, rows)
        });
        inner.carried = Some(CarriedState {
            diagonal: index.diagonal().to_vec(),
            columns: index.resident_columns(),
            column_capacity: index.column_capacity(),
            build_solves: index.build_solves(),
            landmarks,
            exact: true,
        });
    }

    /// Prepares the Sherman–Morrison update for the *pre-mutation* graph.
    /// Returns `None` (after dropping the carried state) when the rank-1
    /// path is unsafe: a (near-)bridge deletion, or a `w`-solve that did not
    /// converge. With nothing carried there is nothing to update.
    fn prepare_update(
        &self,
        inner: &mut Updater,
        u: NodeId,
        v: NodeId,
        insert: bool,
    ) -> Option<RankOneUpdate> {
        inner.carried.as_ref()?;
        let w = self.update_vector(inner, u, v);
        let update = match w {
            Some(w) if insert => Some(RankOneUpdate::for_insert(w, u, v)),
            Some(w) => RankOneUpdate::for_delete(w, u, v, CARRIED_DELETE_FLOOR),
            None => None,
        };
        if update.is_none() {
            // The carried state can no longer be advanced safely; drop it so
            // the next refresh re-solves from scratch.
            inner.carried = None;
            inner.cg_fallbacks += 1;
        }
        update
    }

    /// `w = L⁺(e_u − e_v)` on the current graph: a difference of resident
    /// columns when both endpoints are cached, otherwise one CG solve over
    /// the mutation overlay.
    fn update_vector(&self, inner: &Updater, u: NodeId, v: NodeId) -> Option<Vec<f64>> {
        let carried = inner.carried.as_ref()?;
        let col = |s: NodeId| {
            carried
                .columns
                .iter()
                .find(|(source, _)| *source == s)
                .map(|(_, column)| column)
        };
        if let (Some(cu), Some(cv)) = (col(u), col(v)) {
            return Some(cu.iter().zip(cv).map(|(a, b)| a - b).collect());
        }
        let n = inner.dynamic.num_nodes();
        let overlay = inner.dynamic.overlay()?;
        let mut b = vec![0.0; n];
        b[u] = 1.0;
        b[v] = -1.0;
        let (w, outcome) =
            solve_overlay_laplacian(overlay, &b, UPDATE_SOLVE_TOLERANCE, n.max(1000));
        outcome.converged.then_some(w)
    }

    /// Advances every carried resident vector through the prepared update.
    fn apply_carried_update(&self, inner: &mut Updater, update: Option<RankOneUpdate>) {
        let (Some(update), Some(carried)) = (update, inner.carried.as_mut()) else {
            return;
        };
        update.apply_diagonal(&mut carried.diagonal);
        for (_, column) in &mut carried.columns {
            update.apply_column(column);
        }
        if let Some((ids, rows)) = carried.landmarks.as_mut() {
            for (l, row) in ids.iter().zip(rows.iter_mut()) {
                for (t, r) in row.iter_mut().enumerate() {
                    *r = update.apply_resistance(*r, *l, t);
                }
            }
        }
        inner.sm_updates += 1;
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.lock_inner().dynamic.has_edge(u, v)
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.lock_inner().dynamic.num_edges()
    }

    /// Monotone counter bumped by every successful mutation.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Snapshot refreshes the underlying [`DynamicEr`] has performed (full
    /// rebuilds plus incremental overlay refreshes).
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.lock_inner().dynamic.rebuilds()
    }

    /// Snapshot refreshes that were full cold rebuilds (CSR + 120-iteration
    /// Lanczos from scratch); these reset drift and restore bit-identity.
    pub fn snapshot_full_rebuilds(&self) -> u64 {
        self.lock_inner().dynamic.full_rebuilds()
    }

    /// Snapshot refreshes that were incremental (overlay collapse +
    /// warm-started Lanczos).
    pub fn incremental_refreshes(&self) -> u64 {
        self.lock_inner().dynamic.incremental_refreshes()
    }

    /// Service epochs installed so far (each wraps one snapshot refresh in a
    /// fresh planner/cache/backend stack, re-using carried INDEX state when
    /// available).
    pub fn service_refreshes(&self) -> u64 {
        self.lock_inner().service_refreshes
    }

    /// Mutations whose resident INDEX state was advanced by a rank-1
    /// Sherman–Morrison update instead of being discarded.
    pub fn sm_updates(&self) -> u64 {
        self.lock_inner().sm_updates
    }

    /// Mutations that refused the rank-1 path (near-singular deletion or
    /// non-converged `w`-solve) and dropped the carried state, deferring to
    /// fresh CG solves at the next refresh.
    pub fn cg_fallbacks(&self) -> u64 {
        self.lock_inner().cg_fallbacks
    }

    /// Total refresh work paid so far. Kept for back-compatibility; prefer
    /// the split [`snapshot_rebuilds`](Self::snapshot_rebuilds) /
    /// [`service_refreshes`](Self::service_refreshes) counters.
    pub fn rebuilds(&self) -> u64 {
        self.snapshot_rebuilds()
    }

    /// The currently installed epoch, if any, without triggering a refresh.
    /// Readers may pin the returned `Arc` and keep querying a consistent
    /// (possibly stale) snapshot while mutations proceed.
    pub fn epoch(&self) -> Option<Arc<ServiceEpoch>> {
        self.lock_epoch().clone()
    }

    /// Blocking refresh: waits for the updater lock and installs an epoch
    /// for the current version (no-op when the installed epoch is current).
    pub fn refresh(&self) -> Result<Arc<ServiceEpoch>, ServiceError> {
        let mut inner = self.lock_inner();
        self.refresh_locked(&mut inner)
    }

    /// The epoch to answer on: the installed one when current; otherwise a
    /// freshly installed one if the updater lock is free, or the stale one
    /// (readers never block on a mutation burst). Blocks only when no epoch
    /// has ever been installed.
    fn current_epoch(&self) -> Result<Arc<ServiceEpoch>, ServiceError> {
        let pinned = self.lock_epoch().clone();
        if let Some(epoch) = pinned {
            if epoch.version() == self.version() {
                return Ok(epoch);
            }
            return match self.inner.try_lock() {
                Ok(mut inner) => self.refresh_locked(&mut inner),
                // Updater busy (mutation burst in flight): serve the stale
                // epoch rather than blocking the query.
                Err(_) => Ok(epoch),
            };
        }
        let mut inner = self.lock_inner();
        self.refresh_locked(&mut inner)
    }

    /// Builds and installs the epoch for `inner`'s current version. Reuses
    /// carried INDEX state for incremental refreshes; a full snapshot
    /// rebuild drops it so the new epoch is bit-identical to a cold build.
    fn refresh_locked(&self, inner: &mut Updater) -> Result<Arc<ServiceEpoch>, ServiceError> {
        let version = inner.dynamic.version();
        if let Some(epoch) = self.lock_epoch().clone() {
            if epoch.version() == version {
                return Ok(epoch);
            }
        }
        let context = inner.dynamic.context()?;
        let graph = Arc::clone(context.graph_arc());
        let mut service = ResistanceService::from_context(context, self.config);
        if inner.dynamic.last_refresh_was_full() {
            // Bit-identity contract: a full rebuild serves exactly what a
            // cold service would, so all carried state is discarded.
            inner.carried = None;
        } else if let Some(carried) = inner.carried.as_ref().filter(|c| c.exact) {
            let backend = IndexBackend::from_parts(
                graph,
                carried.diagonal.clone(),
                carried.column_capacity,
                carried.columns.clone(),
                carried.build_solves,
            );
            service = service.with_prebuilt_index(Arc::new(backend));
            if let Some((ids, rows)) = &carried.landmarks {
                let sqrt = rows
                    .iter()
                    .map(|row| row.iter().map(|&r| r.max(0.0).sqrt()).collect())
                    .collect();
                let index = LandmarkIndex::from_parts(ids.clone(), sqrt, carried.diagonal.len())?;
                service = service.with_prebuilt_landmarks(Arc::new(LandmarkBackend::new(index)));
            }
        }
        inner.service_refreshes += 1;
        let epoch = Arc::new(ServiceEpoch { version, service });
        *self.lock_epoch() = Some(Arc::clone(&epoch));
        self.version.store(version, Ordering::Release);
        Ok(epoch)
    }

    /// Submits a request against the current epoch. Never blocks on an
    /// in-flight mutation burst: if the updater is busy, the previous epoch
    /// answers.
    pub fn submit(&self, request: &Request) -> Result<Response, ServiceError> {
        self.current_epoch()?.service().submit(request)
    }

    /// One ε-approximate pair query at the configured accuracy.
    pub fn resistance(&self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        let accuracy = self.config.into();
        Ok(self
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(accuracy))?
            .value())
    }

    /// Exact resistance on the current snapshot (CG solve), for callers that
    /// want ground truth after a mutation burst.
    pub fn resistance_exact(&self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        Ok(self.lock_inner().dynamic.resistance_exact(s, t)?)
    }

    /// Seeds carried INDEX-tier state directly (benchmark seam). The state
    /// must describe the *current* graph: `diagonal` is `diag(L⁺)` (length
    /// `n`) and each `(source, column)` is a centred `L⁺ e_source`. Seeded
    /// state is advanced by Sherman–Morrison on every mutation and readable
    /// through [`carried_diagonal`](Self::carried_diagonal) /
    /// [`carried_column`](Self::carried_column), but — unlike state
    /// harvested from a live epoch — it is never installed into a serving
    /// epoch, because its provenance (e.g. Hutchinson probes) may be below
    /// exact-solve grade.
    ///
    /// # Panics
    /// Panics if a vector length differs from the node count.
    pub fn seed_index_state(
        &self,
        diagonal: Vec<f64>,
        columns: Vec<(NodeId, Vec<f64>)>,
    ) -> Result<(), ServiceError> {
        let mut inner = self.lock_inner();
        // Materialize the snapshot (and its mutation overlay) so that
        // `w`-solves for non-resident endpoints have something to solve on.
        inner.dynamic.context()?;
        let n = inner.dynamic.num_nodes();
        assert_eq!(diagonal.len(), n, "seeded diagonal must have length n");
        assert!(
            columns.iter().all(|(s, c)| *s < n && c.len() == n),
            "seeded columns must be in-range and length n"
        );
        let column_capacity = columns.len().max(1);
        inner.carried = Some(CarriedState {
            diagonal,
            columns,
            column_capacity,
            build_solves: 0,
            landmarks: None,
            exact: false,
        });
        Ok(())
    }

    /// The carried L⁺ diagonal, if any state is resident (introspection for
    /// tests and benches).
    pub fn carried_diagonal(&self) -> Option<Vec<f64>> {
        self.lock_inner()
            .carried
            .as_ref()
            .map(|c| c.diagonal.clone())
    }

    /// The carried L⁺ column for `source`, if resident.
    pub fn carried_column(&self, source: NodeId) -> Option<Vec<f64>> {
        self.lock_inner().carried.as_ref().and_then(|c| {
            c.columns
                .iter()
                .find(|(s, _)| *s == source)
                .map(|(_, column)| column.clone())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn config() -> ApproxConfig {
        ApproxConfig {
            epsilon: 0.05,
            ..ApproxConfig::default()
        }
    }

    #[test]
    fn approximate_queries_track_exact_values_across_mutations() {
        let g = generators::social_network_like(300, 10.0, 7).unwrap();
        let dynamic = DynamicResistanceService::from_graph(&g, config());
        let approx = dynamic.resistance(5, 200).unwrap();
        let exact = dynamic.resistance_exact(5, 200).unwrap();
        assert!((approx - exact).abs() <= config().epsilon);
        dynamic.insert_edge(5, 200).unwrap();
        dynamic.insert_edge(5, 201).unwrap();
        let approx = dynamic.resistance(5, 200).unwrap();
        let exact = dynamic.resistance_exact(5, 200).unwrap();
        assert!((approx - exact).abs() <= config().epsilon);
        assert!(dynamic.has_edge(5, 201));
    }

    #[test]
    fn service_is_refreshed_once_per_mutation_burst() {
        let g = generators::complete(30).unwrap();
        let dynamic = DynamicResistanceService::from_graph(&g, config());
        dynamic.resistance(0, 5).unwrap();
        let first = dynamic.version();
        // Same version: the epoch (and its cache) is reused — a repeat of
        // the query is a cache hit, not a recomputation.
        let repeat = dynamic
            .submit(&Request::new(Query::pair(0, 5)).with_accuracy(config().into()))
            .unwrap();
        assert_eq!(repeat.backend_calls, 0, "served from the cache tier");
        dynamic.insert_edge(0, 9).unwrap_or(false);
        dynamic.remove_edge(2, 3).unwrap();
        assert!(dynamic.version() > first);
        // After the burst, the next query installs a new epoch and
        // recomputes.
        let fresh = dynamic
            .submit(&Request::new(Query::pair(0, 5)).with_accuracy(config().into()))
            .unwrap();
        assert_eq!(fresh.backend_calls, 1, "cache was dropped with the swap");
        assert_eq!(dynamic.service_refreshes(), 2);
    }

    #[test]
    fn mutations_change_answers_in_the_right_direction() {
        let g = generators::social_network_like(200, 8.0, 1).unwrap();
        let dynamic = DynamicResistanceService::from_graph(&g, config());
        let before = dynamic.resistance(3, 150).unwrap();
        dynamic.insert_edge(3, 150).unwrap();
        let after = dynamic.resistance(3, 150).unwrap();
        assert!(after < before + config().epsilon);
        assert!(
            after <= 1.0 + config().epsilon,
            "edge endpoints have r <= 1"
        );
    }

    #[test]
    fn pinned_epoch_keeps_answering_old_version_bits() {
        let g = generators::social_network_like(120, 7.0, 11).unwrap();
        let dynamic = DynamicResistanceService::from_graph(&g, config());
        dynamic.resistance(1, 60).unwrap();
        let pinned = dynamic.epoch().expect("epoch installed by first query");
        let old_version = pinned.version();
        let old_answer = pinned
            .service()
            .submit(&Query::pair(1, 60).into())
            .unwrap()
            .value();
        dynamic.insert_edge(1, 60).unwrap();
        dynamic.insert_edge(1, 61).unwrap();
        // The pinned epoch still answers, bit-identically, at its version.
        let replay = pinned
            .service()
            .submit(&Query::pair(1, 60).into())
            .unwrap()
            .value();
        assert_eq!(old_answer.to_bits(), replay.to_bits());
        assert_eq!(pinned.version(), old_version);
        // New admissions see the new version.
        dynamic.resistance(1, 60).unwrap();
        let fresh = dynamic.epoch().unwrap();
        assert!(fresh.version() > old_version);
    }

    #[test]
    fn seeded_state_is_advanced_but_never_installed() {
        let g = generators::social_network_like(80, 6.0, 5).unwrap();
        let dynamic = DynamicResistanceService::from_graph(&g, config());
        let n = g.num_nodes();
        // Seed a deliberately wrong diagonal: if it were ever installed,
        // INDEX answers would be garbage. It must still be SM-maintained.
        dynamic.seed_index_state(vec![1.0; n], Vec::new()).unwrap();
        let before = dynamic.carried_diagonal().unwrap();
        dynamic.insert_edge(0, 40).unwrap();
        let after = dynamic.carried_diagonal().unwrap();
        assert_ne!(before, after, "diagonal advanced by Sherman–Morrison");
        assert_eq!(dynamic.sm_updates(), 1);
        // Queries still answer correctly — the seeded state was not
        // installed into the epoch.
        let approx = dynamic.resistance(0, 40).unwrap();
        let exact = dynamic.resistance_exact(0, 40).unwrap();
        assert!((approx - exact).abs() <= config().epsilon);
    }
}
