//! The capability-declaring backend trait and its implementations.
//!
//! A [`Backend`] answers *planned* queries batch-natively: the service hands
//! it a [`Plan`] (the deduplicated work items that survived the cache tier)
//! plus a [`StreamPlan`] assigning every item the RNG stream it must use.
//! Randomized backends fork one independent estimator per stream
//! ([`ForkableEstimator`]), so the same plan produces bit-identical answers
//! at any thread count and irrespective of scheduling order.
//!
//! Five families implement the trait:
//!
//! * [`EstimatorBackend`] — wraps any [`ForkableEstimator`] (AMC, SMM,
//!   TP, TPC, RP, MC, MC2, EXACT) and fans the plan items out over worker
//!   threads.
//! * [`GeerBackend`] — batch-native GEER: one shared SMM frontier per
//!   distinct endpoint of the plan, per-pair Eq. 17 switch points and AMC
//!   tails on the per-item streams, bit-identical to per-pair forks.
//! * [`HayBatchBackend`] — the batch-native HAY: one pool of uniform
//!   spanning trees scores *every* edge of the set at once, amortising the
//!   trees the per-query estimator would sample per edge.
//! * [`IndexBackend`] — the column-based [`ErIndex`]: single-source rows,
//!   the pseudo-inverse diagonal, nearest-neighbour search and exact pairs.
//! * [`LandmarkBackend`] — O(k)-per-query triangle-inequality point
//!   estimates from landmark columns.

use crate::capability::{QueryShape, QueryShapeSet};
use crate::error::ServiceError;
use crate::query::Accuracy;
use crate::response::Response;
use er_core::{
    ApproxConfig, CostBreakdown, EstimatorError, ForkableEstimator, GeerBatch, GraphContext,
};
use er_graph::{Graph, NodeId};
use er_index::{ErIndex, LandmarkIndex};
use er_walks::par;
use er_walks::spanning::sample_spanning_trees;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock, RwLock};

/// One unit of pair-shaped work: a distinct, uncached, non-trivial pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanItem {
    /// Query source.
    pub s: NodeId,
    /// Query target.
    pub t: NodeId,
}

/// A planned request, as handed to a backend: the shape and accuracy of the
/// original query plus the work items that survived the service's cache and
/// dedup tier.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Shape of the originating query.
    pub shape: QueryShape,
    /// Accuracy target of the originating request.
    pub accuracy: Accuracy,
    /// Distinct uncached pair items (pair-shaped queries only).
    pub items: Vec<PlanItem>,
    /// The source node of `SingleSource` / `TopK` queries.
    pub source: Option<NodeId>,
    /// `k` of a `TopK` query.
    pub k: usize,
}

impl Plan {
    /// A pair-shaped plan over `items`.
    pub fn for_items(shape: QueryShape, accuracy: Accuracy, items: Vec<PlanItem>) -> Plan {
        Plan {
            shape,
            accuracy,
            items,
            source: None,
            k: 0,
        }
    }
}

/// Per-item RNG stream assignment plus the worker-thread knob.
///
/// Streams are derived by the service from each pair's *content* (symmetric
/// in `s`/`t`, independent of request position, cache state and scheduling
/// order), so a pair yields bit-identical values at 1, 2 or 64 threads,
/// whether served alone, batched, coalesced across requests or replayed
/// from the cache.
#[derive(Clone, Debug)]
pub struct StreamPlan {
    /// `streams[i]` is the RNG stream for `plan.items[i]`.
    pub streams: Vec<u64>,
    /// Worker threads for the fan-out (0 = all cores).
    pub threads: usize,
}

impl StreamPlan {
    /// A stream plan for sequentially numbered items (used by tests and by
    /// backends that need no per-item streams).
    pub fn sequential(n: usize, threads: usize) -> StreamPlan {
        StreamPlan {
            streams: (0..n as u64).collect(),
            threads,
        }
    }
}

/// A query-plane backend: declares which shapes it can answer and answers
/// planned requests batch-natively.
pub trait Backend: Send + Sync {
    /// Short stable name, matching
    /// [`BackendChoice::name`](crate::BackendChoice::name).
    fn name(&self) -> &'static str;

    /// The query shapes this backend can answer.
    fn capabilities(&self) -> QueryShapeSet;

    /// Answers a planned request. `plan.items` values come back in item
    /// order; source-shaped plans fill the response per the layout rules on
    /// [`Response::values`].
    fn answer(&self, plan: &Plan, streams: &StreamPlan) -> Result<Response, ServiceError>;
}

fn check_capability(backend: &dyn Backend, shape: QueryShape) -> Result<(), ServiceError> {
    if backend.capabilities().contains(shape) {
        Ok(())
    } else {
        Err(ServiceError::UnsupportedShape {
            backend: backend.name(),
            shape,
        })
    }
}

/// Wraps any [`ForkableEstimator`] as a batch-native backend: item `i` is
/// answered by an independent fork of the prototype on stream
/// `streams.streams[i]`.
pub struct EstimatorBackend<E: ForkableEstimator> {
    prototype: E,
    name: &'static str,
    capabilities: QueryShapeSet,
}

impl<E: ForkableEstimator> EstimatorBackend<E> {
    /// Wraps `prototype` under the given display name and capability set.
    pub fn new(prototype: E, name: &'static str, capabilities: QueryShapeSet) -> Self {
        EstimatorBackend {
            prototype,
            name,
            capabilities,
        }
    }
}

impl<E: ForkableEstimator> Backend for EstimatorBackend<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capabilities(&self) -> QueryShapeSet {
        self.capabilities
    }

    fn answer(&self, plan: &Plan, streams: &StreamPlan) -> Result<Response, ServiceError> {
        check_capability(self, plan.shape)?;
        debug_assert_eq!(plan.items.len(), streams.streams.len());
        let results: Vec<Result<er_core::Estimate, EstimatorError>> = par::par_map_indexed(
            plan.items.len() as u64,
            0, // streams come from the plan, not from this seed
            streams.threads,
            |i, _| {
                let item = plan.items[i as usize];
                let mut fork = self.prototype.fork(streams.streams[i as usize]);
                fork.estimate(item.s, item.t)
            },
        );
        let mut values = Vec::with_capacity(results.len());
        let mut item_costs = Vec::with_capacity(results.len());
        let mut cost = CostBreakdown::default();
        for result in results {
            // Items are in plan order, so the first error seen is the
            // earliest-item error regardless of thread count.
            let estimate = result?;
            values.push(estimate.value);
            cost += estimate.cost;
            item_costs.push(estimate.cost);
        }
        Ok(Response {
            values,
            nodes: Vec::new(),
            backend: self.name,
            cost,
            // Per-pair forks share nothing: every unit of work is owned by
            // exactly one item.
            shared_cost: CostBreakdown::default(),
            item_costs,
            cache_hits: 0,
            backend_calls: plan.items.len() as u64,
            trivial_queries: 0,
        })
    }
}

/// Batch-native GEER: the plan's pairs are answered by one
/// [`GeerBatch`] run that expands a single SMM frontier per *distinct
/// endpoint* and lets every pair touching that endpoint read it, instead of
/// paying the source expansion once per pair as a per-item
/// [`EstimatorBackend`] fork would. Per-pair Eq. 17 switch points and AMC
/// tails run on the plan's content-derived streams, so every value is
/// bit-identical to its solo execution — batching (and server coalescing on
/// top of it) changes *work*, never *values*.
///
/// The response splits cost accordingly: the shared SMM expansion lands in
/// [`Response::shared_cost`] (counted once for the whole plan), the private
/// AMC tails in [`Response::item_costs`].
pub struct GeerBackend {
    batch: GeerBatch,
}

impl GeerBackend {
    /// Creates the backend over a preprocessed graph.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        GeerBackend {
            batch: GeerBatch::new(context, config),
        }
    }

    /// Caps each pair's AMC tail at `budget` walks (mirrors
    /// [`er_core::Geer::with_walk_budget`]).
    #[must_use]
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.batch = self.batch.with_walk_budget(budget);
        self
    }
}

impl Backend for GeerBackend {
    fn name(&self) -> &'static str {
        "GEER"
    }

    fn capabilities(&self) -> QueryShapeSet {
        QueryShapeSet::PAIRWISE
    }

    fn answer(&self, plan: &Plan, streams: &StreamPlan) -> Result<Response, ServiceError> {
        check_capability(self, plan.shape)?;
        debug_assert_eq!(plan.items.len(), streams.streams.len());
        let pairs: Vec<(NodeId, NodeId)> = plan.items.iter().map(|i| (i.s, i.t)).collect();
        let run = self.batch.run(&pairs, &streams.streams, streams.threads)?;
        let mut cost = run.shared_cost;
        for item in &run.item_costs {
            cost += *item;
        }
        Ok(Response {
            values: run.values,
            nodes: Vec::new(),
            backend: self.name(),
            cost,
            shared_cost: run.shared_cost,
            item_costs: run.item_costs,
            cache_hits: 0,
            backend_calls: plan.items.len() as u64,
            trivial_queries: 0,
        })
    }
}

/// Batch-native HAY: samples one pool of uniform spanning trees (Wilson's
/// algorithm) and scores every queried edge against the whole pool. The
/// per-edge estimate is the fraction of trees containing the edge, exactly
/// as in the per-query estimator — but `T` trees now answer `m` edges
/// instead of one, a factor-`m` saving on edge-set workloads.
pub struct HayBatchBackend {
    context: GraphContext,
    config: ApproxConfig,
}

impl HayBatchBackend {
    /// Creates the backend over a preprocessed graph.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        HayBatchBackend {
            context: context.clone(),
            config,
        }
    }

    /// Number of spanning trees sampled for a given accuracy: the Hoeffding
    /// count `⌈ln(2/δ) / (2ε²)⌉` for ε-targets, the budget itself for
    /// [`Accuracy::WalkBudget`].
    pub fn trees_for(&self, accuracy: Accuracy) -> u64 {
        match accuracy {
            Accuracy::Epsilon { eps, delta } => {
                ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil().max(1.0) as u64
            }
            Accuracy::WalkBudget(budget) => budget.max(1),
            // The planner never routes Exact here, but a forced override
            // gets the config's Hoeffding count rather than an error.
            Accuracy::Exact => {
                let eps = self.config.epsilon;
                ((2.0 / self.config.delta).ln() / (2.0 * eps * eps))
                    .ceil()
                    .max(1.0) as u64
            }
        }
    }
}

impl Backend for HayBatchBackend {
    fn name(&self) -> &'static str {
        "HAY"
    }

    fn capabilities(&self) -> QueryShapeSet {
        QueryShapeSet::EDGE_ONLY
    }

    fn answer(&self, plan: &Plan, streams: &StreamPlan) -> Result<Response, ServiceError> {
        check_capability(self, plan.shape)?;
        let g = self.context.graph();
        for item in &plan.items {
            self.context.check_pair(item.s, item.t)?;
            if !g.has_edge(item.s, item.t) {
                return Err(EstimatorError::NotAnEdge {
                    s: item.s,
                    t: item.t,
                }
                .into());
            }
        }
        if plan.items.is_empty() {
            return Ok(Response {
                values: Vec::new(),
                nodes: Vec::new(),
                backend: self.name(),
                cost: CostBreakdown::default(),
                shared_cost: CostBreakdown::default(),
                item_costs: Vec::new(),
                cache_hits: 0,
                backend_calls: 0,
                trivial_queries: 0,
            });
        }
        let trees = self.trees_for(plan.accuracy);
        // One RNG stream per tree, derived from the seed alone: the tree pool
        // is a pure function of (seed, trees), identical at any thread count.
        // The multi-root lockstep Wilson driver grows several trees of each
        // chunk concurrently while preserving every tree's stream-`i` draw
        // schedule, so the pool (and every value) is unchanged.
        let fan_seed = par::mix_seed(self.config.seed, 0x11a7);
        let (counts, walk_steps) = par::par_fold_ranges(
            trees,
            streams.threads,
            || (vec![0u64; plan.items.len()], 0u64),
            |chunk, acc: &mut (Vec<u64>, u64)| {
                sample_spanning_trees(g, 0, fan_seed, chunk, &mut |_, tree, steps| {
                    for (j, item) in plan.items.iter().enumerate() {
                        if tree.contains_edge(item.s, item.t) {
                            acc.0[j] += 1;
                        }
                    }
                    acc.1 += steps;
                })
            },
            |total, part| {
                for (t, p) in total.0.iter_mut().zip(part.0) {
                    *t += p;
                }
                total.1 += part.1;
            },
        );
        let values = counts.iter().map(|&c| c as f64 / trees as f64).collect();
        let cost = CostBreakdown {
            spanning_trees: trees,
            // True per-tree loop-erased-walk steps summed over the pool,
            // as reported by the lockstep driver (the per-query estimator
            // reports the same true count).
            walk_steps,
            ..CostBreakdown::default()
        };
        Ok(Response {
            values,
            nodes: Vec::new(),
            backend: self.name(),
            cost,
            // The tree pool is the whole cost and answers every edge at
            // once; no per-item work exists to attribute.
            shared_cost: cost,
            item_costs: vec![CostBreakdown::default(); plan.items.len()],
            cache_hits: 0,
            backend_calls: plan.items.len() as u64,
            trivial_queries: 0,
        })
    }
}

/// A read-mostly cache of Laplacian pseudo-inverse columns: a `RwLock`ed map
/// of per-column once-cells. Readers of an already-solved column take only
/// the read lock (shared, uncontended); a missing column inserts its cell
/// under a brief write lock and then solves **outside** any map lock inside
/// the cell's `OnceLock`, so concurrent requests for *different* columns
/// solve in parallel and concurrent requests for the *same* column solve
/// exactly once (the losers block on the cell, not on the map).
/// One column slot: shared so readers can clone it out of the map and block
/// on the `OnceLock` (not the map lock) while the first requester solves.
type ColumnCell = Arc<OnceLock<Arc<Vec<f64>>>>;

struct ColumnCache {
    cells: RwLock<HashMap<NodeId, ColumnCell>>,
    capacity: usize,
    solves: AtomicU64,
}

impl ColumnCache {
    fn new(capacity: usize) -> Self {
        ColumnCache {
            cells: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            solves: AtomicU64::new(0),
        }
    }

    /// Seeds an already-solved column (the warm working set handed over by
    /// the wrapped `ErIndex`).
    fn seed(&self, s: NodeId, column: Vec<f64>) {
        let cell: ColumnCell = Arc::new(OnceLock::new());
        let _ = cell.set(Arc::new(column));
        self.cells
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(s, cell);
    }

    /// Every currently-resident (initialized) column, sorted by source node
    /// for determinism. In-flight cells still solving are skipped.
    fn resident(&self) -> Vec<(NodeId, Vec<f64>)> {
        let mut out: Vec<(NodeId, Vec<f64>)> = self
            .cells
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|(&s, cell)| cell.get().map(|col| (s, col.as_ref().clone())))
            .collect();
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }

    /// The column `L† e_s`, solving it at most once per residency.
    fn column(&self, graph: &Graph, s: NodeId) -> Arc<Vec<f64>> {
        let existing = self
            .cells
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&s)
            .cloned();
        let cell = match existing {
            Some(cell) => cell,
            None => {
                let mut map = self.cells.write().unwrap_or_else(|e| e.into_inner());
                if !map.contains_key(&s) && map.len() >= self.capacity {
                    // Evict an arbitrary *initialized* column, like the
                    // ErIndex working-set cache; in-flight readers keep
                    // their Arc alive, so eviction never blocks on them.
                    // Cells still solving are never evicted from under
                    // their waiters.
                    if let Some(&evict) = map
                        .iter()
                        .find(|(_, cell)| cell.get().is_some())
                        .map(|(k, _)| k)
                    {
                        map.remove(&evict);
                    }
                }
                map.entry(s)
                    .or_insert_with(|| Arc::new(OnceLock::new()))
                    .clone()
            }
        };
        cell.get_or_init(|| {
            let x = er_index::solve_column(graph, s);
            self.solves.fetch_add(1, AtomicOrdering::Relaxed);
            Arc::new(x)
        })
        .clone()
    }
}

/// The column-based exact index as a backend: answers every shape.
///
/// Built from an [`ErIndex`] (whose pre-computed `diag(L†)` it keeps), but
/// the query path is its own: the diagonal is immutable shared state and the
/// column tier is a `ColumnCache` — a read-mostly `RwLock` map of
/// per-column once-cells — so source-shaped queries on already-resident
/// columns run concurrently across server workers instead of serialising
/// behind the single index mutex this backend used to hold. Values are
/// deterministic CG solves either way; concurrency changes throughput only.
pub struct IndexBackend {
    graph: Arc<Graph>,
    diagonal: Vec<f64>,
    columns: ColumnCache,
    build_solves: u64,
}

impl IndexBackend {
    /// Wraps a built index, taking over its graph handle, pre-computed
    /// diagonal, configured column capacity and already-solved columns (a
    /// pre-warmed working set stays warm, and its solves are not repeated).
    pub fn new(mut index: ErIndex) -> Self {
        let columns = ColumnCache::new(index.column_capacity());
        for (s, column) in index.take_cached_columns() {
            columns.seed(s, column);
        }
        IndexBackend {
            graph: index.graph_arc().clone(),
            diagonal: index.diagonal().to_vec(),
            columns,
            build_solves: index.total_solves(),
        }
    }

    /// Reassembles a backend from previously extracted parts. `diagonal`
    /// must be `diag(L†)` of `graph` and every entry of `columns` a solved
    /// `L† e_s` on `graph` — or, in incremental dynamic serving, the
    /// Sherman–Morrison-advanced versions of both after a mutation burst.
    /// No solves are performed; `build_solves` seeds the solve counter so
    /// cost accounting carries across epochs.
    pub fn from_parts(
        graph: Arc<Graph>,
        diagonal: Vec<f64>,
        column_capacity: usize,
        columns: Vec<(NodeId, Vec<f64>)>,
        build_solves: u64,
    ) -> Self {
        assert_eq!(
            diagonal.len(),
            graph.num_nodes(),
            "diagonal must cover every node"
        );
        let cache = ColumnCache::new(column_capacity);
        for (s, column) in columns {
            assert_eq!(column.len(), graph.num_nodes());
            cache.seed(s, column);
        }
        IndexBackend {
            graph,
            diagonal,
            columns: cache,
            build_solves,
        }
    }

    /// The pre-computed pseudo-inverse diagonal `diag(L†)`.
    pub fn diagonal(&self) -> &[f64] {
        &self.diagonal
    }

    /// The currently-resident columns `(s, L† e_s)`, sorted by source —
    /// the extraction side of the [`from_parts`](Self::from_parts) seam.
    pub fn resident_columns(&self) -> Vec<(NodeId, Vec<f64>)> {
        self.columns.resident()
    }

    /// The configured column-cache capacity.
    pub fn column_capacity(&self) -> usize {
        self.columns.capacity
    }

    /// The shared graph handle the backend answers over.
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Number of Laplacian solves performed so far (index build + columns).
    pub fn total_solves(&self) -> u64 {
        self.build_solves + self.columns.solves.load(AtomicOrdering::Relaxed)
    }

    /// The solve count the backend was built with (excluding on-demand
    /// column solves since).
    pub fn build_solves(&self) -> u64 {
        self.build_solves
    }

    fn check_node(&self, v: NodeId) -> Result<(), ServiceError> {
        self.graph
            .check_node(v)
            .map_err(er_index::IndexError::from)?;
        Ok(())
    }

    /// `r(source, ·)` for every node, from the diagonal and one column —
    /// the same shared identity `ErIndex` answers with, so the two tiers
    /// can never drift apart.
    fn single_source_row(&self, source: NodeId) -> Result<Vec<f64>, ServiceError> {
        self.check_node(source)?;
        let column = self.columns.column(&self.graph, source);
        Ok(er_index::row_from_column(&self.diagonal, &column, source))
    }
}

impl Backend for IndexBackend {
    fn name(&self) -> &'static str {
        "INDEX"
    }

    fn capabilities(&self) -> QueryShapeSet {
        QueryShapeSet::ALL
    }

    fn answer(&self, plan: &Plan, _streams: &StreamPlan) -> Result<Response, ServiceError> {
        check_capability(self, plan.shape)?;
        let solves_before = self.total_solves();
        let mut nodes = Vec::new();
        let values = match plan.shape {
            QueryShape::SingleSource => {
                let source = plan.source.expect("single-source plan carries a source");
                self.single_source_row(source)?
            }
            QueryShape::Diagonal => self.diagonal.clone(),
            QueryShape::TopK => {
                let source = plan.source.expect("top-k plan carries a source");
                let scored =
                    er_index::nearest_from_row(self.single_source_row(source)?, source, plan.k);
                nodes = scored.iter().map(|&(v, _)| v).collect();
                scored.into_iter().map(|(_, r)| r).collect()
            }
            QueryShape::Pair | QueryShape::Batch | QueryShape::EdgeSet => {
                let mut out = Vec::with_capacity(plan.items.len());
                for item in &plan.items {
                    self.check_node(item.s)?;
                    self.check_node(item.t)?;
                    if item.s == item.t {
                        out.push(0.0);
                    } else {
                        let column = self.columns.column(&self.graph, item.s);
                        out.push(er_index::resistance_from_column(
                            &self.diagonal,
                            &column,
                            item.s,
                            item.t,
                        ));
                    }
                }
                out
            }
        };
        let backend_calls = plan.items.len() as u64;
        let cost = CostBreakdown {
            // The index's unit of work is the Laplacian solve; report the
            // solves observed during this plan (cached columns cost none;
            // under concurrent plans the attribution is approximate, as the
            // cache-state-dependent count always was).
            solver_iterations: self.total_solves() - solves_before,
            ..CostBreakdown::default()
        };
        Ok(Response {
            values,
            nodes,
            backend: self.name(),
            cost,
            // Column solves are shared across every item touching the
            // column (and future plans via the cache).
            shared_cost: cost,
            item_costs: vec![CostBreakdown::default(); plan.items.len()],
            cache_hits: 0,
            backend_calls,
            trivial_queries: 0,
        })
    }
}

/// Landmark triangle-inequality bounds as a backend. Answers pair-shaped
/// queries with the bound midpoint in O(k) per pair — no solves, no walks —
/// at the price of only bounded (not ε-controlled) error.
pub struct LandmarkBackend {
    index: LandmarkIndex,
}

impl LandmarkBackend {
    /// Wraps a built landmark index.
    pub fn new(index: LandmarkIndex) -> Self {
        LandmarkBackend { index }
    }

    /// The underlying landmark index (for bound queries the midpoint
    /// estimate discards).
    pub fn index(&self) -> &LandmarkIndex {
        &self.index
    }
}

impl Backend for LandmarkBackend {
    fn name(&self) -> &'static str {
        "LANDMARK"
    }

    fn capabilities(&self) -> QueryShapeSet {
        QueryShapeSet::PAIRWISE
    }

    fn answer(&self, plan: &Plan, _streams: &StreamPlan) -> Result<Response, ServiceError> {
        check_capability(self, plan.shape)?;
        let mut values = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            values.push(self.index.estimate(item.s, item.t)?);
        }
        Ok(Response {
            values,
            nodes: Vec::new(),
            backend: self.name(),
            cost: CostBreakdown::default(),
            shared_cost: CostBreakdown::default(),
            item_costs: vec![CostBreakdown::default(); plan.items.len()],
            cache_hits: 0,
            backend_calls: plan.items.len() as u64,
            trivial_queries: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::{Estimate, Exact, ResistanceEstimator};
    use er_graph::generators;

    fn ctx() -> GraphContext {
        let g = generators::social_network_like(120, 8.0, 3).unwrap();
        GraphContext::preprocess(&g).unwrap()
    }

    #[test]
    fn estimator_backend_is_thread_invariant_and_stream_driven() {
        #[derive(Clone)]
        struct Probe {
            stream: u64,
        }
        impl ResistanceEstimator for Probe {
            fn name(&self) -> &'static str {
                "PROBE"
            }
            fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
                Ok(Estimate::with_value(
                    (s + t) as f64 + self.stream as f64 / 1e6,
                ))
            }
        }
        impl ForkableEstimator for Probe {
            fn fork(&self, stream: u64) -> Self {
                Probe { stream }
            }
        }
        let backend = EstimatorBackend::new(Probe { stream: 0 }, "PROBE", QueryShapeSet::PAIRWISE);
        let items = vec![
            PlanItem { s: 1, t: 2 },
            PlanItem { s: 3, t: 4 },
            PlanItem { s: 5, t: 6 },
        ];
        let plan = Plan::for_items(QueryShape::Batch, Accuracy::default(), items);
        let streams = StreamPlan {
            streams: vec![7, 0, 3],
            threads: 1,
        };
        let base = backend.answer(&plan, &streams).unwrap();
        assert_eq!(base.values[0], 3.0 + 7.0 / 1e6, "stream 7 served item 0");
        for threads in [2, 8] {
            let other = backend
                .answer(
                    &plan,
                    &StreamPlan {
                        streams: streams.streams.clone(),
                        threads,
                    },
                )
                .unwrap();
            assert_eq!(other.values, base.values);
        }
        // Shape checking happens before any work.
        let bad = Plan {
            shape: QueryShape::Diagonal,
            ..plan
        };
        assert!(matches!(
            backend.answer(&bad, &streams),
            Err(ServiceError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn geer_backend_matches_per_pair_forks_bit_for_bit_and_splits_cost() {
        let context = ctx();
        let config = ApproxConfig::with_epsilon(0.2).reseeded(7);
        let items = vec![
            PlanItem { s: 0, t: 60 },
            PlanItem { s: 0, t: 90 },
            PlanItem { s: 7, t: 60 },
            PlanItem { s: 4, t: 110 },
        ];
        let plan = Plan::for_items(QueryShape::Batch, Accuracy::default(), items);
        let streams = StreamPlan {
            streams: vec![11, 5, 900, 2],
            threads: 1,
        };
        let solo = EstimatorBackend::new(
            er_core::Geer::new(&context, config),
            "GEER",
            QueryShapeSet::PAIRWISE,
        )
        .answer(&plan, &streams)
        .unwrap();
        let backend = GeerBackend::new(&context, config);
        let base = backend.answer(&plan, &streams).unwrap();
        let solo_bits: Vec<u64> = solo.values.iter().map(|v| v.to_bits()).collect();
        let base_bits: Vec<u64> = base.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(base_bits, solo_bits, "frontier sharing must not move bits");
        for threads in [2usize, 8] {
            let other = backend
                .answer(
                    &plan,
                    &StreamPlan {
                        streams: streams.streams.clone(),
                        threads,
                    },
                )
                .unwrap();
            let bits: Vec<u64> = other.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, solo_bits, "thread invariance at {threads}");
        }
        // Cost split: the shared SMM expansion is reported once, the AMC
        // tails per item, and the two components recombine into the full
        // cost. The tails are exactly the solo tails.
        assert!(base.shared_cost.matvec_ops > 0);
        assert_eq!(base.item_costs.len(), plan.items.len());
        let mut recombined = base.shared_cost;
        for item in &base.item_costs {
            recombined += *item;
        }
        assert_eq!(recombined, base.cost);
        let solo_walks: u64 = solo.item_costs.iter().map(|c| c.random_walks).sum();
        let batch_walks: u64 = base.item_costs.iter().map(|c| c.random_walks).sum();
        assert_eq!(batch_walks, solo_walks);
        // Two pairs share endpoint 0 and two share endpoint 60: the shared
        // expansion must undercut the per-pair SMM sum.
        assert!(base.shared_cost.matvec_ops < solo.cost.matvec_ops);
        // Shape checking happens before any work.
        let bad = Plan {
            shape: QueryShape::Diagonal,
            ..plan
        };
        assert!(matches!(
            backend.answer(&bad, &streams),
            Err(ServiceError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn hay_batch_matches_hoeffding_and_rejects_non_edges() {
        let context = ctx();
        let config = ApproxConfig::with_epsilon(0.2);
        let backend = HayBatchBackend::new(&context, config);
        assert_eq!(
            backend.trees_for(Accuracy::WalkBudget(50)),
            50,
            "budget maps to trees"
        );
        let hoeffding = backend.trees_for(Accuracy::Epsilon {
            eps: 0.2,
            delta: 0.01,
        });
        assert!(hoeffding > 1);

        let g = context.graph();
        let (s, t) = g.edges().next().unwrap();
        let plan = Plan::for_items(
            QueryShape::EdgeSet,
            Accuracy::Epsilon {
                eps: 0.2,
                delta: 0.01,
            },
            vec![PlanItem { s, t }],
        );
        let streams = StreamPlan::sequential(1, 1);
        let base = backend.answer(&plan, &streams).unwrap();
        assert!(base.values[0] > 0.0 && base.values[0] <= 1.0);
        assert_eq!(base.cost.spanning_trees, hoeffding);
        for threads in [2, 8] {
            let other = backend
                .answer(&plan, &StreamPlan::sequential(1, threads))
                .unwrap();
            assert_eq!(other.values, base.values, "thread invariance at {threads}");
        }

        // A non-edge in the set is rejected up front.
        let mut non_edge = (0, 1);
        'outer: for u in 0..g.num_nodes() {
            for v in (u + 1)..g.num_nodes() {
                if !g.has_edge(u, v) {
                    non_edge = (u, v);
                    break 'outer;
                }
            }
        }
        let bad = Plan::for_items(
            QueryShape::EdgeSet,
            Accuracy::default(),
            vec![PlanItem {
                s: non_edge.0,
                t: non_edge.1,
            }],
        );
        assert!(matches!(
            backend.answer(&bad, &streams),
            Err(ServiceError::Estimator(EstimatorError::NotAnEdge { .. }))
        ));
    }

    #[test]
    fn index_backend_inherits_capacity_and_warm_columns() {
        let context = ctx();
        let mut index = ErIndex::build(context.graph_arc().clone())
            .unwrap()
            .with_column_capacity(7);
        index.resistance(5, 40).unwrap(); // warms column 5
        let warm_solves = index.total_solves();
        let backend = IndexBackend::new(index);
        assert_eq!(backend.total_solves(), warm_solves, "no solves on handoff");
        let pair = backend
            .answer(
                &Plan::for_items(
                    QueryShape::Pair,
                    Accuracy::Exact,
                    vec![PlanItem { s: 5, t: 40 }],
                ),
                &StreamPlan::sequential(1, 1),
            )
            .unwrap();
        assert_eq!(
            backend.total_solves(),
            warm_solves,
            "a pre-warmed column must not be re-solved"
        );
        assert_eq!(pair.cost.solver_iterations, 0);
        // A cold column still solves exactly once.
        backend
            .answer(
                &Plan::for_items(
                    QueryShape::Pair,
                    Accuracy::Exact,
                    vec![PlanItem { s: 9, t: 40 }],
                ),
                &StreamPlan::sequential(1, 1),
            )
            .unwrap();
        assert_eq!(backend.total_solves(), warm_solves + 1);
    }

    #[test]
    fn index_backend_answers_every_shape_and_agrees_with_exact() {
        let context = ctx();
        let backend = IndexBackend::new(ErIndex::build(context.graph_arc().clone()).unwrap());
        let mut exact = Exact::with_solver(&context);
        let streams = StreamPlan::sequential(0, 1);

        let row = backend
            .answer(
                &Plan {
                    shape: QueryShape::SingleSource,
                    accuracy: Accuracy::Exact,
                    items: vec![],
                    source: Some(5),
                    k: 0,
                },
                &streams,
            )
            .unwrap();
        assert_eq!(row.values.len(), context.graph().num_nodes());
        assert_eq!(row.values[5], 0.0);
        let direct = exact.estimate(5, 40).unwrap().value;
        assert!((row.values[40] - direct).abs() < 1e-6);

        let diag = backend
            .answer(
                &Plan {
                    shape: QueryShape::Diagonal,
                    accuracy: Accuracy::Exact,
                    items: vec![],
                    source: None,
                    k: 0,
                },
                &streams,
            )
            .unwrap();
        assert_eq!(diag.values.len(), context.graph().num_nodes());
        assert!(diag.values.iter().all(|&d| d > 0.0));

        let top = backend
            .answer(
                &Plan {
                    shape: QueryShape::TopK,
                    accuracy: Accuracy::Exact,
                    items: vec![],
                    source: Some(5),
                    k: 3,
                },
                &streams,
            )
            .unwrap();
        assert_eq!(top.nodes.len(), 3);
        assert_eq!(top.values.len(), 3);
        assert!(top.values.windows(2).all(|w| w[0] <= w[1]));

        let pair = backend
            .answer(
                &Plan::for_items(
                    QueryShape::Pair,
                    Accuracy::Exact,
                    vec![PlanItem { s: 5, t: 40 }],
                ),
                &streams,
            )
            .unwrap();
        assert!((pair.values[0] - direct).abs() < 1e-6);
        assert!(backend.total_solves() > 0);
    }
}
