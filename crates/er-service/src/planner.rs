//! Capability- and cost-based query planning.
//!
//! The paper's Section 5 evaluation shows no single estimator dominates: the
//! cheapest method depends on the query shape (arbitrary pair vs. edge vs.
//! one-source-many-targets), the accuracy target and the graph size. The
//! [`Planner`] encodes those trade-offs as explicit, testable routing rules;
//! [`ResistanceService`](crate::ResistanceService) consults it per request
//! unless the caller forces a backend.
//!
//! Routing rules (first match wins):
//!
//! 1. Source-shaped queries (`SingleSource`, `Diagonal`, `TopK`) go to the
//!    column-based [`ErIndex`](er_index::ErIndex) backend — one Laplacian
//!    solve answers a whole row, which no pairwise sampler can match.
//! 2. `Accuracy::Exact` pair queries go to the index when it is already
//!    built (marginal cost: one cached column) or when the batch re-uses one
//!    source heavily; otherwise to EXACT-CG, one conjugate-gradient solve per
//!    pair with no preprocessing.
//! 3. `Accuracy::Epsilon` batches that re-use one source at least
//!    [`PlannerConfig::repeated_source_threshold`] times go to the index once
//!    it exists (repeated-source workloads amortise its columns).
//! 4. `Accuracy::Epsilon` pair/batch queries route on the **spectral gap**
//!    `1 − λ` reported by [`GraphSignals::lambda`]: a gap below
//!    [`PlannerConfig::lambda_gap_threshold`] marks a slow-mixing graph
//!    (long refined walk lengths, expensive Monte Carlo tails — the regime
//!    the `planner_calibration` sweep showed is CG-bound regardless of
//!    size), so the query is answered exactly (EXACT-CG; the index when a
//!    repeated-source batch makes building it worthwhile on a graph at or
//!    below [`PlannerConfig::exact_node_threshold`] nodes). Node count is
//!    only the fallback signal: graphs at or below `exact_node_threshold`
//!    take the same exact tier even when fast-mixing (or when λ is
//!    unknown), because a CG solve undercuts sampling outright at that
//!    size.
//! 5. Remaining `Accuracy::Epsilon` queries are fast-mixing and large: edge
//!    sets go to the batch-native HAY backend (one pool of spanning trees
//!    scores the whole set); everything else goes to GEER, which applies
//!    the paper's Eq. 17 walk-vs-SpMV switch rule per pair — the regime
//!    where its sampling bound is cheapest.
//! 6. `Accuracy::WalkBudget` requests explicitly ask for budgeted sampling:
//!    edge sets go to HAY (budget = trees), pairs to AMC (budget = walks).
//!
//! The spectral signal reaches the planner through [`GraphSignals`]: the
//! service fills it from
//! [`GraphContext::spectral_gap`](er_core::GraphContext::spectral_gap) (the
//! documented clamped accessor), callers routing without a preprocessed
//! context use [`GraphSignals::of_nodes`] and get the node-count fallback.

use crate::capability::{QueryShape, QueryShapeSet};
use crate::query::{Accuracy, Query};
use er_graph::NodeId;
use std::collections::HashMap;

/// The backends the service can route to. The first ten wrap the er-core
/// estimators one-to-one; the last two wrap the er-index structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// GEER (Algorithm 3) — SMM prefix + AMC tail with the Eq. 17 switch.
    Geer,
    /// AMC (Algorithm 1) — adaptive Monte Carlo with Bernstein stopping.
    Amc,
    /// SMM (Algorithm 2) — deterministic sparse matrix–vector iterations.
    Smm,
    /// TP — truncated-path Monte Carlo.
    Tp,
    /// TPC — truncated-path with collision counting.
    Tpc,
    /// RP — random-projection sketch.
    Rp,
    /// MC — commute-time / escape-probability sampling.
    Mc,
    /// MC2 — edge-query Monte Carlo.
    Mc2,
    /// HAY — spanning-tree sampling, batch-native over edge sets.
    Hay,
    /// EXACT — dense Laplacian pseudo-inverse (node-capped).
    ExactDense,
    /// EXACT-CG — one conjugate-gradient Laplacian solve per query.
    ExactCg,
    /// The column-based [`ErIndex`](er_index::ErIndex): single-source rows,
    /// pseudo-inverse diagonal, nearest-neighbour search, exact pairs.
    Index,
    /// Landmark triangle-inequality bounds (point estimate = bound midpoint).
    Landmark,
}

impl BackendChoice {
    /// Short stable display name (matches `Backend::name`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::Geer => "GEER",
            BackendChoice::Amc => "AMC",
            BackendChoice::Smm => "SMM",
            BackendChoice::Tp => "TP",
            BackendChoice::Tpc => "TPC",
            BackendChoice::Rp => "RP",
            BackendChoice::Mc => "MC",
            BackendChoice::Mc2 => "MC2",
            BackendChoice::Hay => "HAY",
            BackendChoice::ExactDense => "EXACT",
            BackendChoice::ExactCg => "EXACT-CG",
            BackendChoice::Index => "INDEX",
            BackendChoice::Landmark => "LANDMARK",
        }
    }

    /// The query shapes this backend can answer — the static policy behind
    /// each instance's [`Backend::capabilities`](crate::Backend::capabilities),
    /// so the service can reject a mismatched request before paying any
    /// backend construction cost.
    pub fn capabilities(&self) -> QueryShapeSet {
        match self {
            BackendChoice::Mc2 | BackendChoice::Hay => QueryShapeSet::EDGE_ONLY,
            BackendChoice::Index => QueryShapeSet::ALL,
            _ => QueryShapeSet::PAIRWISE,
        }
    }

    /// Parses the names accepted by the CLI's `--backend` flag
    /// (case-insensitive, `-`/`_` equivalent).
    pub fn parse(raw: &str) -> Option<BackendChoice> {
        let canon = raw.to_ascii_lowercase().replace('_', "-");
        Some(match canon.as_str() {
            "geer" => BackendChoice::Geer,
            "amc" => BackendChoice::Amc,
            "smm" => BackendChoice::Smm,
            "tp" => BackendChoice::Tp,
            "tpc" => BackendChoice::Tpc,
            "rp" => BackendChoice::Rp,
            "mc" => BackendChoice::Mc,
            "mc2" => BackendChoice::Mc2,
            "hay" => BackendChoice::Hay,
            "exact" | "exact-dense" => BackendChoice::ExactDense,
            "exact-cg" | "cg" => BackendChoice::ExactCg,
            "index" => BackendChoice::Index,
            "landmark" => BackendChoice::Landmark,
            _ => return None,
        })
    }
}

/// What the planner knows about the *graph* when routing: the node count
/// plus, when a preprocessed [`GraphContext`](er_core::GraphContext) is at
/// hand, the spectral radius λ of the transition matrix that drives the
/// spectral-gap rule (rule 4 of the module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSignals {
    /// Number of nodes in the graph.
    pub nodes: usize,
    /// `λ = max{|λ₂|, |λₙ|}` as reported by
    /// [`GraphContext::lambda`](er_core::GraphContext::lambda) (clamped into
    /// `(0, 1)` there); `None` when no spectral preprocessing is available,
    /// which disables the gap rule and falls back to node count.
    pub lambda: Option<f64>,
}

impl GraphSignals {
    /// Signals with node count only — the spectral rule is skipped.
    pub fn of_nodes(nodes: usize) -> GraphSignals {
        GraphSignals {
            nodes,
            lambda: None,
        }
    }

    /// Attaches the spectral radius λ from a preprocessed context.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> GraphSignals {
        self.lambda = Some(lambda);
        self
    }

    /// Whether the graph mixes slowly under the given gap threshold:
    /// `1 − λ < gap_threshold`. Unknown λ is never considered slow (the
    /// planner then falls back to node count alone).
    pub fn is_slow_mixing(&self, gap_threshold: f64) -> bool {
        self.lambda
            .map(|lambda| 1.0 - lambda < gap_threshold)
            .unwrap_or(false)
    }
}

/// What the planner can observe about the service when routing (planning is
/// stateful: an already-built index changes the cheapest choice).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerState {
    /// Whether the service has already paid for its [`ErIndex`] tier
    /// (diagonal + column cache), making index answers marginally free.
    ///
    /// [`ErIndex`]: er_index::ErIndex
    pub index_ready: bool,
}

/// The planner's tunable thresholds.
///
/// The defaults are calibrated from the `planner_calibration` sweep
/// (`cargo run --release -p er-bench --bin planner_calibration`) and a
/// spectral probe over the generator families: social-network-like and
/// Barabási–Albert graphs sit at a gap of ≈ 0.38–0.46 across sizes, while
/// Watts–Strogatz small-world rings sit at ≈ 0.02–0.03 — a
/// `lambda_gap_threshold` of 0.1 separates the families cleanly. With the
/// spectral rule carrying the slow-mixing cases, the node-count fallback
/// drops to 256: below that size CG undercuts sampling on every family the
/// sweep covers, while fast-mixing graphs above it flip to GEER.
///
/// ```
/// use er_service::{Planner, PlannerConfig};
///
/// let config = PlannerConfig::default()
///     .with_exact_node_threshold(2048)
///     .with_repeated_source_threshold(8)
///     .with_lambda_gap_threshold(0.05);
/// let planner = Planner::new(config);
/// assert_eq!(planner.config().exact_node_threshold, 2048);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerConfig {
    /// At or below this many nodes, a CG solve per query is cheaper than any
    /// sampling scheme, so ε-accuracy requests are answered exactly. This is
    /// the *fallback* size signal; the spectral-gap rule below dominates it
    /// when λ is known.
    pub exact_node_threshold: usize,
    /// A batch whose most frequent endpoint appears in at least this many
    /// distinct pairs counts as a repeated-source workload.
    pub repeated_source_threshold: usize,
    /// Spectral gaps `1 − λ` strictly below this mark the graph slow-mixing:
    /// ε pair/batch queries are answered exactly (EXACT-CG/INDEX) no matter
    /// the node count, because the refined walk length — and with it GEER's
    /// whole sampling budget — scales like `1/gap`.
    pub lambda_gap_threshold: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            exact_node_threshold: 256,
            repeated_source_threshold: 16,
            lambda_gap_threshold: 0.1,
        }
    }
}

impl PlannerConfig {
    /// Sets the node count at or below which ε requests are answered exactly.
    #[must_use]
    pub fn with_exact_node_threshold(mut self, nodes: usize) -> Self {
        self.exact_node_threshold = nodes;
        self
    }

    /// Sets the repeated-source batch threshold.
    #[must_use]
    pub fn with_repeated_source_threshold(mut self, count: usize) -> Self {
        self.repeated_source_threshold = count.max(1);
        self
    }

    /// Sets the spectral-gap threshold below which ε requests are answered
    /// exactly. `0.0` disables the spectral rule (no gap is below it).
    #[must_use]
    pub fn with_lambda_gap_threshold(mut self, gap: f64) -> Self {
        self.lambda_gap_threshold = gap;
        self
    }
}

/// The routing policy: a pure function of a [`PlannerConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// A planner with explicit thresholds.
    pub fn new(config: PlannerConfig) -> Planner {
        Planner { config }
    }

    /// The thresholds in force.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }
    /// Routes a query to the cheapest capable backend under the given
    /// accuracy target and graph signals.
    ///
    /// The decision is a pure function of its arguments, so the routing
    /// table is unit-testable without building a service.
    pub fn route(
        &self,
        query: &Query,
        accuracy: Accuracy,
        signals: GraphSignals,
        state: PlannerState,
    ) -> BackendChoice {
        let n = signals.nodes;
        match query.shape() {
            QueryShape::SingleSource | QueryShape::Diagonal | QueryShape::TopK => {
                BackendChoice::Index
            }
            shape @ (QueryShape::Pair | QueryShape::Batch | QueryShape::EdgeSet) => {
                let repeated_source =
                    dominant_source_count(&query.pairs()) >= self.config.repeated_source_threshold;
                match accuracy {
                    Accuracy::Exact => {
                        // The index is only worth *building* (n diagonal
                        // solves) on small graphs; on large graphs it is used
                        // when already paid for, and EXACT-CG (one solve per
                        // pair) wins otherwise.
                        if state.index_ready
                            || (repeated_source && n <= self.config.exact_node_threshold)
                        {
                            BackendChoice::Index
                        } else {
                            BackendChoice::ExactCg
                        }
                    }
                    Accuracy::Epsilon { .. } => {
                        // Slow mixing (rule 4): a small spectral gap blows up
                        // the refined walk length, so CG wins on pair/batch
                        // queries regardless of size. Edge sets stay with
                        // HAY whose tree pool does not depend on mixing.
                        let exact_tier = n <= self.config.exact_node_threshold
                            || (shape != QueryShape::EdgeSet
                                && signals.is_slow_mixing(self.config.lambda_gap_threshold));
                        if state.index_ready && repeated_source {
                            BackendChoice::Index
                        } else if exact_tier {
                            // Building the index (n diagonal solves) for one
                            // batch only pays on small graphs; a slow-mixing
                            // *large* repeated-source batch takes per-pair CG.
                            if repeated_source && n <= self.config.exact_node_threshold {
                                BackendChoice::Index
                            } else {
                                BackendChoice::ExactCg
                            }
                        } else if shape == QueryShape::EdgeSet {
                            BackendChoice::Hay
                        } else {
                            BackendChoice::Geer
                        }
                    }
                    Accuracy::WalkBudget(_) => {
                        if shape == QueryShape::EdgeSet {
                            BackendChoice::Hay
                        } else {
                            BackendChoice::Amc
                        }
                    }
                }
            }
        }
    }
}

/// The number of distinct (unordered, non-self) pairs in which the most
/// frequent endpoint participates — the planner's repeated-source signal.
pub fn dominant_source_count(pairs: &[(NodeId, NodeId)]) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut counts: HashMap<NodeId, usize> = HashMap::new();
    for &(s, t) in pairs {
        if s == t {
            continue;
        }
        let key = (s.min(t), s.max(t));
        if seen.insert(key) {
            *counts.entry(key.0).or_insert(0) += 1;
            *counts.entry(key.1).or_insert(0) += 1;
        }
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> Planner {
        Planner::default()
    }

    #[test]
    fn source_shapes_always_go_to_the_index() {
        let p = planner();
        for accuracy in [
            Accuracy::default(),
            Accuracy::Exact,
            Accuracy::WalkBudget(10),
        ] {
            for query in [Query::single_source(0), Query::Diagonal, Query::top_k(0, 5)] {
                assert_eq!(
                    p.route(
                        &query,
                        accuracy,
                        GraphSignals::of_nodes(1_000_000),
                        PlannerState::default()
                    ),
                    BackendChoice::Index,
                    "{query:?} under {accuracy:?}"
                );
            }
        }
    }

    #[test]
    fn small_graphs_are_answered_exactly_even_for_epsilon_requests() {
        let p = planner();
        let q = Query::pair(0, 1);
        assert_eq!(
            p.route(
                &q,
                Accuracy::default(),
                GraphSignals::of_nodes(200),
                PlannerState::default()
            ),
            BackendChoice::ExactCg
        );
        assert_eq!(
            p.route(
                &q,
                Accuracy::default(),
                GraphSignals::of_nodes(100_000),
                PlannerState::default()
            ),
            BackendChoice::Geer,
            "above the threshold, without spectral signals, sampling wins"
        );
    }

    #[test]
    fn spectral_gap_routes_slow_mixing_graphs_to_the_exact_tier() {
        let p = planner();
        let q = Query::pair(0, 1);
        // A small-world-like λ (gap ≈ 0.03, below the 0.1 default): exact
        // even though the graph is far above the node-count threshold.
        let slow = GraphSignals::of_nodes(100_000).with_lambda(0.97);
        assert_eq!(
            p.route(&q, Accuracy::default(), slow, PlannerState::default()),
            BackendChoice::ExactCg
        );
        // A social/BA-like λ (gap ≈ 0.4): GEER.
        let fast = GraphSignals::of_nodes(100_000).with_lambda(0.6);
        assert_eq!(
            p.route(&q, Accuracy::default(), fast, PlannerState::default()),
            BackendChoice::Geer
        );
        // The rule only applies to ε targets and pair/batch shapes: edge
        // sets keep HAY, budget requests keep AMC, exact requests were
        // already exact.
        let edges = Query::edge_set(vec![(0, 1)]);
        assert_eq!(
            p.route(&edges, Accuracy::default(), slow, PlannerState::default()),
            BackendChoice::Hay
        );
        assert_eq!(
            p.route(&q, Accuracy::WalkBudget(100), slow, PlannerState::default()),
            BackendChoice::Amc
        );
        // Slow-mixing large repeated-source batch: per-pair CG, not an
        // index build (n solves), unless the index already exists.
        let batch = Query::batch((1..40).map(|t| (0usize, t)).collect());
        assert_eq!(
            p.route(&batch, Accuracy::default(), slow, PlannerState::default()),
            BackendChoice::ExactCg
        );
        assert_eq!(
            p.route(
                &batch,
                Accuracy::default(),
                slow,
                PlannerState { index_ready: true }
            ),
            BackendChoice::Index
        );
    }

    #[test]
    fn spectral_rule_crosses_the_threshold_in_both_directions_on_real_families() {
        use er_core::GraphContext;
        use er_graph::generators;
        // Lanczos-measured spectra: a Barabási–Albert graph mixes fast
        // (gap ≈ 0.41), a Watts–Strogatz ring mixes slowly (gap ≈ 0.03).
        let ba = GraphContext::preprocess(generators::barabasi_albert(500, 5, 5).unwrap()).unwrap();
        let ws =
            GraphContext::preprocess(generators::watts_strogatz(500, 6, 0.1, 5).unwrap()).unwrap();
        assert!(ba.spectral_gap() > 0.1, "BA gap {}", ba.spectral_gap());
        assert!(ws.spectral_gap() < 0.1, "WS gap {}", ws.spectral_gap());
        let q = Query::pair(0, 1);
        let nodes = 100_000; // well past the node-count fallback
        let ba_signals = GraphSignals::of_nodes(nodes).with_lambda(ba.lambda());
        let ws_signals = GraphSignals::of_nodes(nodes).with_lambda(ws.lambda());
        // Default threshold 0.1 separates the families.
        let p = planner();
        assert_eq!(
            p.route(&q, Accuracy::default(), ba_signals, PlannerState::default()),
            BackendChoice::Geer
        );
        assert_eq!(
            p.route(&q, Accuracy::default(), ws_signals, PlannerState::default()),
            BackendChoice::ExactCg
        );
        // Crossing upward: a threshold above the BA gap pulls BA into the
        // exact tier too.
        let strict = Planner::new(PlannerConfig::default().with_lambda_gap_threshold(0.9));
        assert_eq!(
            strict.route(&q, Accuracy::default(), ba_signals, PlannerState::default()),
            BackendChoice::ExactCg
        );
        // Crossing downward: a threshold below the WS gap (or 0, disabling
        // the rule) releases WS to GEER.
        let lax = Planner::new(PlannerConfig::default().with_lambda_gap_threshold(0.01));
        assert_eq!(
            lax.route(&q, Accuracy::default(), ws_signals, PlannerState::default()),
            BackendChoice::Geer
        );
        let off = Planner::new(PlannerConfig::default().with_lambda_gap_threshold(0.0));
        assert_eq!(
            off.route(&q, Accuracy::default(), ws_signals, PlannerState::default()),
            BackendChoice::Geer
        );
    }

    #[test]
    fn edge_sets_route_to_hay_and_budgets_to_amc() {
        let p = planner();
        let big = GraphSignals::of_nodes(100_000);
        let edges = Query::edge_set(vec![(0, 1), (1, 2)]);
        assert_eq!(
            p.route(&edges, Accuracy::default(), big, PlannerState::default()),
            BackendChoice::Hay
        );
        assert_eq!(
            p.route(
                &edges,
                Accuracy::WalkBudget(100),
                big,
                PlannerState::default()
            ),
            BackendChoice::Hay
        );
        let pair = Query::pair(0, 9);
        assert_eq!(
            p.route(
                &pair,
                Accuracy::WalkBudget(100),
                big,
                PlannerState::default()
            ),
            BackendChoice::Amc
        );
    }

    #[test]
    fn repeated_source_batches_prefer_the_index() {
        let p = planner();
        let pairs: Vec<_> = (1..40).map(|t| (0usize, t)).collect();
        let batch = Query::batch(pairs);
        // Small graph: the index is worth building outright.
        assert_eq!(
            p.route(
                &batch,
                Accuracy::default(),
                GraphSignals::of_nodes(200),
                PlannerState::default()
            ),
            BackendChoice::Index
        );
        // Large graph, index not built: GEER (building a full diagonal for
        // one batch would be n solves).
        assert_eq!(
            p.route(
                &batch,
                Accuracy::default(),
                GraphSignals::of_nodes(100_000),
                PlannerState::default()
            ),
            BackendChoice::Geer
        );
        // Large graph, index already paid for: re-use it.
        assert_eq!(
            p.route(
                &batch,
                Accuracy::default(),
                GraphSignals::of_nodes(100_000),
                PlannerState { index_ready: true }
            ),
            BackendChoice::Index
        );
    }

    #[test]
    fn exact_accuracy_routes_to_cg_or_index() {
        let p = planner();
        let q = Query::pair(0, 1);
        let big = GraphSignals::of_nodes(100_000);
        assert_eq!(
            p.route(&q, Accuracy::Exact, big, PlannerState::default()),
            BackendChoice::ExactCg
        );
        assert_eq!(
            p.route(&q, Accuracy::Exact, big, PlannerState { index_ready: true }),
            BackendChoice::Index
        );
        // A repeated-source exact batch justifies *building* the index only
        // on small graphs: on a large graph without an index, per-pair CG
        // (16 solves) beats the n-solve diagonal build.
        let batch = Query::batch((1..40).map(|t| (0usize, t)).collect());
        assert_eq!(
            p.route(
                &batch,
                Accuracy::Exact,
                GraphSignals::of_nodes(200),
                PlannerState::default()
            ),
            BackendChoice::Index
        );
        assert_eq!(
            p.route(&batch, Accuracy::Exact, big, PlannerState::default()),
            BackendChoice::ExactCg
        );
        assert_eq!(
            p.route(
                &batch,
                Accuracy::Exact,
                big,
                PlannerState { index_ready: true }
            ),
            BackendChoice::Index
        );
    }

    #[test]
    fn planner_config_thresholds_steer_routing() {
        // Raising the exact-node threshold pulls a mid-sized graph back into
        // the exact tier; lowering it pushes a small graph to sampling.
        let q = Query::pair(0, 1);
        let eager = Planner::new(PlannerConfig::default().with_exact_node_threshold(100_000));
        assert_eq!(
            eager.route(
                &q,
                Accuracy::default(),
                GraphSignals::of_nodes(50_000),
                PlannerState::default()
            ),
            BackendChoice::ExactCg
        );
        let lazy = Planner::new(PlannerConfig::default().with_exact_node_threshold(10));
        assert_eq!(
            lazy.route(
                &q,
                Accuracy::default(),
                GraphSignals::of_nodes(500),
                PlannerState::default()
            ),
            BackendChoice::Geer
        );
        // A lower repeated-source threshold routes smaller one-source batches
        // to the index.
        let batch = Query::batch((1..5).map(|t| (0usize, t)).collect());
        let keen = Planner::new(PlannerConfig::default().with_repeated_source_threshold(4));
        assert_eq!(
            keen.route(
                &batch,
                Accuracy::default(),
                GraphSignals::of_nodes(100_000),
                PlannerState { index_ready: true }
            ),
            BackendChoice::Index
        );
        assert_eq!(
            Planner::default().route(
                &batch,
                Accuracy::default(),
                GraphSignals::of_nodes(100_000),
                PlannerState { index_ready: true }
            ),
            BackendChoice::Geer,
            "default threshold (16) leaves a 4-pair batch with GEER"
        );
        // The threshold floor: 0 is clamped to 1.
        assert_eq!(
            PlannerConfig::default()
                .with_repeated_source_threshold(0)
                .repeated_source_threshold,
            1
        );
    }

    #[test]
    fn dominant_source_ignores_duplicates_and_self_pairs() {
        assert_eq!(dominant_source_count(&[]), 0);
        assert_eq!(dominant_source_count(&[(3, 3)]), 0);
        // (0,1) repeated and reversed counts once; 0 appears in two distinct pairs.
        assert_eq!(dominant_source_count(&[(0, 1), (1, 0), (0, 2), (5, 5)]), 2);
    }

    #[test]
    fn backend_names_parse_back() {
        for choice in [
            BackendChoice::Geer,
            BackendChoice::Amc,
            BackendChoice::Smm,
            BackendChoice::Tp,
            BackendChoice::Tpc,
            BackendChoice::Rp,
            BackendChoice::Mc,
            BackendChoice::Mc2,
            BackendChoice::Hay,
            BackendChoice::ExactDense,
            BackendChoice::ExactCg,
            BackendChoice::Index,
            BackendChoice::Landmark,
        ] {
            assert_eq!(
                BackendChoice::parse(choice.name()),
                Some(choice),
                "{choice:?}"
            );
        }
        assert_eq!(BackendChoice::parse("cg"), Some(BackendChoice::ExactCg));
        assert_eq!(BackendChoice::parse("bogus"), None);
    }
}
