//! Client-side vocabulary of the serving plane: [`Ticket`]s, submit-time
//! scheduling hints ([`Priority`], [`SubmitOptions`]) and the per-client
//! [`Session`] convenience wrapper.
//!
//! A [`ServerHandle::submit`](crate::ServerHandle::submit) enqueues work and
//! returns a [`Ticket`] immediately; the caller collects the [`Response`]
//! with [`Ticket::wait`] (blocking) or polls with [`Ticket::try_wait`].
//! Deduplicated requests share one completion slot, so `k` identical
//! in-flight tickets are all fulfilled by a single computation.

use crate::error::ServiceError;
use crate::planner::BackendChoice;
use crate::query::{Accuracy, Query, Request};
use crate::response::Response;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Scheduling priority of a request. Workers always pick the
/// highest-priority queued job first; within a priority, earlier deadlines
/// run first, then FIFO order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: runs when nothing more urgent is queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: jumps the queue.
    High,
}

/// Per-submit scheduling options: a [`Priority`] and an optional deadline
/// (relative to the submit call). A request whose deadline passes before a
/// worker picks it up is completed with [`ServiceError::DeadlineExceeded`]
/// without running — admission control for callers that would discard a
/// stale answer anyway. Requests carrying a deadline are never merged by
/// the server's dedup tier (each keeps its own expiry); they still benefit
/// from the service cache like everyone else.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Scheduling priority (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Drop the request (with [`ServiceError::DeadlineExceeded`]) if it has
    /// not *started* within this duration of being submitted. `None` = never.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options with an explicit priority.
    pub fn with_priority(mut self, priority: Priority) -> SubmitOptions {
        self.priority = priority;
        self
    }

    /// Options with a start deadline relative to submit time.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// The completion slot shared between a submitter and the worker that
/// fulfils the job — and, for deduplicated requests, between *all* waiters
/// of the shared computation.
#[derive(Debug)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Result<Response, ServiceError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Stores the result and wakes every waiter. Idempotent: the first
    /// completion wins (a job is only fulfilled once).
    pub(crate) fn complete(&self, result: Result<Response, ServiceError>) {
        let mut state = self.state.lock().expect("response slot poisoned");
        if state.is_none() {
            *state = Some(result);
            self.ready.notify_all();
        }
    }

    /// Copies a result for fan-out to several waiters (`Response` clones,
    /// `ServiceError` goes through [`ServiceError::duplicate`]).
    pub(crate) fn clone_result(
        result: &Result<Response, ServiceError>,
    ) -> Result<Response, ServiceError> {
        match result {
            Ok(response) => Ok(response.clone()),
            Err(e) => Err(e.duplicate()),
        }
    }
}

/// A claim on an in-flight request's [`Response`].
///
/// Returned by [`ServerHandle::submit`](crate::ServerHandle::submit).
/// Dropping a ticket abandons the claim; the computation still runs (other
/// deduplicated waiters may hold tickets on it).
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Ticket {
        Ticket { slot }
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<Response, ServiceError> {
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(result) = state.as_ref() {
                return ResponseSlot::clone_result(result);
            }
            state = self.slot.ready.wait(state).expect("response slot poisoned");
        }
    }

    /// Non-blocking poll: `Some(result)` once the request has completed,
    /// `None` while it is still queued or running. The ticket stays valid
    /// either way — poll again or [`wait`](Self::wait) later.
    pub fn try_wait(&self) -> Option<Result<Response, ServiceError>> {
        self.slot
            .state
            .lock()
            .expect("response slot poisoned")
            .as_ref()
            .map(ResponseSlot::clone_result)
    }

    /// Whether the request has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.slot
            .state
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }
}

/// A per-client view of a server: carries default accuracy, backend
/// override, priority and deadline, so call sites submit plain [`Query`]s.
///
/// ```
/// use er_service::{Accuracy, Priority, Query, ResistanceServer, ResistanceService, ServerConfig};
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(200, 8.0, 7).unwrap();
/// let service = ResistanceService::new(&graph).unwrap();
/// let handle = ResistanceServer::spawn(service, ServerConfig::default());
///
/// let session = handle
///     .session()
///     .with_accuracy(Accuracy::epsilon(0.2))
///     .with_priority(Priority::High);
/// let r = session.resistance(0, 100).unwrap();
/// assert!(r > 0.0);
/// handle.shutdown();
/// ```
#[derive(Clone)]
pub struct Session {
    handle: crate::server::ServerHandle,
    accuracy: Accuracy,
    backend: Option<BackendChoice>,
    options: SubmitOptions,
}

impl Session {
    pub(crate) fn new(handle: crate::server::ServerHandle) -> Session {
        Session {
            handle,
            accuracy: Accuracy::default(),
            backend: None,
            options: SubmitOptions::default(),
        }
    }

    /// Sets the session's default accuracy target.
    #[must_use]
    pub fn with_accuracy(mut self, accuracy: Accuracy) -> Session {
        self.accuracy = accuracy;
        self
    }

    /// Forces a backend for every query of this session.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Session {
        self.backend = Some(backend);
        self
    }

    /// Sets the session's scheduling priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Session {
        self.options.priority = priority;
        self
    }

    /// Sets a start deadline applied to every query of this session.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Session {
        self.options.deadline = Some(deadline);
        self
    }

    /// Submits a query with the session's defaults; returns its [`Ticket`].
    pub fn submit(&self, query: Query) -> Result<Ticket, ServiceError> {
        let mut request = Request::new(query).with_accuracy(self.accuracy);
        if let Some(backend) = self.backend {
            request = request.with_backend(backend);
        }
        self.handle.submit_with(request, self.options)
    }

    /// Convenience: one pair query, submitted and awaited.
    pub fn resistance(
        &self,
        s: er_graph::NodeId,
        t: er_graph::NodeId,
    ) -> Result<f64, ServiceError> {
        Ok(self.submit(Query::pair(s, t))?.wait()?.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn submit_options_builders() {
        let opts = SubmitOptions::default()
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(5));
        assert_eq!(opts.priority, Priority::High);
        assert_eq!(opts.deadline, Some(Duration::from_millis(5)));
        assert_eq!(SubmitOptions::default().deadline, None);
    }

    #[test]
    fn tickets_observe_slot_completion() {
        let slot = ResponseSlot::new();
        let ticket = Ticket::new(slot.clone());
        assert!(!ticket.is_done());
        assert!(ticket.try_wait().is_none());
        slot.complete(Err(ServiceError::DeadlineExceeded));
        // Completion is idempotent: a second result is ignored.
        slot.complete(Err(ServiceError::ServerShutdown));
        assert!(ticket.is_done());
        assert!(matches!(
            ticket.try_wait(),
            Some(Err(ServiceError::DeadlineExceeded))
        ));
        assert!(matches!(ticket.wait(), Err(ServiceError::DeadlineExceeded)));
    }

    #[test]
    fn fanout_waiters_all_receive_the_result() {
        let slot = ResponseSlot::new();
        let tickets: Vec<Ticket> = (0..3).map(|_| Ticket::new(slot.clone())).collect();
        let waiters: Vec<_> = tickets
            .into_iter()
            .map(|t| std::thread::spawn(move || t.wait()))
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        slot.complete(Err(ServiceError::ServerShutdown));
        for w in waiters {
            assert!(matches!(
                w.join().unwrap(),
                Err(ServiceError::ServerShutdown)
            ));
        }
    }
}
