//! The concurrent serving front end: a worker pool over one shared
//! [`ResistanceService`].
//!
//! [`ResistanceServer::spawn`] takes ownership of a service and starts
//! `workers` threads; the returned [`ServerHandle`] is cheaply cloneable, so
//! any number of client threads can [`submit`](ServerHandle::submit)
//! concurrently. Each submit is *admitted* (or rejected with
//! [`ServiceError::Overloaded`] when the bounded queue is full) and returns a
//! [`Ticket`] immediately; the response is collected with [`Ticket::wait`].
//!
//! The scheduler layers four policies over the plain FIFO queue:
//!
//! * **Admission / backpressure** — at most
//!   [`queue_depth`](ServerConfig::queue_depth) jobs wait at once; beyond
//!   that, submits fail fast instead of hiding unbounded latency.
//! * **Priorities and deadlines** — workers pick the highest
//!   [`Priority`](crate::Priority) first, earliest start-deadline within a
//!   priority; a job whose deadline lapses before it starts completes with
//!   [`ServiceError::DeadlineExceeded`] without running.
//! * **Dedup** — a submit identical to a *queued* request (same query,
//!   accuracy, backend override) attaches to the existing job: one
//!   computation fans out to every waiter's ticket. A submit identical to a
//!   **running** job attaches to that execution too (counted by
//!   [`ServerStats::attached_running`]); if the job finishes between lookup
//!   and attach, the submit is served from its just-published result
//!   instead, so the completion race costs nothing. Deadline-free submits
//!   only — a request with a deadline always gets its own job, so nobody
//!   inherits (or loses) an expiry they did not ask for.
//! * **Coalescing** — when a worker picks a pair-shaped job it also drains
//!   compatible queued jobs (same accuracy class and planned backend) and
//!   answers them as one batch plan via
//!   [`ResistanceService::submit_coalesced`], so GEER's parallel fan-out and
//!   HAY's spanning-tree pool amortize across clients. Compatibility is
//!   resolved **at admission** into per-class ready-lists, so a worker finds
//!   its peers with one map lookup and O(1) pops instead of re-planning the
//!   whole queued-job map under the scheduler lock.
//!
//! **Determinism.** RNG streams derive from request content (see
//! [`ResistanceService::submit`]), so every response is bit-identical
//! regardless of worker count, arrival order, or whether a query was
//! coalesced, deduped, cached or served alone — pinned by `tests/server.rs`.

use crate::error::ServiceError;
use crate::query::{Accuracy, Query, Request};
use crate::response::Response;
use crate::service::ResistanceService;
use crate::session::{ResponseSlot, Session, SubmitOptions, Ticket};
use er_walks::par::resolve_threads;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`ResistanceServer`] worker pool.
///
/// ```
/// use er_service::ServerConfig;
///
/// let config = ServerConfig {
///     workers: 4,
///     queue_depth: 128,
///     ..ServerConfig::default()
/// };
/// assert!(config.coalescing);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing requests (0 = all cores). Responses are
    /// bit-identical at any worker count.
    pub workers: usize,
    /// Bound on jobs waiting in the queue; submits beyond it are rejected
    /// with [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Whether workers coalesce compatible queued pair queries into one
    /// batch plan (identical values either way; coalescing only saves work).
    pub coalescing: bool,
    /// Maximum number of requests merged into one coalesced execution.
    pub max_coalesce: usize,
    /// Start with the workers paused (jobs are admitted and queued but not
    /// executed until [`ServerHandle::resume`]); used to stage queue-level
    /// tests and warm-up sequences deterministically.
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_depth: 1024,
            coalescing: true,
            max_coalesce: 32,
            start_paused: false,
        }
    }
}

/// Counters describing what the server has done so far (monotone; read with
/// [`ServerHandle::stats`]).
///
/// A snapshot is **coherent**: every counter is read under one lock, and the
/// scheduler groups causally-related increments into single critical
/// sections, so a mid-scrape snapshot never reports impossibilities like
/// `completed > submitted` or a coalesced batch without its execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue (including deduplicated attachers).
    pub submitted: u64,
    /// Tickets fulfilled (successfully or with an error).
    pub completed: u64,
    /// Backend executions performed (a deduplicated or coalesced execution
    /// counts once however many tickets it served).
    pub executed_jobs: u64,
    /// Submits that attached to an identical queued request instead of
    /// enqueuing a new job.
    pub deduplicated: u64,
    /// Submits that attached to an identical **running** execution (or, when
    /// that execution finished between lookup and attach, were served from
    /// its just-published result).
    pub attached_running: u64,
    /// Coalesced executions (each merging ≥ 2 requests into one plan).
    pub coalesced_batches: u64,
    /// Requests answered through a coalesced execution.
    pub coalesced_requests: u64,
    /// Submits rejected by admission control ([`ServiceError::Overloaded`]).
    pub rejected_overloaded: u64,
    /// Jobs whose deadline lapsed before a worker picked them up.
    pub expired: u64,
}

/// The live counters, behind one lock so readers get a coherent
/// [`ServerStats`] snapshot (never `completed > submitted` mid-scrape) and
/// writers batch causally-related increments into one critical section.
#[derive(Default)]
struct StatsCell {
    inner: Mutex<ServerStats>,
}

impl StatsCell {
    fn update(&self, apply: impl FnOnce(&mut ServerStats)) {
        apply(&mut self.inner.lock().expect("stats poisoned"));
    }

    fn snapshot(&self) -> ServerStats {
        *self.inner.lock().expect("stats poisoned")
    }
}

/// One admitted request: the work, its scheduling attributes and every
/// ticket waiting on it (more than one after dedup).
struct Job {
    request: Request,
    fingerprint: u64,
    deadline: Option<Instant>,
    waiters: Vec<Arc<ResponseSlot>>,
    /// The coalescing class this job was filed under at admission
    /// (pair-shaped jobs with coalescing enabled only).
    coalesce_key: Option<CoalesceKey>,
    /// This job's attach-to-running entry, installed when a worker takes the
    /// job (deadline-free jobs only, under the take lock) and published to
    /// when the result is known.
    running: Option<Arc<Mutex<RunningJob>>>,
}

/// A job a worker has taken off the queue and is executing right now.
/// Registered (deadline-free jobs only) in [`SchedulerState::running`] under
/// the same lock acquisition that removed the job from the queue, so there is
/// no window in which an identical submit sees the request neither queued nor
/// running.
///
/// Late identical submits push their slot into `late_waiters` while `outcome`
/// is `None`; the worker publishes the result into `outcome` (draining
/// `late_waiters`) *before* unregistering the entry, so a submitter that
/// found the entry just as the job finished reads the published result
/// instead of attaching to a drained list — the completion race always
/// resolves to a served ticket.
struct RunningJob {
    /// The executing request, for the full equality check behind the
    /// fingerprint (hash collisions must not attach).
    request: Request,
    /// `None` while executing; the published result afterwards.
    outcome: Option<Result<Response, ServiceError>>,
    /// Tickets attached after the job started running.
    late_waiters: Vec<Arc<ResponseSlot>>,
}

/// What a submit found when it tried to attach to a running execution.
enum AttachOutcome {
    /// The execution is still in flight; the slot now waits on it.
    Attached,
    /// The execution finished between lookup and attach: its published
    /// result serves the submit immediately.
    ServedFromPublished(Result<Response, ServiceError>),
}

/// Tries to attach `slot` to a running execution of `request`. Must be called
/// with the scheduler lock held (the registry lives inside it); locks each
/// candidate entry only long enough to equality-check and either push the
/// slot or copy the published outcome.
fn try_attach_running(
    running: &HashMap<u64, Vec<Arc<Mutex<RunningJob>>>>,
    fingerprint: u64,
    request: &Request,
    slot: &Arc<ResponseSlot>,
) -> Option<AttachOutcome> {
    for entry in running.get(&fingerprint)? {
        let mut run = entry.lock().expect("running job poisoned");
        if run.request != *request {
            continue;
        }
        return Some(match &run.outcome {
            None => {
                run.late_waiters.push(slot.clone());
                AttachOutcome::Attached
            }
            Some(result) => AttachOutcome::ServedFromPublished(ResponseSlot::clone_result(result)),
        });
    }
    None
}

/// The equivalence class under which pair-shaped jobs may be answered as one
/// batch plan: accuracy target, backend override and the planner's solo
/// choice, all captured **at admission**, so a worker picks coalescing peers
/// with one ready-list lookup instead of scanning (and re-planning) the
/// whole queued-job map.
///
/// The planner's choice can drift between admission and execution (e.g. the
/// index warms up mid-queue); [`ResistanceService::submit_coalesced`]
/// re-validates the batch and the worker falls back to solo execution on a
/// mismatch, so a stale key costs at most the coalescing saving, never
/// correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CoalesceKey {
    /// `Accuracy` with its floats bit-cast, so the key is hashable.
    accuracy: (u8, u64, u64),
    backend: Option<crate::BackendChoice>,
    choice: crate::BackendChoice,
}

impl CoalesceKey {
    fn of(service: &ResistanceService, request: &Request) -> Option<CoalesceKey> {
        if !request.query.shape().is_pairwise() {
            return None;
        }
        let accuracy = match request.accuracy {
            Accuracy::Epsilon { eps, delta } => (0u8, eps.to_bits(), delta.to_bits()),
            Accuracy::WalkBudget(budget) => (1u8, budget, 0),
            Accuracy::Exact => (2u8, 0, 0),
        };
        Some(CoalesceKey {
            accuracy,
            backend: request.backend,
            choice: service.plan(request),
        })
    }
}

/// Heap entry ordering: priority first, then earliest deadline, then FIFO.
/// A job re-prioritized by a deduplicated submit gets a second entry; stale
/// entries (their job already taken) are skipped on pop.
#[derive(PartialEq, Eq)]
struct QueueEntry {
    priority: crate::session::Priority,
    deadline: Option<Instant>,
    seq: u64,
    job: u64,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                // Earlier deadline = more urgent = greater (BinaryHeap pops max).
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (None, None) => std::cmp::Ordering::Equal,
            })
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct SchedulerState {
    queue: BinaryHeap<QueueEntry>,
    /// Queued jobs by id (removed when a worker takes the job).
    jobs: HashMap<u64, Job>,
    /// Dedup map: request fingerprint → queued job id.
    in_flight: HashMap<u64, u64>,
    /// Attach-to-running registry: fingerprint → the deadline-free jobs
    /// currently executing under it (a `Vec` because distinct requests can
    /// collide on the fingerprint; entries are told apart by `Arc` identity).
    /// Entries are inserted under the take lock and removed after their
    /// result is published.
    running: HashMap<u64, Vec<Arc<Mutex<RunningJob>>>>,
    /// Per-[`CoalesceKey`] ready-lists of queued job ids, FIFO. Peer
    /// selection pops from the picked job's list in O(1) per peer; ids whose
    /// job was already taken (as a primary, a peer, or expired) are dropped
    /// lazily on pop, so every drain also cleans its list.
    ready: HashMap<CoalesceKey, VecDeque<u64>>,
    next_job: u64,
    next_seq: u64,
    paused: bool,
    shutdown: bool,
}

struct ServerShared {
    service: ResistanceService,
    config: ServerConfig,
    state: Mutex<SchedulerState>,
    work_ready: Condvar,
    stats: StatsCell,
    handles: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A stable content hash of a request, for dedup of identical in-flight
/// queries. Collisions are tolerated: the scheduler confirms with a full
/// equality check before attaching.
fn fingerprint(request: &Request) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    match &request.query {
        Query::Pair { s, t } => {
            0u8.hash(&mut h);
            s.hash(&mut h);
            t.hash(&mut h);
        }
        Query::Batch { pairs } => {
            1u8.hash(&mut h);
            pairs.hash(&mut h);
        }
        Query::SingleSource { source } => {
            2u8.hash(&mut h);
            source.hash(&mut h);
        }
        Query::Diagonal => 3u8.hash(&mut h),
        Query::EdgeSet { edges } => {
            4u8.hash(&mut h);
            edges.hash(&mut h);
        }
        Query::TopK { source, k } => {
            5u8.hash(&mut h);
            source.hash(&mut h);
            k.hash(&mut h);
        }
    }
    match request.accuracy {
        Accuracy::Epsilon { eps, delta } => {
            0u8.hash(&mut h);
            eps.to_bits().hash(&mut h);
            delta.to_bits().hash(&mut h);
        }
        Accuracy::WalkBudget(b) => {
            1u8.hash(&mut h);
            b.hash(&mut h);
        }
        Accuracy::Exact => 2u8.hash(&mut h),
    }
    request.backend.hash(&mut h);
    h.finish()
}

/// The serving front end. [`spawn`](Self::spawn) is the only entry point: it
/// consumes a [`ResistanceService`] and hands back a [`ServerHandle`].
///
/// ```
/// use er_service::{Query, Request, ResistanceServer, ResistanceService, ServerConfig};
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(300, 8.0, 7).unwrap();
/// let service = ResistanceService::new(&graph).unwrap();
/// let handle = ResistanceServer::spawn(service, ServerConfig::default());
///
/// // Submit returns immediately with a ticket; wait() collects the answer.
/// let fast = handle.submit(Request::new(Query::pair(0, 100))).unwrap();
/// let slow = handle.submit(Request::new(Query::pair(0, 150))).unwrap();
/// assert!(fast.wait().unwrap().value() > 0.0);
/// assert!(slow.wait().unwrap().value() > 0.0);
///
/// // Handles clone cheaply for other client threads.
/// let clone = handle.clone();
/// assert!(clone.stats().completed >= 2);
/// handle.shutdown();
/// ```
pub struct ResistanceServer {
    _private: (),
}

impl ResistanceServer {
    /// Starts the worker pool over `service` and returns the first handle.
    /// Workers exit once every handle is dropped (draining the queue first)
    /// or on [`ServerHandle::shutdown`].
    pub fn spawn(service: ResistanceService, config: ServerConfig) -> ServerHandle {
        let config = ServerConfig {
            workers: resolve_threads(config.workers),
            queue_depth: config.queue_depth.max(1),
            max_coalesce: config.max_coalesce.max(1),
            ..config
        };
        let shared = Arc::new(ServerShared {
            service,
            config,
            state: Mutex::new(SchedulerState {
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                in_flight: HashMap::new(),
                running: HashMap::new(),
                ready: HashMap::new(),
                next_job: 0,
                next_seq: 0,
                paused: config.start_paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            stats: StatsCell::default(),
            handles: AtomicUsize::new(1),
            workers: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("er-serve-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn server worker"),
            );
        }
        *shared.workers.lock().expect("worker list poisoned") = threads;
        ServerHandle { shared }
    }
}

/// A cloneable client handle on a running [`ResistanceServer`].
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl Clone for ServerHandle {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, AtomicOrdering::SeqCst);
        ServerHandle {
            shared: self.shared.clone(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, AtomicOrdering::SeqCst) == 1 {
            // Last handle gone: drain the queue and let the workers exit.
            begin_shutdown(&self.shared);
        }
    }
}

fn begin_shutdown(shared: &ServerShared) {
    let mut st = shared.state.lock().expect("scheduler state poisoned");
    st.shutdown = true;
    // A paused server still drains: pending tickets must complete.
    st.paused = false;
    drop(st);
    shared.work_ready.notify_all();
}

impl ServerHandle {
    /// Admits a request with default options; returns its [`Ticket`], or
    /// [`ServiceError::Overloaded`] when the queue is full.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServiceError> {
        self.submit_with(request, SubmitOptions::default())
    }

    /// Admits a request with explicit priority/deadline options.
    pub fn submit_with(
        &self,
        request: Request,
        options: SubmitOptions,
    ) -> Result<Ticket, ServiceError> {
        let slot = ResponseSlot::new();
        let fp = fingerprint(&request);
        // Planning is lock-free, so the coalescing class is computed before
        // the scheduler lock; workers then find peers by list lookup alone.
        // max_coalesce <= 1 means no batch can ever grow beyond its primary,
        // so filing jobs in ready-lists would only accumulate ids that no
        // drain ever pops — treat it as coalescing off.
        let coalesce_key = if self.shared.config.coalescing && self.shared.config.max_coalesce > 1 {
            CoalesceKey::of(&self.shared.service, &request)
        } else {
            None
        };
        let mut st = self.shared.state.lock().expect("scheduler state poisoned");
        if st.shutdown {
            return Err(ServiceError::ServerShutdown);
        }
        // Dedup: attach to an identical queued job (one computation, many
        // tickets). A higher-priority attacher re-queues the job so it keeps
        // the most urgent of its waiters' priorities. Requests carrying a
        // deadline never participate — a job has ONE deadline, and silently
        // merging waiters with different (or no) deadlines could expire a
        // ticket whose caller never asked for one. Deadline submits enqueue
        // their own job instead; the cache tier still dedups the *work*.
        if let Some(&job_id) = st.in_flight.get(&fp) {
            let identical = options.deadline.is_none()
                && st
                    .jobs
                    .get(&job_id)
                    .is_some_and(|job| job.request == request && job.deadline.is_none());
            if identical {
                let deadline = {
                    let job = st.jobs.get_mut(&job_id).expect("in_flight maps live jobs");
                    job.waiters.push(slot.clone());
                    job.deadline
                };
                let seq = st.next_seq;
                st.next_seq += 1;
                st.queue.push(QueueEntry {
                    priority: options.priority,
                    deadline,
                    seq,
                    job: job_id,
                });
                self.shared.stats.update(|s| {
                    s.submitted += 1;
                    s.deduplicated += 1;
                });
                drop(st);
                self.shared.work_ready.notify_one();
                return Ok(Ticket::new(slot));
            }
        }
        // Attach-to-running: a submit identical to a job a worker is
        // executing *right now* rides that execution instead of enqueuing a
        // duplicate. Same deadline rule as queued dedup; additionally only
        // deadline-free jobs register in the running map, so an attacher can
        // never observe a `DeadlineExceeded` it did not ask for. If the job
        // finished between lookup and attach, its just-published result
        // serves the submit directly (see [`RunningJob`]).
        if options.deadline.is_none() {
            match try_attach_running(&st.running, fp, &request, &slot) {
                Some(AttachOutcome::Attached) => {
                    self.shared.stats.update(|s| {
                        s.submitted += 1;
                        s.attached_running += 1;
                    });
                    return Ok(Ticket::new(slot));
                }
                Some(AttachOutcome::ServedFromPublished(result)) => {
                    self.shared.stats.update(|s| {
                        s.submitted += 1;
                        s.attached_running += 1;
                        s.completed += 1;
                    });
                    slot.complete(result);
                    return Ok(Ticket::new(slot));
                }
                None => {}
            }
        }
        // Admission control: bounded queue.
        if st.jobs.len() >= self.shared.config.queue_depth {
            self.shared.stats.update(|s| s.rejected_overloaded += 1);
            return Err(ServiceError::Overloaded {
                queue_depth: self.shared.config.queue_depth,
            });
        }
        let job_id = st.next_job;
        st.next_job += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let deadline = options.deadline.map(|d| Instant::now() + d);
        st.in_flight.insert(fp, job_id);
        if let Some(key) = coalesce_key {
            st.ready.entry(key).or_default().push_back(job_id);
        }
        st.jobs.insert(
            job_id,
            Job {
                request,
                fingerprint: fp,
                deadline,
                waiters: vec![slot.clone()],
                coalesce_key,
                running: None,
            },
        );
        st.queue.push(QueueEntry {
            priority: options.priority,
            deadline,
            seq,
            job: job_id,
        });
        self.shared.stats.update(|s| s.submitted += 1);
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(Ticket::new(slot))
    }

    /// A [`Session`] bound to this server, for per-client defaults.
    pub fn session(&self) -> Session {
        Session::new(self.clone())
    }

    /// The shared service underneath (e.g. for [`plan`] previews or cache
    /// statistics).
    ///
    /// [`plan`]: ResistanceService::plan
    pub fn service(&self) -> &ResistanceService {
        &self.shared.service
    }

    /// Coherent snapshot of the server's counters: every field is read under
    /// one lock, so the snapshot never exhibits mid-update impossibilities
    /// (e.g. `completed > submitted`) — what a `/metrics` scrape relies on.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Number of jobs currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("scheduler state poisoned")
            .jobs
            .len()
    }

    /// Number of worker threads serving this server.
    pub fn worker_count(&self) -> usize {
        self.shared.config.workers
    }

    /// Unpauses a server spawned with
    /// [`start_paused`](ServerConfig::start_paused).
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().expect("scheduler state poisoned");
        st.paused = false;
        drop(st);
        self.shared.work_ready.notify_all();
    }

    /// Stops admitting requests, drains every queued job (all outstanding
    /// tickets complete) and joins the worker threads.
    pub fn shutdown(self) {
        begin_shutdown(&self.shared);
        let threads = std::mem::take(&mut *self.shared.workers.lock().expect("worker list"));
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Completes every waiter of a job with copies of one result. The counters
/// move first (in one coherent update that also covers `extra`) so a caller
/// woken by the last ticket observes them.
fn complete_job(
    shared: &ServerShared,
    job: &Job,
    result: &Result<Response, ServiceError>,
    extra: impl FnOnce(&mut ServerStats),
) {
    shared.stats.update(|s| {
        s.completed += job.waiters.len() as u64;
        extra(s);
    });
    for slot in &job.waiters {
        slot.complete(ResponseSlot::clone_result(result));
    }
}

/// Publishes a finished job's result to its attach-to-running entry: the
/// outcome is stored and the late waiters drained *before* the entry is
/// unregistered, so a submitter that looked the entry up just as the job
/// finished still reads the published result (the completion race of the
/// dedup tier). No-op for jobs that never registered (deadline jobs).
fn publish_running(shared: &ServerShared, job: &Job, result: &Result<Response, ServiceError>) {
    let Some(entry) = &job.running else { return };
    let late = {
        let mut run = entry.lock().expect("running job poisoned");
        run.outcome = Some(ResponseSlot::clone_result(result));
        std::mem::take(&mut run.late_waiters)
    };
    if !late.is_empty() {
        shared.stats.update(|s| s.completed += late.len() as u64);
        for slot in &late {
            slot.complete(ResponseSlot::clone_result(result));
        }
    }
    // Unregister last: submits that already hold the Arc observe `outcome`.
    let mut st = shared.state.lock().expect("scheduler state poisoned");
    if let Some(list) = st.running.get_mut(&job.fingerprint) {
        list.retain(|candidate| !Arc::ptr_eq(candidate, entry));
        if list.is_empty() {
            st.running.remove(&job.fingerprint);
        }
    }
}

fn worker_loop(shared: &ServerShared) {
    loop {
        // Take the most urgent live job — plus, when coalescing is on, every
        // compatible queued pair job — under the scheduler lock.
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut st = shared.state.lock().expect("scheduler state poisoned");
            let primary = loop {
                if !st.paused {
                    let mut found = None;
                    while let Some(entry) = st.queue.pop() {
                        // Stale entries (job already taken by another worker
                        // or by a coalesced batch) are skipped.
                        if let Some(job) = st.jobs.remove(&entry.job) {
                            st.in_flight.remove(&job.fingerprint);
                            found = Some(job);
                            break;
                        }
                    }
                    if let Some(job) = found {
                        break job;
                    }
                }
                if st.shutdown && st.jobs.is_empty() {
                    return;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .expect("scheduler state poisoned");
            };
            let coalesce_key = if shared.config.coalescing {
                primary.coalesce_key
            } else {
                None
            };
            batch.push(primary);
            if let Some(key) = coalesce_key {
                // O(1) peer selection: pop queued job ids off the key's
                // ready-list. Stale ids (job already taken or expired) are
                // dropped as they surface, so the drain doubles as cleanup;
                // the primary's own entry is one of them.
                let state = &mut *st;
                let emptied = if let Some(list) = state.ready.get_mut(&key) {
                    while batch.len() < shared.config.max_coalesce {
                        let Some(id) = list.pop_front() else { break };
                        if let Some(job) = state.jobs.remove(&id) {
                            state.in_flight.remove(&job.fingerprint);
                            batch.push(job);
                        }
                    }
                    list.is_empty()
                } else {
                    false
                };
                if emptied {
                    state.ready.remove(&key);
                }
            }
            // Register every deadline-free job taken this round in the
            // attach-to-running registry — under the SAME lock acquisition
            // that removed it from the queue, so an identical submit never
            // finds the request neither queued nor running. Deadline jobs
            // stay out (nobody may attach to them) and are exactly the ones
            // that can still expire below.
            for job in &mut batch {
                if job.deadline.is_none() {
                    let entry = Arc::new(Mutex::new(RunningJob {
                        request: job.request.clone(),
                        outcome: None,
                        late_waiters: Vec::new(),
                    }));
                    st.running
                        .entry(job.fingerprint)
                        .or_default()
                        .push(entry.clone());
                    job.running = Some(entry);
                }
            }
        }

        // Expire jobs whose start deadline has already lapsed.
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.deadline.is_none_or(|d| now <= d));
        for job in &expired {
            complete_job(shared, job, &Err(ServiceError::DeadlineExceeded), |s| {
                s.expired += 1
            });
        }

        // Execute outside the lock: other workers keep popping meanwhile.
        match live.len() {
            0 => {}
            1 => {
                let job = &live[0];
                let result = shared.service.submit(&job.request);
                complete_job(shared, job, &result, |s| s.executed_jobs += 1);
                publish_running(shared, job, &result);
            }
            n => {
                let requests: Vec<&Request> = live.iter().map(|job| &job.request).collect();
                match shared.service.submit_coalesced(&requests) {
                    Ok(responses) => {
                        shared.stats.update(|s| {
                            s.executed_jobs += 1;
                            s.coalesced_batches += 1;
                            s.coalesced_requests += n as u64;
                        });
                        for (job, response) in live.iter().zip(responses) {
                            let result = Ok(response);
                            complete_job(shared, job, &result, |_| {});
                            publish_running(shared, job, &result);
                        }
                    }
                    Err(_) => {
                        // One bad member (e.g. an out-of-range node) must not
                        // poison its peers: fall back to solo execution, which
                        // yields identical values and isolates the error.
                        for job in &live {
                            let result = shared.service.submit(&job.request);
                            complete_job(shared, job, &result, |s| s.executed_jobs += 1);
                            publish_running(shared, job, &result);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Priority;
    use er_graph::generators;
    use std::time::Duration;

    fn server(n: usize, config: ServerConfig) -> ServerHandle {
        let g = generators::social_network_like(n, 8.0, 7).unwrap();
        ResistanceServer::spawn(ResistanceService::new(&g).unwrap(), config)
    }

    #[test]
    fn queue_entries_order_by_priority_then_deadline_then_fifo() {
        let now = Instant::now();
        let entry = |priority, deadline, seq| QueueEntry {
            priority,
            deadline,
            seq,
            job: 0,
        };
        let mut heap = BinaryHeap::new();
        heap.push(entry(Priority::Low, None, 0));
        heap.push(entry(Priority::High, None, 3));
        heap.push(entry(
            Priority::Normal,
            Some(now + Duration::from_secs(5)),
            2,
        ));
        heap.push(entry(
            Priority::Normal,
            Some(now + Duration::from_secs(1)),
            4,
        ));
        heap.push(entry(Priority::Normal, None, 1));
        let order: Vec<(Priority, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.priority, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (Priority::High, 3),
                (Priority::Normal, 4), // earliest deadline
                (Priority::Normal, 2),
                (Priority::Normal, 1), // no deadline, FIFO
                (Priority::Low, 0),
            ]
        );
    }

    #[test]
    fn fingerprints_distinguish_accuracy_and_backend() {
        let base = Request::new(Query::pair(0, 9));
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
        assert_ne!(
            fingerprint(&base),
            fingerprint(&base.clone().with_accuracy(Accuracy::Exact))
        );
        assert_ne!(
            fingerprint(&base),
            fingerprint(&base.clone().with_backend(crate::BackendChoice::Geer))
        );
        assert_ne!(
            fingerprint(&base),
            fingerprint(&Request::new(Query::pair(0, 10)))
        );
    }

    /// Deterministic reproduction of the attach/completion race at the
    /// registry level: a submit that found a running entry *after* the worker
    /// published the result (but before the entry was unregistered) must be
    /// served from the published outcome, never attach to a drained waiter
    /// list.
    #[test]
    fn attach_after_publish_is_served_from_the_published_result() {
        let request = Request::new(Query::pair(0, 9));
        let fp = fingerprint(&request);
        let entry = Arc::new(Mutex::new(RunningJob {
            request: request.clone(),
            outcome: None,
            late_waiters: Vec::new(),
        }));
        let mut running: HashMap<u64, Vec<Arc<Mutex<RunningJob>>>> = HashMap::new();
        running.insert(fp, vec![entry.clone()]);

        // While the job runs, an identical submit attaches.
        let early = ResponseSlot::new();
        assert!(matches!(
            try_attach_running(&running, fp, &request, &early),
            Some(AttachOutcome::Attached)
        ));
        assert_eq!(entry.lock().unwrap().late_waiters.len(), 1);

        // The worker publishes the outcome and drains the late waiters —
        // exactly what `publish_running` does before unregistering.
        {
            let mut run = entry.lock().unwrap();
            run.outcome = Some(Err(ServiceError::ServerShutdown));
            for slot in std::mem::take(&mut run.late_waiters) {
                slot.complete(Err(ServiceError::ServerShutdown));
            }
        }
        assert!(matches!(
            Ticket::new(early).wait(),
            Err(ServiceError::ServerShutdown)
        ));

        // The race window: the entry is still registered, the result already
        // published. A new identical submit is served from the outcome.
        let late = ResponseSlot::new();
        match try_attach_running(&running, fp, &request, &late) {
            Some(AttachOutcome::ServedFromPublished(result)) => {
                assert!(matches!(result, Err(ServiceError::ServerShutdown)));
            }
            other => panic!(
                "expected ServedFromPublished, got {:?}",
                other.map(|o| matches!(o, AttachOutcome::Attached))
            ),
        }
        assert!(
            entry.lock().unwrap().late_waiters.is_empty(),
            "nothing may attach to a drained waiter list"
        );
    }

    /// A fingerprint collision between *different* requests must never
    /// attach: the registry confirms with a full equality check.
    #[test]
    fn attach_requires_full_request_equality_not_just_the_fingerprint() {
        let running_request = Request::new(Query::pair(0, 9));
        let fp = fingerprint(&running_request);
        let entry = Arc::new(Mutex::new(RunningJob {
            request: running_request,
            outcome: None,
            late_waiters: Vec::new(),
        }));
        let mut running: HashMap<u64, Vec<Arc<Mutex<RunningJob>>>> = HashMap::new();
        running.insert(fp, vec![entry.clone()]);

        // Same (colliding) fingerprint, different request: no attach.
        let other = Request::new(Query::pair(0, 10));
        let slot = ResponseSlot::new();
        assert!(try_attach_running(&running, fp, &other, &slot).is_none());
        assert!(entry.lock().unwrap().late_waiters.is_empty());
    }

    #[test]
    fn server_round_trip_and_shutdown() {
        let handle = server(150, ServerConfig::default());
        let tickets: Vec<Ticket> = (1..5)
            .map(|t| handle.submit(Request::new(Query::pair(0, t * 30))).unwrap())
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().unwrap().value() > 0.0);
        }
        let clone = handle.clone();
        clone.shutdown(); // joins the workers, so the counters are settled
        let stats = handle.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected_overloaded, 0);
        // The surviving handle is refused after shutdown.
        assert!(matches!(
            handle.submit(Request::new(Query::pair(0, 1))),
            Err(ServiceError::ServerShutdown)
        ));
    }

    #[test]
    fn dropping_all_handles_drains_outstanding_tickets() {
        let handle = server(120, ServerConfig::default());
        let ticket = handle.submit(Request::new(Query::pair(0, 60))).unwrap();
        drop(handle);
        assert!(ticket.wait().unwrap().value() > 0.0);
    }

    #[test]
    fn paused_server_expires_lapsed_deadlines_without_running_them() {
        let handle = server(
            120,
            ServerConfig {
                workers: 1,
                start_paused: true,
                ..ServerConfig::default()
            },
        );
        let doomed = handle
            .submit_with(
                Request::new(Query::pair(0, 60)),
                SubmitOptions::default().with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        let healthy = handle.submit(Request::new(Query::pair(0, 70))).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        handle.resume();
        assert!(matches!(doomed.wait(), Err(ServiceError::DeadlineExceeded)));
        assert!(healthy.wait().unwrap().value() > 0.0);
        let stats = handle.stats();
        assert_eq!(stats.expired, 1);
        handle.shutdown();
    }

    #[test]
    fn deadline_submits_never_merge_with_deduplicated_jobs() {
        let handle = server(
            120,
            ServerConfig {
                workers: 1,
                start_paused: true,
                coalescing: false,
                ..ServerConfig::default()
            },
        );
        let request = Request::new(Query::pair(0, 60));
        // A doomed deadline job, then an identical deadline-free submit: the
        // latter must NOT attach to the former (it would inherit the expiry).
        let doomed = handle
            .submit_with(
                request.clone(),
                SubmitOptions::default().with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        let healthy = handle.submit(request.clone()).unwrap();
        // And a deadline submit must not attach to the queued healthy job.
        let second_doomed = handle
            .submit_with(
                request.clone(),
                SubmitOptions::default().with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        handle.resume();
        assert!(matches!(doomed.wait(), Err(ServiceError::DeadlineExceeded)));
        assert!(matches!(
            second_doomed.wait(),
            Err(ServiceError::DeadlineExceeded)
        ));
        assert!(healthy.wait().unwrap().value() > 0.0);
        let clone = handle.clone();
        clone.shutdown();
        let stats = handle.stats();
        assert_eq!(stats.deduplicated, 0, "deadline submits never merge");
        assert_eq!(stats.expired, 2);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn planner_state_is_lock_free_even_mid_index_build() {
        // plan() must answer instantly while another thread holds the index
        // slot mutex for a build — the scheduler calls it under its queue
        // lock. Simulate the build-side contention by holding the service's
        // planner-relevant state busy with a real index build in another
        // thread and asserting plan() completes meanwhile.
        let g = generators::social_network_like(200, 8.0, 7).unwrap();
        let service = Arc::new(ResistanceService::new(&g).unwrap());
        let builder = {
            let service = service.clone();
            std::thread::spawn(move || service.warm_index().unwrap())
        };
        // Regardless of build progress, planning stays responsive.
        for _ in 0..100 {
            let _ = service.plan(&Request::new(Query::pair(0, 10)));
        }
        builder.join().unwrap();
        assert!(service.planner_state().index_ready);
    }

    #[test]
    fn coalescing_falls_back_to_solo_on_a_poisoned_member() {
        // An out-of-range pair queued next to a healthy one must fail alone.
        let handle = server(
            120,
            ServerConfig {
                workers: 1,
                start_paused: true,
                ..ServerConfig::default()
            },
        );
        let good = handle.submit(Request::new(Query::pair(0, 60))).unwrap();
        let bad = handle.submit(Request::new(Query::pair(0, 9_999))).unwrap();
        handle.resume();
        assert!(good.wait().unwrap().value() > 0.0);
        assert!(bad.wait().is_err());
        handle.shutdown();
    }
}
