//! Error type of the query plane.

use crate::capability::QueryShape;
use er_core::EstimatorError;
use er_index::IndexError;
use std::fmt;

/// Errors produced while planning or answering a request.
#[derive(Debug)]
pub enum ServiceError {
    /// A wrapped estimator failed (invalid node, budget exceeded, …).
    Estimator(EstimatorError),
    /// The index tier failed (diagonal build, column solve, …).
    Index(IndexError),
    /// The requested (or planned) backend cannot answer this query shape.
    UnsupportedShape {
        /// Backend at fault.
        backend: &'static str,
        /// The query shape it was asked to answer.
        shape: QueryShape,
    },
    /// The request itself is malformed (non-edge in an edge set, k = 0, …).
    InvalidRequest {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Estimator(e) => write!(f, "estimator error: {e}"),
            ServiceError::Index(e) => write!(f, "index error: {e}"),
            ServiceError::UnsupportedShape { backend, shape } => {
                write!(f, "backend {backend} cannot answer {shape} queries")
            }
            ServiceError::InvalidRequest { message } => {
                write!(f, "invalid request: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Estimator(e) => Some(e),
            ServiceError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EstimatorError> for ServiceError {
    fn from(e: EstimatorError) -> Self {
        ServiceError::Estimator(e)
    }
}

impl From<IndexError> for ServiceError {
    fn from(e: IndexError) -> Self {
        ServiceError::Index(e)
    }
}

/// Callers that still speak [`EstimatorError`] (the er-apps pipelines) can
/// funnel service failures through their existing signatures.
impl From<ServiceError> for EstimatorError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Estimator(inner) => inner,
            ServiceError::Index(IndexError::Estimator(inner)) => inner,
            ServiceError::Index(IndexError::Graph(g)) => EstimatorError::Graph(g),
            other => EstimatorError::InvalidParameter {
                name: "service",
                message: other.to_string(),
            },
        }
    }
}

/// Callers that still speak [`IndexError`] can likewise funnel service
/// failures through their existing signatures.
impl From<ServiceError> for IndexError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Index(inner) => inner,
            ServiceError::Estimator(inner) => IndexError::Estimator(inner),
            other => IndexError::InvalidConfiguration {
                name: "service",
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::GraphError;

    #[test]
    fn display_covers_all_variants() {
        let e: ServiceError = EstimatorError::NotAnEdge { s: 1, t: 2 }.into();
        assert!(e.to_string().contains("not an edge"));
        let i: ServiceError = IndexError::Graph(GraphError::NotConnected).into();
        assert!(i.to_string().contains("connected"));
        let u = ServiceError::UnsupportedShape {
            backend: "HAY",
            shape: QueryShape::SingleSource,
        };
        assert!(u.to_string().contains("HAY"));
        assert!(u.to_string().contains("single-source"));
        let b = ServiceError::InvalidRequest {
            message: "k must be positive".into(),
        };
        assert!(b.to_string().contains("k must be positive"));
    }

    #[test]
    fn conversions_round_trip_into_legacy_error_types() {
        use std::error::Error;
        let e = ServiceError::Estimator(EstimatorError::NotAnEdge { s: 0, t: 1 });
        assert!(e.source().is_some());
        let back: EstimatorError = e.into();
        assert!(matches!(back, EstimatorError::NotAnEdge { .. }));

        let nested = ServiceError::Index(IndexError::Estimator(EstimatorError::NotAnEdge {
            s: 0,
            t: 1,
        }));
        let back: EstimatorError = nested.into();
        assert!(matches!(back, EstimatorError::NotAnEdge { .. }));

        let shape = ServiceError::UnsupportedShape {
            backend: "MC2",
            shape: QueryShape::Pair,
        };
        let back: IndexError = shape.into();
        assert!(matches!(back, IndexError::InvalidConfiguration { .. }));
    }
}
