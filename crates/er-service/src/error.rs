//! Error type of the query plane.

use crate::capability::QueryShape;
use er_core::EstimatorError;
use er_index::IndexError;
use std::fmt;

/// Errors produced while planning or answering a request.
#[derive(Debug)]
pub enum ServiceError {
    /// A wrapped estimator failed (invalid node, budget exceeded, …).
    Estimator(EstimatorError),
    /// The index tier failed (diagonal build, column solve, …).
    Index(IndexError),
    /// The requested (or planned) backend cannot answer this query shape.
    UnsupportedShape {
        /// Backend at fault.
        backend: &'static str,
        /// The query shape it was asked to answer.
        shape: QueryShape,
    },
    /// The request itself is malformed (non-edge in an edge set, k = 0, …).
    InvalidRequest {
        /// Human-readable description of the problem.
        message: String,
    },
    /// The serving queue is full: admission control rejected the request
    /// instead of letting latency grow without bound. Back off and retry.
    Overloaded {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// The request's deadline passed before a worker picked it up; the
    /// computation was skipped entirely.
    DeadlineExceeded,
    /// The server is shutting down and no longer admits requests.
    ServerShutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Estimator(e) => write!(f, "estimator error: {e}"),
            ServiceError::Index(e) => write!(f, "index error: {e}"),
            ServiceError::UnsupportedShape { backend, shape } => {
                write!(f, "backend {backend} cannot answer {shape} queries")
            }
            ServiceError::InvalidRequest { message } => {
                write!(f, "invalid request: {message}")
            }
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: queue depth {queue_depth} exhausted")
            }
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request was scheduled")
            }
            ServiceError::ServerShutdown => {
                write!(f, "server is shutting down and no longer admits requests")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Estimator(e) => Some(e),
            ServiceError::Index(e) => Some(e),
            _ => None,
        }
    }
}

fn duplicate_graph(e: &er_graph::GraphError) -> er_graph::GraphError {
    use er_graph::GraphError;
    match e {
        GraphError::Empty => GraphError::Empty,
        GraphError::NodeOutOfRange { node, n } => GraphError::NodeOutOfRange { node: *node, n: *n },
        GraphError::NotConnected => GraphError::NotConnected,
        GraphError::Bipartite => GraphError::Bipartite,
        GraphError::Parse { line, message } => GraphError::Parse {
            line: *line,
            message: message.clone(),
        },
        // std::io::Error is not Clone; preserve the kind and re-render the
        // payload.
        GraphError::Io(io) => GraphError::Io(std::io::Error::new(io.kind(), io.to_string())),
    }
}

fn duplicate_estimator(e: &EstimatorError) -> EstimatorError {
    match e {
        EstimatorError::Graph(g) => EstimatorError::Graph(duplicate_graph(g)),
        EstimatorError::InvalidParameter { name, message } => EstimatorError::InvalidParameter {
            name,
            message: message.clone(),
        },
        EstimatorError::NotAnEdge { s, t } => EstimatorError::NotAnEdge { s: *s, t: *t },
        EstimatorError::BudgetExceeded { resource, message } => EstimatorError::BudgetExceeded {
            resource,
            message: message.clone(),
        },
    }
}

fn duplicate_index(e: &IndexError) -> IndexError {
    match e {
        IndexError::Graph(g) => IndexError::Graph(duplicate_graph(g)),
        IndexError::Estimator(inner) => IndexError::Estimator(duplicate_estimator(inner)),
        IndexError::InvalidConfiguration { name, message } => IndexError::InvalidConfiguration {
            name,
            message: message.clone(),
        },
        IndexError::BudgetExceeded { resource, message } => IndexError::BudgetExceeded {
            resource,
            message: message.clone(),
        },
    }
}

impl ServiceError {
    /// A structural copy of this error, for fanning one failed computation
    /// out to several waiters (deduplicated or coalesced server tickets share
    /// one execution). Every variant round-trips exactly except wrapped IO
    /// failures, whose payload is re-rendered into the message
    /// (`std::io::Error` is not `Clone`).
    pub fn duplicate(&self) -> ServiceError {
        match self {
            ServiceError::Estimator(e) => ServiceError::Estimator(duplicate_estimator(e)),
            ServiceError::Index(e) => ServiceError::Index(duplicate_index(e)),
            ServiceError::UnsupportedShape { backend, shape } => ServiceError::UnsupportedShape {
                backend,
                shape: *shape,
            },
            ServiceError::InvalidRequest { message } => ServiceError::InvalidRequest {
                message: message.clone(),
            },
            ServiceError::Overloaded { queue_depth } => ServiceError::Overloaded {
                queue_depth: *queue_depth,
            },
            ServiceError::DeadlineExceeded => ServiceError::DeadlineExceeded,
            ServiceError::ServerShutdown => ServiceError::ServerShutdown,
        }
    }
}

impl From<EstimatorError> for ServiceError {
    fn from(e: EstimatorError) -> Self {
        ServiceError::Estimator(e)
    }
}

impl From<IndexError> for ServiceError {
    fn from(e: IndexError) -> Self {
        ServiceError::Index(e)
    }
}

/// Callers that still speak [`EstimatorError`] (the er-apps pipelines) can
/// funnel service failures through their existing signatures.
impl From<ServiceError> for EstimatorError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Estimator(inner) => inner,
            ServiceError::Index(IndexError::Estimator(inner)) => inner,
            ServiceError::Index(IndexError::Graph(g)) => EstimatorError::Graph(g),
            other => EstimatorError::InvalidParameter {
                name: "service",
                message: other.to_string(),
            },
        }
    }
}

/// Callers that still speak [`IndexError`] can likewise funnel service
/// failures through their existing signatures.
impl From<ServiceError> for IndexError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Index(inner) => inner,
            ServiceError::Estimator(inner) => IndexError::Estimator(inner),
            other => IndexError::InvalidConfiguration {
                name: "service",
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::GraphError;

    #[test]
    fn display_covers_all_variants() {
        let e: ServiceError = EstimatorError::NotAnEdge { s: 1, t: 2 }.into();
        assert!(e.to_string().contains("not an edge"));
        let i: ServiceError = IndexError::Graph(GraphError::NotConnected).into();
        assert!(i.to_string().contains("connected"));
        let u = ServiceError::UnsupportedShape {
            backend: "HAY",
            shape: QueryShape::SingleSource,
        };
        assert!(u.to_string().contains("HAY"));
        assert!(u.to_string().contains("single-source"));
        let b = ServiceError::InvalidRequest {
            message: "k must be positive".into(),
        };
        assert!(b.to_string().contains("k must be positive"));
        let o = ServiceError::Overloaded { queue_depth: 64 };
        assert!(o.to_string().contains("64"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServiceError::ServerShutdown.to_string().contains("shut"));
    }

    #[test]
    fn duplicate_preserves_variants_and_messages() {
        let samples = [
            ServiceError::Estimator(EstimatorError::NotAnEdge { s: 3, t: 9 }),
            ServiceError::Index(IndexError::Graph(GraphError::NotConnected)),
            ServiceError::UnsupportedShape {
                backend: "HAY",
                shape: QueryShape::Diagonal,
            },
            ServiceError::InvalidRequest {
                message: "bad".into(),
            },
            ServiceError::Overloaded { queue_depth: 7 },
            ServiceError::DeadlineExceeded,
            ServiceError::ServerShutdown,
        ];
        for e in &samples {
            let copy = e.duplicate();
            assert_eq!(copy.to_string(), e.to_string());
            assert_eq!(
                std::mem::discriminant(&copy),
                std::mem::discriminant(e),
                "{e}"
            );
        }
        // IO payloads survive as kind + rendered message.
        let io = ServiceError::Estimator(EstimatorError::Graph(GraphError::Io(
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing edges"),
        )));
        assert!(io.duplicate().to_string().contains("missing edges"));
    }

    #[test]
    fn conversions_round_trip_into_legacy_error_types() {
        use std::error::Error;
        let e = ServiceError::Estimator(EstimatorError::NotAnEdge { s: 0, t: 1 });
        assert!(e.source().is_some());
        let back: EstimatorError = e.into();
        assert!(matches!(back, EstimatorError::NotAnEdge { .. }));

        let nested = ServiceError::Index(IndexError::Estimator(EstimatorError::NotAnEdge {
            s: 0,
            t: 1,
        }));
        let back: EstimatorError = nested.into();
        assert!(matches!(back, EstimatorError::NotAnEdge { .. }));

        let shape = ServiceError::UnsupportedShape {
            backend: "MC2",
            shape: QueryShape::Pair,
        };
        let back: IndexError = shape.into();
        assert!(matches!(back, IndexError::InvalidConfiguration { .. }));
    }
}
