//! Unified query plane for effective-resistance estimation.
//!
//! The paper (Yang & Tang, SIGMOD 2023) contributes a *family* of
//! ε-approximate PER estimators whose relative cost depends on the query
//! shape, the accuracy target and the graph — its Section 5 harness picks a
//! method per `(ε, workload)` point. This crate turns that observation into
//! an API: callers submit typed requests to one front door, the
//! [`ResistanceService`], and a [`Planner`] routes each request to the
//! cheapest capable [`Backend`].
//!
//! * [`Query`] — what is asked: `Pair`, `Batch`, `SingleSource`, `Diagonal`,
//!   `EdgeSet` or `TopK`.
//! * [`Accuracy`] — how precisely: `Epsilon { eps, delta }` (Definition 2.2),
//!   `WalkBudget(n)` or `Exact`.
//! * [`Response`] — the values plus the chosen backend's name and a
//!   [`CostBreakdown`](er_core::CostBreakdown) of the work performed.
//!
//! # Example
//!
//! ```
//! use er_service::{Accuracy, BackendChoice, Query, Request, ResistanceService};
//! use er_graph::generators;
//!
//! let graph = generators::social_network_like(200, 10.0, 7).unwrap();
//! let service = ResistanceService::new(&graph).unwrap();
//!
//! // The planner picks the backend: small graph + ε target ⇒ exact CG.
//! // (Larger fast-mixing graphs route to GEER; slow-mixing graphs — a
//! // small spectral gap — stay exact at any size.)
//! let response = service.submit(&Query::pair(0, 150).into()).unwrap();
//! assert_eq!(response.backend, "EXACT-CG");
//!
//! // Callers can force a backend (here: the paper's GEER) and inspect cost.
//! let forced = Request::new(Query::pair(0, 150))
//!     .with_accuracy(Accuracy::epsilon(0.2))
//!     .with_backend(BackendChoice::Geer);
//! let response = service.submit(&forced).unwrap();
//! assert_eq!(response.backend, "GEER");
//! assert!(response.cost.total_operations() > 0);
//! ```
//!
//! # Serving
//!
//! [`ResistanceService::submit`] takes `&self` and the service is
//! `Send + Sync`, so concurrent callers share one instance directly. For a
//! managed front end, [`ResistanceServer::spawn`] puts a worker pool with
//! admission control (bounded queue → [`ServiceError::Overloaded`]),
//! request dedup, cross-client coalescing and deadline/priority scheduling
//! in front of the service; clients hold cloneable [`ServerHandle`]s and
//! collect responses through [`Ticket`]s.
//!
//! # Determinism
//!
//! Every randomized backend answers through per-item estimator forks
//! ([`er_core::ForkableEstimator`]) whose RNG streams are derived from the
//! *content* of each queried pair, never from request positions, cache
//! state or scheduling order: for a fixed seed, responses are bit-identical
//! at any thread count, any server worker count and any arrival order —
//! including deduplicated and coalesced requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod capability;
pub mod dynamic;
pub mod error;
pub mod planner;
pub mod query;
pub mod response;
pub mod server;
pub mod service;
pub mod session;

pub use backend::{
    Backend, EstimatorBackend, GeerBackend, HayBatchBackend, IndexBackend, LandmarkBackend, Plan,
    PlanItem, StreamPlan,
};
pub use capability::{QueryShape, QueryShapeSet};
pub use dynamic::{DynamicResistanceService, ServiceEpoch};
pub use error::ServiceError;
pub use planner::{
    dominant_source_count, BackendChoice, GraphSignals, Planner, PlannerConfig, PlannerState,
};
pub use query::{Accuracy, Query, Request};
pub use response::Response;
pub use server::{ResistanceServer, ServerConfig, ServerHandle, ServerStats};
pub use service::ResistanceService;
pub use session::{Priority, Session, SubmitOptions, Ticket};
