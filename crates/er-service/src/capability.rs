//! Query shapes and capability sets.
//!
//! Every [`Backend`](crate::Backend) declares which query shapes it can
//! answer as a [`QueryShapeSet`]; the [`Planner`](crate::Planner) only routes
//! a query to a backend whose set contains the query's shape, and an explicit
//! backend override is rejected up front when the shapes do not match.

use std::fmt;

/// The shape of a [`Query`](crate::Query) — what kind of answer is requested,
/// independent of the accuracy target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// One `(s, t)` resistance value.
    Pair,
    /// Many `(s, t)` resistance values, answered as one unit of work.
    Batch,
    /// `r(s, v)` for a fixed source `s` and every node `v`.
    SingleSource,
    /// The diagonal of the Laplacian pseudo-inverse, `L†(v, v)` for every `v`.
    Diagonal,
    /// Resistance of pairs that are *edges* of the graph (`(s, t) ∈ E`).
    EdgeSet,
    /// The `k` nodes closest to a source in resistance distance.
    TopK,
}

impl QueryShape {
    const ALL: [QueryShape; 6] = [
        QueryShape::Pair,
        QueryShape::Batch,
        QueryShape::SingleSource,
        QueryShape::Diagonal,
        QueryShape::EdgeSet,
        QueryShape::TopK,
    ];

    const fn bit(self) -> u8 {
        match self {
            QueryShape::Pair => 1 << 0,
            QueryShape::Batch => 1 << 1,
            QueryShape::SingleSource => 1 << 2,
            QueryShape::Diagonal => 1 << 3,
            QueryShape::EdgeSet => 1 << 4,
            QueryShape::TopK => 1 << 5,
        }
    }

    /// Whether this is a pair-shaped query (`Pair`, `Batch`, `EdgeSet`) —
    /// the shapes that flow through the cache/dedup tier and that the
    /// server may coalesce across requests.
    pub const fn is_pairwise(self) -> bool {
        QueryShapeSet::PAIRWISE.0 & self.bit() != 0
    }
}

impl fmt::Display for QueryShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QueryShape::Pair => "pair",
            QueryShape::Batch => "batch",
            QueryShape::SingleSource => "single-source",
            QueryShape::Diagonal => "diagonal",
            QueryShape::EdgeSet => "edge-set",
            QueryShape::TopK => "top-k",
        };
        f.write_str(name)
    }
}

/// A set of [`QueryShape`]s — the capability declaration of a backend.
///
/// ```
/// use er_service::{QueryShape, QueryShapeSet};
///
/// let pairwise = QueryShapeSet::PAIRWISE;
/// assert!(pairwise.contains(QueryShape::Batch));
/// assert!(!pairwise.contains(QueryShape::Diagonal));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryShapeSet(u8);

impl QueryShapeSet {
    /// The empty set.
    pub const EMPTY: QueryShapeSet = QueryShapeSet(0);

    /// Every shape.
    pub const ALL: QueryShapeSet = QueryShapeSet(0b11_1111);

    /// The pair-shaped queries: [`QueryShape::Pair`], [`QueryShape::Batch`]
    /// and [`QueryShape::EdgeSet`] (an edge set is a batch whose pairs happen
    /// to be edges) — what a generic [`ResistanceEstimator`] can answer.
    ///
    /// [`ResistanceEstimator`]: er_core::ResistanceEstimator
    pub const PAIRWISE: QueryShapeSet =
        QueryShapeSet(QueryShape::Pair.bit() | QueryShape::Batch.bit() | QueryShape::EdgeSet.bit());

    /// Only edge queries — the MC2/HAY restriction.
    pub const EDGE_ONLY: QueryShapeSet = QueryShapeSet(QueryShape::EdgeSet.bit());

    /// Builds a set from individual shapes.
    pub fn of(shapes: &[QueryShape]) -> QueryShapeSet {
        QueryShapeSet(shapes.iter().fold(0, |acc, s| acc | s.bit()))
    }

    /// Whether the set contains `shape`.
    pub fn contains(self, shape: QueryShape) -> bool {
        self.0 & shape.bit() != 0
    }

    /// Set union.
    pub fn union(self, other: QueryShapeSet) -> QueryShapeSet {
        QueryShapeSet(self.0 | other.0)
    }

    /// The shapes in the set, in declaration order.
    pub fn shapes(self) -> Vec<QueryShape> {
        QueryShape::ALL
            .into_iter()
            .filter(|&s| self.contains(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_union() {
        let set = QueryShapeSet::of(&[QueryShape::Pair, QueryShape::TopK]);
        assert!(set.contains(QueryShape::Pair));
        assert!(set.contains(QueryShape::TopK));
        assert!(!set.contains(QueryShape::EdgeSet));
        let both = set.union(QueryShapeSet::EDGE_ONLY);
        assert!(both.contains(QueryShape::EdgeSet));
        assert_eq!(both.shapes().len(), 3);
    }

    #[test]
    fn named_sets() {
        assert_eq!(QueryShapeSet::ALL.shapes().len(), 6);
        assert_eq!(QueryShapeSet::EMPTY.shapes().len(), 0);
        assert!(QueryShapeSet::PAIRWISE.contains(QueryShape::EdgeSet));
        assert!(!QueryShapeSet::PAIRWISE.contains(QueryShape::SingleSource));
        assert!(QueryShapeSet::EDGE_ONLY.contains(QueryShape::EdgeSet));
        assert!(!QueryShapeSet::EDGE_ONLY.contains(QueryShape::Pair));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(QueryShape::SingleSource.to_string(), "single-source");
        assert_eq!(QueryShape::EdgeSet.to_string(), "edge-set");
    }

    #[test]
    fn pairwise_predicate_matches_the_pairwise_set() {
        for shape in QueryShapeSet::ALL.shapes() {
            assert_eq!(
                shape.is_pairwise(),
                QueryShapeSet::PAIRWISE.contains(shape),
                "{shape}"
            );
        }
        assert!(QueryShape::Pair.is_pairwise());
        assert!(!QueryShape::Diagonal.is_pairwise());
    }
}
