//! The `ResistanceService` front door.

use crate::backend::{
    Backend, EstimatorBackend, HayBatchBackend, IndexBackend, LandmarkBackend, Plan, PlanItem,
    StreamPlan,
};
use crate::capability::QueryShape;
use crate::error::ServiceError;
use crate::planner::{BackendChoice, Planner, PlannerState};
use crate::query::{Accuracy, Query, Request};
use crate::response::Response;
use er_core::{Amc, ApproxConfig, Exact, Geer, GraphContext, Mc, Mc2, Rp, Smm, Tp, Tpc};
use er_graph::{IntoGraphArc, NodeId};
use er_index::{DiagonalStrategy, ErIndex, LandmarkIndex, LandmarkSelection, QueryCache};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache entries are only reused for requests in the same class: the same
/// accuracy (a value produced at ε = 0.5 must not serve an ε = 0.01 or
/// exact request) *and* the same backend override (a request that forces
/// AMC must be answered by AMC, not by a value GEER cached earlier —
/// planner-routed requests share the `backend: None` class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheClass {
    accuracy: AccuracyClass,
    backend: Option<BackendChoice>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum AccuracyClass {
    Exact,
    Epsilon { eps_bits: u64, delta_bits: u64 },
    Budget(u64),
}

impl CacheClass {
    fn of(accuracy: Accuracy, backend: Option<BackendChoice>) -> CacheClass {
        let accuracy = match accuracy {
            Accuracy::Exact => AccuracyClass::Exact,
            Accuracy::Epsilon { eps, delta } => AccuracyClass::Epsilon {
                eps_bits: eps.to_bits(),
                delta_bits: delta.to_bits(),
            },
            Accuracy::WalkBudget(b) => AccuracyClass::Budget(b),
        };
        CacheClass { accuracy, backend }
    }
}

/// The unified query plane: one front door for every estimator.
///
/// Callers describe *what* they want — a typed [`Query`] plus an
/// [`Accuracy`] target — and the service plans *how*: a capability check, a
/// cache-tier pass, a routing decision by the [`Planner`], and a batch-native
/// [`Backend`] answer built on per-stream estimator forks (bit-identical at
/// any thread count for a fixed seed).
///
/// ```
/// use er_service::{Accuracy, Query, Request, ResistanceService};
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(400, 10.0, 7).unwrap();
/// let mut service = ResistanceService::new(&graph).unwrap();
///
/// let request = Request::new(Query::pair(0, 200)).with_accuracy(Accuracy::epsilon(0.1));
/// let response = service.submit(&request).unwrap();
/// assert!(response.value() > 0.0);
/// // The response names the backend the planner picked and itemises cost.
/// assert!(!response.backend.is_empty());
/// ```
pub struct ResistanceService {
    context: GraphContext,
    config: ApproxConfig,
    planner: Planner,
    cache_capacity: usize,
    caches: HashMap<CacheClass, QueryCache>,
    landmark_count: usize,
    // Memoized heavy backends (cheap ones are rebuilt per request).
    index: Option<Arc<IndexBackend>>,
    landmark: Option<Arc<LandmarkBackend>>,
    exact_dense: Option<Arc<EstimatorBackend<Exact>>>,
    /// RP's sketch is ε/δ-specific, so it is memoized per operating point
    /// (`(eps_bits, delta_bits)` of the effective config).
    rp: Option<(RpKey, Arc<EstimatorBackend<Rp>>)>,
}

/// `(eps_bits, delta_bits)` identifying an RP sketch's operating point.
type RpKey = (u64, u64);

impl ResistanceService {
    /// Default capacity of each accuracy-class cache.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

    /// Default number of landmarks for the LANDMARK backend.
    pub const DEFAULT_LANDMARKS: usize = 16;

    /// Builds a service over `graph` with [`ApproxConfig::default`] (runs the
    /// spectral preprocessing once).
    pub fn new(graph: impl IntoGraphArc) -> Result<Self, ServiceError> {
        Self::with_config(graph, ApproxConfig::default())
    }

    /// Builds a service with an explicit estimator configuration (seed,
    /// default ε/δ/τ, worker threads).
    pub fn with_config(
        graph: impl IntoGraphArc,
        config: ApproxConfig,
    ) -> Result<Self, ServiceError> {
        let context = GraphContext::preprocess(graph)?;
        Ok(Self::from_context(context, config))
    }

    /// Builds a service over an already-preprocessed [`GraphContext`].
    pub fn from_context(context: GraphContext, config: ApproxConfig) -> Self {
        ResistanceService {
            context,
            config,
            planner: Planner::default(),
            cache_capacity: Self::DEFAULT_CACHE_CAPACITY,
            caches: HashMap::new(),
            landmark_count: Self::DEFAULT_LANDMARKS,
            index: None,
            landmark: None,
            exact_dense: None,
            rp: None,
        }
    }

    /// Overrides the routing policy.
    #[must_use]
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Overrides the per-accuracy-class cache capacity (entries).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Overrides the landmark count of the LANDMARK backend.
    #[must_use]
    pub fn with_landmarks(mut self, count: usize) -> Self {
        self.landmark_count = count.max(1);
        self
    }

    /// The preprocessed graph context the service answers over.
    pub fn context(&self) -> &GraphContext {
        &self.context
    }

    /// The service's estimator configuration.
    pub fn config(&self) -> ApproxConfig {
        self.config
    }

    /// The routing policy in force.
    pub fn planner(&self) -> Planner {
        self.planner
    }

    /// What the planner can currently observe about this service.
    pub fn planner_state(&self) -> PlannerState {
        PlannerState {
            index_ready: self.index.is_some(),
        }
    }

    /// The backend the service would use for `request` right now, without
    /// doing any work. Honors the request's override.
    pub fn plan(&self, request: &Request) -> BackendChoice {
        request.backend.unwrap_or_else(|| {
            self.planner.route(
                &request.query,
                request.accuracy,
                self.context.graph().num_nodes(),
                self.planner_state(),
            )
        })
    }

    /// Answers a request: validates it, consults the cache tier, routes to a
    /// backend and assembles the response in request order.
    ///
    /// Determinism: for a fixed service seed and a fixed request sequence,
    /// every response is bit-identical at any
    /// [`threads`](ApproxConfig::threads) setting.
    pub fn submit(&mut self, request: &Request) -> Result<Response, ServiceError> {
        match &request.query {
            Query::Pair { .. } | Query::Batch { .. } | Query::EdgeSet { .. } => {
                self.submit_pairs(request)
            }
            Query::SingleSource { source } => self.submit_source(request, *source, 0),
            Query::TopK { source, k } => self.submit_source(request, *source, *k),
            Query::Diagonal => self.submit_diagonal(request),
        }
    }

    /// Convenience: one pair at the service's default accuracy.
    pub fn resistance(&mut self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        Ok(self.submit(&Request::new(Query::pair(s, t)))?.value())
    }

    /// Convenience: `r(source, v)` for every `v`, exactly.
    pub fn single_source(&mut self, source: NodeId) -> Result<Vec<f64>, ServiceError> {
        Ok(self
            .submit(&Request::new(Query::single_source(source)))?
            .values)
    }

    /// Convenience: the Kirchhoff index `Σ_{s<t} r(s, t) = n · tr(L†)`,
    /// computed from a [`Query::Diagonal`] answer.
    pub fn kirchhoff_index(&mut self) -> Result<f64, ServiceError> {
        let diag = self.submit(&Request::new(Query::Diagonal))?;
        let n = self.context.graph().num_nodes() as f64;
        Ok(n * diag.values.iter().sum::<f64>())
    }

    fn submit_pairs(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let pairs = request.query.pairs().into_owned();
        let shape = request.query.shape();
        for &(s, t) in &pairs {
            self.context.check_pair(s, t)?;
            if shape == QueryShape::EdgeSet && s != t && !self.context.graph().has_edge(s, t) {
                return Err(ServiceError::InvalidRequest {
                    message: format!("({s}, {t}) is not an edge of the graph"),
                });
            }
        }
        let choice = self.plan(request);
        // Static capability check, before any backend-construction or cache
        // cost is paid.
        if !choice.capabilities().contains(shape) {
            return Err(ServiceError::UnsupportedShape {
                backend: choice.name(),
                shape,
            });
        }

        // Cache tier: trivial self-pairs short-circuit, repeats (within the
        // request and across requests in the same accuracy class) are cache
        // hits, distinct misses become plan items. Each miss carries the RNG
        // stream of its first position in the request, so stream assignment
        // is independent of both cache state *within* the request and thread
        // count.
        let class = CacheClass::of(request.accuracy, request.backend);
        let cache = self
            .caches
            .entry(class)
            .or_insert_with(|| QueryCache::new(self.cache_capacity));
        let mut values = vec![0.0; pairs.len()];
        let mut cache_hits = 0u64;
        let mut trivial_queries = 0u64;
        let mut miss_index: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut items: Vec<PlanItem> = Vec::new();
        let mut streams: Vec<u64> = Vec::new();
        let mut resolve: Vec<(usize, usize)> = Vec::new();
        for (pos, &(s, t)) in pairs.iter().enumerate() {
            if s == t {
                trivial_queries += 1;
                continue;
            }
            if let Some(v) = cache.get(s, t) {
                cache_hits += 1;
                values[pos] = v;
                continue;
            }
            let key = (s.min(t), s.max(t));
            match miss_index.get(&key) {
                Some(&slot) => {
                    cache_hits += 1;
                    resolve.push((pos, slot));
                }
                None => {
                    let slot = items.len();
                    miss_index.insert(key, slot);
                    items.push(PlanItem { s, t });
                    streams.push(pos as u64);
                    resolve.push((pos, slot));
                }
            }
        }

        // Fully cache-served requests never touch (or build) a backend.
        if items.is_empty() {
            return Ok(Response {
                values,
                nodes: Vec::new(),
                backend: choice.name(),
                cost: er_core::CostBreakdown::default(),
                cache_hits,
                backend_calls: 0,
                trivial_queries,
            });
        }

        let plan = Plan::for_items(shape, request.accuracy, items);
        let stream_plan = StreamPlan {
            streams,
            threads: self.config.threads,
        };
        let backend = self.backend_instance(choice, request.accuracy)?;
        let mut answer = backend.answer(&plan, &stream_plan)?;
        let cache = self
            .caches
            .get_mut(&class)
            .expect("cache created earlier in submit");
        for (item, &value) in plan.items.iter().zip(&answer.values) {
            cache.insert(item.s, item.t, value);
        }
        for (pos, slot) in resolve {
            values[pos] = answer.values[slot];
        }
        answer.values = values;
        answer.cache_hits = cache_hits;
        answer.trivial_queries = trivial_queries;
        Ok(answer)
    }

    fn submit_source(
        &mut self,
        request: &Request,
        source: NodeId,
        k: usize,
    ) -> Result<Response, ServiceError> {
        self.context.check_pair(source, source)?;
        let shape = request.query.shape();
        let choice = self.plan(request);
        if !choice.capabilities().contains(shape) {
            return Err(ServiceError::UnsupportedShape {
                backend: choice.name(),
                shape,
            });
        }
        let backend = self.backend_instance(choice, request.accuracy)?;
        let plan = Plan {
            shape,
            accuracy: request.accuracy,
            items: vec![],
            source: Some(source),
            k,
        };
        let streams = StreamPlan {
            streams: vec![],
            threads: self.config.threads,
        };
        backend.answer(&plan, &streams)
    }

    fn submit_diagonal(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let choice = self.plan(request);
        if !choice.capabilities().contains(QueryShape::Diagonal) {
            return Err(ServiceError::UnsupportedShape {
                backend: choice.name(),
                shape: QueryShape::Diagonal,
            });
        }
        let backend = self.backend_instance(choice, request.accuracy)?;
        let plan = Plan {
            shape: QueryShape::Diagonal,
            accuracy: request.accuracy,
            items: vec![],
            source: None,
            k: 0,
        };
        let streams = StreamPlan {
            streams: vec![],
            threads: self.config.threads,
        };
        backend.answer(&plan, &streams)
    }

    /// The estimator configuration a backend prototype should run with under
    /// the given accuracy: ε-targets override the service's default ε/δ.
    fn effective_config(&self, accuracy: Accuracy) -> ApproxConfig {
        match accuracy {
            Accuracy::Epsilon { eps, delta } => ApproxConfig {
                epsilon: eps,
                delta,
                ..self.config
            },
            _ => self.config,
        }
    }

    /// Builds (or fetches the memoized instance of) the backend for a
    /// routing choice. The index, landmark, dense-exact and RP backends
    /// carry expensive preprocessing and are memoized; the remaining
    /// estimator prototypes are free to construct and are rebuilt per
    /// request so they pick up the request's accuracy target.
    fn backend_instance(
        &mut self,
        choice: BackendChoice,
        accuracy: Accuracy,
    ) -> Result<Arc<dyn Backend>, ServiceError> {
        use crate::capability::QueryShapeSet;
        let cfg = self.effective_config(accuracy);
        let budget = match accuracy {
            Accuracy::WalkBudget(b) => Some(b),
            _ => None,
        };
        let ctx = &self.context;
        Ok(match choice {
            BackendChoice::Geer => {
                let mut proto = Geer::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(
                    proto,
                    "GEER",
                    QueryShapeSet::PAIRWISE,
                ))
            }
            BackendChoice::Amc => {
                let mut proto = Amc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "AMC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Smm => Arc::new(EstimatorBackend::new(
                Smm::new(ctx, cfg),
                "SMM",
                QueryShapeSet::PAIRWISE,
            )),
            BackendChoice::Tp => {
                let mut proto = Tp::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "TP", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Tpc => {
                let mut proto = Tpc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "TPC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Rp => {
                // RP pays its preprocessing (a multi-row sketch of Laplacian
                // solves) up front; rebuild only when the operating point
                // changes.
                let key = (cfg.epsilon.to_bits(), cfg.delta.to_bits());
                match &self.rp {
                    Some((k, backend)) if *k == key => backend.clone(),
                    _ => {
                        let backend = Arc::new(EstimatorBackend::new(
                            Rp::with_entry_budget(ctx, cfg, 10_000_000)?,
                            "RP",
                            QueryShapeSet::PAIRWISE,
                        ));
                        self.rp = Some((key, backend.clone()));
                        backend
                    }
                }
            }
            BackendChoice::Mc => {
                let mut proto = Mc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "MC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Mc2 => {
                let mut proto = Mc2::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(
                    proto,
                    "MC2",
                    QueryShapeSet::EDGE_ONLY,
                ))
            }
            BackendChoice::Hay => Arc::new(HayBatchBackend::new(ctx, cfg)),
            BackendChoice::ExactCg => Arc::new(EstimatorBackend::new(
                Exact::with_solver(ctx),
                "EXACT-CG",
                QueryShapeSet::PAIRWISE,
            )),
            BackendChoice::ExactDense => {
                if self.exact_dense.is_none() {
                    self.exact_dense = Some(Arc::new(EstimatorBackend::new(
                        Exact::new(ctx)?,
                        "EXACT",
                        QueryShapeSet::PAIRWISE,
                    )));
                }
                self.exact_dense.clone().expect("memoized above")
            }
            BackendChoice::Index => {
                if self.index.is_none() {
                    let index = ErIndex::build_with_threads(
                        self.context.graph_arc().clone(),
                        DiagonalStrategy::ExactSolves,
                        self.config.seed,
                        self.config.threads,
                    )?;
                    self.index = Some(Arc::new(IndexBackend::new(index)));
                }
                self.index.clone().expect("memoized above")
            }
            BackendChoice::Landmark => {
                if self.landmark.is_none() {
                    let index = LandmarkIndex::build(
                        self.context.graph(),
                        self.landmark_count,
                        LandmarkSelection::Mixed,
                        self.config.seed,
                    )?;
                    self.landmark = Some(Arc::new(LandmarkBackend::new(index)));
                }
                self.landmark.clone().expect("memoized above")
            }
        })
    }

    /// Hit/miss statistics of the cache tier, summed over accuracy classes:
    /// `(hits, misses, entries)`.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut entries = 0;
        for cache in self.caches.values() {
            hits += cache.hits();
            misses += cache.misses();
            entries += cache.len();
        }
        (hits, misses, entries)
    }

    /// Hint that upcoming requests are repeated-source workloads: builds the
    /// index tier now so the planner can route to it immediately.
    pub fn warm_index(&mut self) -> Result<(), ServiceError> {
        self.backend_instance(BackendChoice::Index, Accuracy::Exact)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn service(n: usize) -> ResistanceService {
        let g = generators::social_network_like(n, 8.0, 7).unwrap();
        ResistanceService::new(&g).unwrap()
    }

    #[test]
    fn pair_and_batch_round_trip_with_cache() {
        let mut s = service(200);
        let response = s
            .submit(&Request::new(Query::batch(vec![
                (0, 10),
                (10, 0),
                (3, 3),
                (0, 10),
            ])))
            .unwrap();
        assert_eq!(response.values.len(), 4);
        assert_eq!(response.values[0], response.values[1]);
        assert_eq!(response.values[2], 0.0);
        assert_eq!(response.backend_calls, 1, "one distinct non-trivial pair");
        assert_eq!(response.cache_hits, 2);
        assert_eq!(response.trivial_queries, 1);
        // Same pair again: served from the cache, zero backend calls.
        let again = s.submit(&Request::new(Query::pair(10, 0))).unwrap();
        assert_eq!(again.backend_calls, 0);
        assert_eq!(again.cache_hits, 1);
        assert_eq!(again.value(), response.values[0]);
        // QueryCache-level statistics count only cross-request reuse: the
        // in-batch repeats above were resolved by the dedup pass before
        // reaching the cache, so exactly one lookup hit.
        let (hits, _, entries) = s.cache_stats();
        assert_eq!(hits, 1);
        assert!(entries >= 1);
    }

    #[test]
    fn accuracy_classes_do_not_share_cache_entries() {
        let mut s = service(200);
        let coarse = s
            .submit(&Request::new(Query::pair(0, 50)).with_accuracy(Accuracy::epsilon(0.5)))
            .unwrap();
        let exact = s
            .submit(&Request::new(Query::pair(0, 50)).with_accuracy(Accuracy::Exact))
            .unwrap();
        // The exact request must not be served the coarse cached value: it
        // performed its own backend call.
        assert_eq!(exact.backend_calls, 1);
        assert_eq!(coarse.backend_calls, 1);
    }

    #[test]
    fn backend_overrides_do_not_share_cache_entries() {
        let mut s = service(200);
        let planned = s.submit(&Request::new(Query::pair(0, 50))).unwrap();
        let forced_geer = s
            .submit(&Request::new(Query::pair(0, 50)).with_backend(BackendChoice::Geer))
            .unwrap();
        let forced_amc = s
            .submit(&Request::new(Query::pair(0, 50)).with_backend(BackendChoice::Amc))
            .unwrap();
        // Each override must do its own work, not inherit another backend's
        // cached value.
        assert_eq!(planned.backend_calls, 1);
        assert_eq!(forced_geer.backend_calls, 1);
        assert_eq!(forced_amc.backend_calls, 1);
        assert_eq!(forced_geer.backend, "GEER");
        assert_eq!(forced_amc.backend, "AMC");
        // But a repeat of the same override is a cache hit.
        let repeat = s
            .submit(&Request::new(Query::pair(50, 0)).with_backend(BackendChoice::Amc))
            .unwrap();
        assert_eq!(repeat.backend_calls, 0);
        assert_eq!(repeat.value(), forced_amc.value());
    }

    #[test]
    fn small_graph_epsilon_requests_are_answered_exactly() {
        let mut s = service(150);
        let response = s.submit(&Request::new(Query::pair(0, 75))).unwrap();
        assert_eq!(response.backend, "EXACT-CG");
        // Cross-check against the index tier.
        let row = s.single_source(0).unwrap();
        assert!((row[75] - response.value()).abs() < 1e-6);
    }

    #[test]
    fn override_knob_forces_a_backend() {
        let mut s = service(150);
        let forced = s
            .submit(&Request::new(Query::pair(0, 75)).with_backend(BackendChoice::Geer))
            .unwrap();
        assert_eq!(forced.backend, "GEER");
        assert!(forced.cost.random_walks > 0 || forced.cost.matvec_ops > 0);
        // An estimator that cannot answer the shape is rejected.
        let err = s
            .submit(&Request::new(Query::single_source(0)).with_backend(BackendChoice::Geer))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnsupportedShape { .. }));
    }

    #[test]
    fn edge_sets_validate_membership() {
        let mut s = service(150);
        let g_edges: Vec<_> = s.context().graph().edges().take(4).collect();
        let ok = s.submit(&Request::new(Query::edge_set(g_edges))).unwrap();
        assert_eq!(ok.values.len(), 4);
        let mut non_edge = None;
        let g = s.context().graph();
        'outer: for u in 0..g.num_nodes() {
            for v in (u + 1)..g.num_nodes() {
                if !g.has_edge(u, v) {
                    non_edge = Some((u, v));
                    break 'outer;
                }
            }
        }
        let err = s
            .submit(&Request::new(Query::edge_set(vec![non_edge.unwrap()])))
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidRequest { .. }));
    }

    #[test]
    fn source_shapes_route_to_the_index_and_kirchhoff_matches() {
        let mut s = service(150);
        let request = Request::new(Query::top_k(0, 5));
        assert_eq!(s.plan(&request), BackendChoice::Index);
        let top = s.submit(&request).unwrap();
        assert_eq!(top.backend, "INDEX");
        assert_eq!(top.nodes.len(), 5);
        assert!(top.values.windows(2).all(|w| w[0] <= w[1]));
        let kf = s.kirchhoff_index().unwrap();
        assert!(kf > 0.0);
        // After the index is built the planner observes it.
        assert!(s.planner_state().index_ready);
        assert_eq!(
            s.plan(&Request::new(Query::pair(0, 1)).with_accuracy(Accuracy::Exact)),
            BackendChoice::Index
        );
    }

    #[test]
    fn static_capabilities_match_backend_instances() {
        // The early-rejection policy on BackendChoice must agree with what
        // each constructed backend actually declares.
        let mut s = service(120);
        for choice in [
            BackendChoice::Geer,
            BackendChoice::Amc,
            BackendChoice::Smm,
            BackendChoice::Tp,
            BackendChoice::Tpc,
            BackendChoice::Rp,
            BackendChoice::Mc,
            BackendChoice::Mc2,
            BackendChoice::Hay,
            BackendChoice::ExactDense,
            BackendChoice::ExactCg,
            BackendChoice::Index,
            BackendChoice::Landmark,
        ] {
            let backend = s.backend_instance(choice, Accuracy::epsilon(0.5)).unwrap();
            assert_eq!(backend.capabilities(), choice.capabilities(), "{choice:?}");
            assert_eq!(backend.name(), choice.name(), "{choice:?}");
        }
    }

    #[test]
    fn out_of_range_nodes_are_rejected_up_front() {
        let mut s = service(100);
        assert!(s.submit(&Request::new(Query::pair(0, 5_000))).is_err());
        assert!(s
            .submit(&Request::new(Query::single_source(5_000)))
            .is_err());
    }

    #[test]
    fn walk_budget_is_forwarded() {
        let mut s = service(150);
        let response = s
            .submit(
                &Request::new(Query::pair(0, 75))
                    .with_accuracy(Accuracy::WalkBudget(500))
                    .with_backend(BackendChoice::Amc),
            )
            .unwrap();
        assert_eq!(response.backend, "AMC");
        assert!(response.cost.random_walks <= 500);
    }
}
