//! The `ResistanceService` front door.
//!
//! Since PR 4 the service is built for *concurrent* callers: [`submit`]
//! takes `&self`, the service is `Send + Sync`, and any number of threads
//! (or the [`ResistanceServer`](crate::ResistanceServer) worker pool) can be
//! in flight at once. Internally the service splits into
//!
//! * an immutable, `Arc`-shared core — graph context, configuration and the
//!   routing [`Planner`] — that every submit only reads,
//! * a sharded cache tier: one [`QueryCache`] shard per
//!   accuracy/backend-override class, each behind its own mutex, so requests
//!   in different classes never contend, and
//! * a registry of memoized heavy backends (index, landmark, dense-exact,
//!   RP sketch) built lazily behind per-backend locks.
//!
//! [`submit`]: ResistanceService::submit

use crate::backend::{
    Backend, EstimatorBackend, GeerBackend, HayBatchBackend, IndexBackend, LandmarkBackend, Plan,
    PlanItem, StreamPlan,
};
use crate::capability::QueryShape;
use crate::error::ServiceError;
use crate::planner::{BackendChoice, GraphSignals, Planner, PlannerConfig, PlannerState};
use crate::query::{Accuracy, Query, Request};
use crate::response::Response;
use er_core::{Amc, ApproxConfig, Exact, GraphContext, Mc, Mc2, Rp, Smm, Tp, Tpc};
use er_graph::{IntoGraphArc, NodeId};
use er_index::{DiagonalStrategy, ErIndex, LandmarkIndex, LandmarkSelection, QueryCache};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Cache entries are only reused for requests in the same class: the same
/// accuracy (a value produced at ε = 0.5 must not serve an ε = 0.01
/// request) *and* the same backend override (a request that forces
/// AMC must be answered by AMC, not by a value GEER cached earlier —
/// planner-routed requests share the `backend: None` class). One legal
/// cross-class exception exists: an `Exact` entry may serve any `Epsilon`
/// request of the same backend-override class, because an exact value
/// satisfies every ε target (see [`ResistanceService::submit`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheClass {
    accuracy: AccuracyClass,
    backend: Option<BackendChoice>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum AccuracyClass {
    Exact,
    Epsilon { eps_bits: u64, delta_bits: u64 },
    Budget(u64),
}

impl CacheClass {
    fn of(accuracy: Accuracy, backend: Option<BackendChoice>) -> CacheClass {
        let accuracy = match accuracy {
            Accuracy::Exact => AccuracyClass::Exact,
            Accuracy::Epsilon { eps, delta } => AccuracyClass::Epsilon {
                eps_bits: eps.to_bits(),
                delta_bits: delta.to_bits(),
            },
            Accuracy::WalkBudget(b) => AccuracyClass::Budget(b),
        };
        CacheClass { accuracy, backend }
    }

    /// The `Exact`-accuracy class with the same backend override — the only
    /// class whose entries may legally serve this one.
    fn exact_sibling(&self) -> Option<CacheClass> {
        match self.accuracy {
            AccuracyClass::Epsilon { .. } => Some(CacheClass {
                accuracy: AccuracyClass::Exact,
                backend: self.backend,
            }),
            _ => None,
        }
    }
}

/// The RNG stream a pair query runs on, derived from the pair *content*
/// (symmetric in `s`/`t`), never from its position in a request or the
/// scheduling order. This is what makes the whole serving plane
/// reproducible: a pair computes the same bits whether it is served alone,
/// deduplicated against an identical in-flight request, coalesced into a
/// cross-client batch, or replayed from the cache — so responses are
/// bit-identical at any worker count and any arrival order.
fn pair_stream(s: NodeId, t: NodeId) -> u64 {
    let (a, b) = if s <= t { (s, t) } else { (t, s) };
    let mut x = (a as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((b as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    // SplitMix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The immutable heart of the service: everything `submit` reads but never
/// writes, shared by `Arc` so worker threads and handles stay cheap.
struct ServiceCore {
    context: GraphContext,
    config: ApproxConfig,
    planner: Planner,
    landmark_count: usize,
    /// Extra landmark nodes the LANDMARK backend must include (the sharded
    /// serving plane pins each shard's boundary portals here).
    required_landmarks: Vec<NodeId>,
    /// When set, planner-routed pair-shaped requests bypass the
    /// [`BackendChoice`] registry and are answered by this backend instead —
    /// the integration point of routing layers like the shard router.
    /// Explicit per-request backend overrides still reach their named
    /// backend.
    router: Option<Arc<dyn Backend>>,
}

/// The sharded cache tier: one bounded [`QueryCache`] per cache class, each
/// behind its own stripe lock. Requests in different accuracy classes never
/// contend; requests in the same class serialize only for the (cheap)
/// lookup/insert passes, not for backend work.
struct CacheTier {
    capacity: usize,
    shards: RwLock<HashMap<CacheClass, Arc<Mutex<QueryCache>>>>,
}

impl CacheTier {
    fn new(capacity: usize) -> CacheTier {
        CacheTier {
            capacity,
            shards: RwLock::new(HashMap::new()),
        }
    }

    /// The shard for `class`, created on first use.
    fn shard(&self, class: CacheClass) -> Arc<Mutex<QueryCache>> {
        if let Some(shard) = self
            .shards
            .read()
            .expect("cache tier lock poisoned")
            .get(&class)
        {
            return shard.clone();
        }
        self.shards
            .write()
            .expect("cache tier lock poisoned")
            .entry(class)
            .or_insert_with(|| Arc::new(Mutex::new(QueryCache::new(self.capacity))))
            .clone()
    }

    /// The shard for `class` if it already exists (probes never create
    /// shards).
    fn existing_shard(&self, class: CacheClass) -> Option<Arc<Mutex<QueryCache>>> {
        self.shards
            .read()
            .expect("cache tier lock poisoned")
            .get(&class)
            .cloned()
    }
}

/// `(eps_bits, delta_bits)` identifying an RP sketch's operating point.
type RpKey = (u64, u64);

/// Lazily built, memoized heavy backends. Each slot has its own lock, held
/// across construction so concurrent requests needing the same backend wait
/// for one build instead of duplicating it; requests on other backends are
/// unaffected.
#[derive(Default)]
struct BackendRegistry {
    index: Mutex<Option<Arc<IndexBackend>>>,
    /// Lock-free mirror of `index.is_some()`, so [`planner_state`] (called
    /// on every plan, including by the server's scheduler under its queue
    /// lock) never blocks behind a multi-second index *build* holding the
    /// slot mutex.
    ///
    /// [`planner_state`]: ResistanceService::planner_state
    index_ready: std::sync::atomic::AtomicBool,
    landmark: Mutex<Option<Arc<LandmarkBackend>>>,
    exact_dense: Mutex<Option<Arc<EstimatorBackend<Exact>>>>,
    /// RP's sketch is ε/δ-specific, so it is memoized per operating point.
    rp: Mutex<Option<(RpKey, Arc<EstimatorBackend<Rp>>)>>,
}

/// Per-request bookkeeping while a (possibly coalesced) group of pair-shaped
/// requests runs through the cache tier and one shared backend plan.
struct PendingPairs {
    values: Vec<f64>,
    resolve: Vec<(usize, usize)>,
    cache_hits: u64,
    trivial_queries: u64,
    owned_items: u64,
    /// Plan slots this request contributed first (its *owned* items) — the
    /// per-item costs at these slots are attributed to this request in the
    /// response's shared/owned cost split.
    owned_slots: Vec<usize>,
}

/// The unified query plane: one front door for every estimator.
///
/// Callers describe *what* they want — a typed [`Query`] plus an
/// [`Accuracy`] target — and the service plans *how*: a capability check, a
/// cache-tier pass, a routing decision by the [`Planner`], and a batch-native
/// [`Backend`] answer built on per-stream estimator forks (bit-identical at
/// any thread count for a fixed seed).
///
/// The service is `Send + Sync` and [`submit`](Self::submit) takes `&self`:
/// share it behind an `Arc` (or spawn a
/// [`ResistanceServer`](crate::ResistanceServer) over it) and any number of
/// callers can be in flight at once.
///
/// ```
/// use er_service::{Accuracy, Query, Request, ResistanceService};
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(400, 10.0, 7).unwrap();
/// let service = ResistanceService::new(&graph).unwrap();
///
/// let request = Request::new(Query::pair(0, 200)).with_accuracy(Accuracy::epsilon(0.1));
/// let response = service.submit(&request).unwrap();
/// assert!(response.value() > 0.0);
/// // The response names the backend the planner picked and itemises cost.
/// assert!(!response.backend.is_empty());
/// ```
pub struct ResistanceService {
    core: Arc<ServiceCore>,
    caches: CacheTier,
    backends: BackendRegistry,
}

impl ResistanceService {
    /// Default capacity of each accuracy-class cache shard.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

    /// Default number of landmarks for the LANDMARK backend.
    pub const DEFAULT_LANDMARKS: usize = 16;

    /// Builds a service over `graph` with [`ApproxConfig::default`] (runs the
    /// spectral preprocessing once).
    pub fn new(graph: impl IntoGraphArc) -> Result<Self, ServiceError> {
        Self::with_config(graph, ApproxConfig::default())
    }

    /// Builds a service with an explicit estimator configuration (seed,
    /// default ε/δ/τ, worker threads).
    pub fn with_config(
        graph: impl IntoGraphArc,
        config: ApproxConfig,
    ) -> Result<Self, ServiceError> {
        let context = GraphContext::preprocess(graph)?;
        Ok(Self::from_context(context, config))
    }

    /// Builds a service over an already-preprocessed [`GraphContext`].
    pub fn from_context(context: GraphContext, config: ApproxConfig) -> Self {
        ResistanceService {
            core: Arc::new(ServiceCore {
                context,
                config,
                planner: Planner::default(),
                landmark_count: Self::DEFAULT_LANDMARKS,
                required_landmarks: Vec::new(),
                router: None,
            }),
            caches: CacheTier::new(Self::DEFAULT_CACHE_CAPACITY),
            backends: BackendRegistry::default(),
        }
    }

    /// The immutable core, for builder-time mutation only (before the
    /// service is shared).
    fn core_mut(&mut self) -> &mut ServiceCore {
        Arc::get_mut(&mut self.core)
            .expect("service builders must run before the service is shared")
    }

    /// Overrides the routing policy.
    #[must_use]
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.core_mut().planner = planner;
        self
    }

    /// Overrides the planner's thresholds (shorthand for
    /// [`with_planner`](Self::with_planner) on [`Planner::new`]).
    #[must_use]
    pub fn with_planner_config(mut self, config: PlannerConfig) -> Self {
        self.core_mut().planner = Planner::new(config);
        self
    }

    /// Overrides the per-accuracy-class cache-shard capacity (entries).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.caches = CacheTier::new(capacity.max(1));
        self
    }

    /// Overrides the landmark count of the LANDMARK backend.
    #[must_use]
    pub fn with_landmarks(mut self, count: usize) -> Self {
        self.core_mut().landmark_count = count.max(1);
        self
    }

    /// Pins specific nodes as landmarks of the LANDMARK backend (they come
    /// first, topped up to [`with_landmarks`](Self::with_landmarks) by the
    /// mixed selection). The sharded serving plane pins each shard's
    /// boundary portals so bound queries are anchored at the cut.
    #[must_use]
    pub fn with_required_landmarks(mut self, nodes: Vec<NodeId>) -> Self {
        self.core_mut().required_landmarks = nodes;
        self
    }

    /// Installs a routing backend for planner-routed pair-shaped requests
    /// (`Pair`, `Batch`, `EdgeSet`).
    ///
    /// With a router installed, those requests skip the
    /// [`BackendChoice`] registry and are answered by `router` — the
    /// integration point that lets a sharded topology
    /// (`effective_resistance::shard::ShardRouter`) serve through the
    /// ordinary [`submit`](Self::submit) front door, cache tier and
    /// [`ResistanceServer`](crate::ResistanceServer) unchanged. Requests
    /// with an explicit [`Request::backend`](crate::Request::backend)
    /// override, and all source-shaped queries, are unaffected;
    /// [`plan`](Self::plan) likewise keeps reporting the planner's own
    /// choice.
    #[must_use]
    pub fn with_pair_router(mut self, router: Arc<dyn Backend>) -> Self {
        self.core_mut().router = Some(router);
        self
    }

    /// Installs a pre-built INDEX backend, marking the index tier ready so
    /// the planner routes to it immediately (no lazy build, no solves).
    ///
    /// The backend's state must describe this service's graph exactly —
    /// e.g. an [`IndexBackend::from_parts`] reassembly of state carried
    /// across epochs by the dynamic service's Sherman–Morrison updates.
    /// The graph handle must cover the same node set; this is asserted.
    #[must_use]
    pub fn with_prebuilt_index(self, backend: Arc<IndexBackend>) -> Self {
        assert_eq!(
            backend.graph_arc().num_nodes(),
            self.core.context.graph().num_nodes(),
            "prebuilt index must cover the service's node set"
        );
        *self.backends.index.lock().expect("index slot poisoned") = Some(backend);
        self.backends
            .index_ready
            .store(true, std::sync::atomic::Ordering::Release);
        self
    }

    /// Installs a pre-built LANDMARK backend (no lazy build, no solves).
    /// Same contract as [`with_prebuilt_index`](Self::with_prebuilt_index):
    /// the index must describe this service's graph.
    #[must_use]
    pub fn with_prebuilt_landmarks(self, backend: Arc<LandmarkBackend>) -> Self {
        assert_eq!(
            backend.index().num_nodes(),
            self.core.context.graph().num_nodes(),
            "prebuilt landmarks must cover the service's node set"
        );
        *self
            .backends
            .landmark
            .lock()
            .expect("landmark slot poisoned") = Some(backend);
        self
    }

    /// The INDEX backend if it has been built (or installed pre-built);
    /// never triggers a build. The extraction side of epoch handover: the
    /// dynamic service peeks here to harvest resident columns before a
    /// mutation burst.
    pub fn index_backend(&self) -> Option<Arc<IndexBackend>> {
        self.backends
            .index
            .lock()
            .expect("index slot poisoned")
            .clone()
    }

    /// The LANDMARK backend if it has been built (or installed pre-built);
    /// never triggers a build.
    pub fn landmark_backend(&self) -> Option<Arc<LandmarkBackend>> {
        self.backends
            .landmark
            .lock()
            .expect("landmark slot poisoned")
            .clone()
    }

    /// The preprocessed graph context the service answers over.
    pub fn context(&self) -> &GraphContext {
        &self.core.context
    }

    /// The service's estimator configuration.
    pub fn config(&self) -> ApproxConfig {
        self.core.config
    }

    /// The routing policy in force.
    pub fn planner(&self) -> Planner {
        self.core.planner
    }

    /// What the planner can currently observe about this service.
    ///
    /// Lock-free (an atomic load), so planning never blocks behind an
    /// in-progress index build.
    pub fn planner_state(&self) -> PlannerState {
        PlannerState {
            index_ready: self
                .backends
                .index_ready
                .load(std::sync::atomic::Ordering::Acquire),
        }
    }

    /// The backend the service would use for `request` right now, without
    /// doing any work. Honors the request's override.
    ///
    /// Planner-routed requests see the full [`GraphSignals`]: node count
    /// plus the spectral radius λ the preprocessing measured, so the
    /// spectral-gap rule is always active inside the service.
    pub fn plan(&self, request: &Request) -> BackendChoice {
        request.backend.unwrap_or_else(|| {
            let signals = GraphSignals::of_nodes(self.core.context.graph().num_nodes())
                .with_lambda(self.core.context.lambda());
            self.core.planner.route(
                &request.query,
                request.accuracy,
                signals,
                self.planner_state(),
            )
        })
    }

    /// Answers a request: validates it, consults the cache tier, routes to a
    /// backend and assembles the response in request order.
    ///
    /// Takes `&self`: any number of threads may submit concurrently.
    ///
    /// Determinism: the RNG stream of every pair is derived from the pair
    /// *content* (not its request position or scheduling order), and every
    /// miss is computed in the canonical `(min, max)` orientation, so for a
    /// fixed service seed a pair's value is bit-identical whether it is
    /// served alone, inside a batch, coalesced with other requests, from the
    /// cache, as `(s, t)` or as `(t, s)`, or at any
    /// [`threads`](ApproxConfig::threads) setting. The one
    /// history-dependent exception: an `Exact` value already in the cache
    /// tier may serve a later ε request of the same backend-override class
    /// (exact answers satisfy every ε target), substituting the exact bits
    /// for the sampled ones.
    pub fn submit(&self, request: &Request) -> Result<Response, ServiceError> {
        match &request.query {
            Query::Pair { .. } | Query::Batch { .. } | Query::EdgeSet { .. } => {
                let choice = self.plan(request);
                let mut responses = self.submit_pairs_planned(&[request], choice)?;
                Ok(responses.pop().expect("one response per request"))
            }
            Query::SingleSource { source } => self.submit_source(request, *source, 0),
            Query::TopK { source, k } => self.submit_source(request, *source, *k),
            Query::Diagonal => self.submit_diagonal(request),
        }
    }

    /// Answers several pair-shaped requests as **one backend plan** — the
    /// cross-request coalescing primitive behind the
    /// [`ResistanceServer`](crate::ResistanceServer). All requests must share
    /// one accuracy target, one backend override and one planned backend
    /// (the server groups by exactly these), otherwise the call is rejected
    /// with [`ServiceError::InvalidRequest`].
    ///
    /// Coalescing changes *work*, never *values*: distinct pairs across the
    /// group are deduplicated into one plan, sampling backends amortize one
    /// parallel fan-out (and HAY one spanning-tree pool) over all of them,
    /// and each returned response carries values bit-identical to what its
    /// request would have computed alone. The reported
    /// [`cost`](Response::cost) is that of the shared computation, attributed
    /// to every member of the group.
    pub fn submit_coalesced(&self, requests: &[&Request]) -> Result<Vec<Response>, ServiceError> {
        let Some(first) = requests.first() else {
            return Ok(Vec::new());
        };
        let choice = self.plan(first);
        for request in requests {
            if !request.query.shape().is_pairwise() {
                return Err(ServiceError::InvalidRequest {
                    message: "only pair-shaped queries can be coalesced".into(),
                });
            }
            if request.accuracy != first.accuracy || request.backend != first.backend {
                return Err(ServiceError::InvalidRequest {
                    message: "coalesced requests must share one accuracy class".into(),
                });
            }
            if self.plan(request) != choice {
                return Err(ServiceError::InvalidRequest {
                    message: "coalesced requests must plan to the same backend".into(),
                });
            }
        }
        self.submit_pairs_planned(requests, choice)
    }

    /// Convenience: one pair at the service's default accuracy.
    pub fn resistance(&self, s: NodeId, t: NodeId) -> Result<f64, ServiceError> {
        Ok(self.submit(&Request::new(Query::pair(s, t)))?.value())
    }

    /// Convenience: `r(source, v)` for every `v`, exactly.
    pub fn single_source(&self, source: NodeId) -> Result<Vec<f64>, ServiceError> {
        Ok(self
            .submit(&Request::new(Query::single_source(source)))?
            .values)
    }

    /// Convenience: the Kirchhoff index `Σ_{s<t} r(s, t) = n · tr(L†)`,
    /// computed from a [`Query::Diagonal`] answer.
    pub fn kirchhoff_index(&self) -> Result<f64, ServiceError> {
        let diag = self.submit(&Request::new(Query::Diagonal))?;
        let n = self.core.context.graph().num_nodes() as f64;
        Ok(n * diag.values.iter().sum::<f64>())
    }

    /// The shared submit path for pair-shaped requests: validation, the
    /// cache-tier pass (per-class shard plus the legal `Exact` → ε
    /// cross-class probe), cross-request dedup into one plan on
    /// content-derived streams, one backend call, and per-request response
    /// assembly.
    fn submit_pairs_planned(
        &self,
        requests: &[&Request],
        choice: BackendChoice,
    ) -> Result<Vec<Response>, ServiceError> {
        let first = requests.first().expect("submit_pairs_planned needs input");
        let accuracy = first.accuracy;
        // An installed router intercepts planner-routed groups; explicit
        // backend overrides keep their named backend.
        let router = match first.backend {
            None => self.core.router.as_ref(),
            Some(_) => None,
        };
        let backend_name = router.map_or_else(|| choice.name(), |r| r.name());
        let capabilities = router.map_or_else(|| choice.capabilities(), |r| r.capabilities());

        // Validation first (bad node ids / non-edges fail before any backend
        // or cache cost is paid), then the static capability check.
        for request in requests {
            let shape = request.query.shape();
            for &(s, t) in request.query.pairs().iter() {
                self.core.context.check_pair(s, t)?;
                if shape == QueryShape::EdgeSet
                    && s != t
                    && !self.core.context.graph().has_edge(s, t)
                {
                    return Err(ServiceError::InvalidRequest {
                        message: format!("({s}, {t}) is not an edge of the graph"),
                    });
                }
            }
            if !capabilities.contains(shape) {
                return Err(ServiceError::UnsupportedShape {
                    backend: backend_name,
                    shape,
                });
            }
        }

        // Cache tier: trivial self-pairs short-circuit, repeats (within a
        // request, across coalesced requests, and across earlier requests in
        // the same class) are hits, distinct misses become plan items. Each
        // miss runs on the RNG stream derived from its pair content, so the
        // answer is independent of cache state, group composition and thread
        // count.
        let class = CacheClass::of(accuracy, first.backend);
        let shard = self.caches.shard(class);
        let exact_shard = class
            .exact_sibling()
            .and_then(|sibling| self.caches.existing_shard(sibling));
        let mut pending: Vec<PendingPairs> = Vec::with_capacity(requests.len());
        let mut miss_index: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut items: Vec<PlanItem> = Vec::new();
        let mut streams: Vec<u64> = Vec::new();
        {
            let mut cache = shard.lock().expect("cache shard poisoned");
            // Lock order is always ε-shard then Exact-shard; Exact requests
            // never take a second shard, so the order is acyclic.
            let exact_guard = exact_shard
                .as_ref()
                .map(|s| s.lock().expect("cache shard poisoned"));
            for request in requests {
                let pairs = request.query.pairs();
                let mut p = PendingPairs {
                    values: vec![0.0; pairs.len()],
                    resolve: Vec::new(),
                    cache_hits: 0,
                    trivial_queries: 0,
                    owned_items: 0,
                    owned_slots: Vec::new(),
                };
                for (pos, &(s, t)) in pairs.iter().enumerate() {
                    if s == t {
                        p.trivial_queries += 1;
                        continue;
                    }
                    if let Some(v) = cache.get(s, t) {
                        p.cache_hits += 1;
                        p.values[pos] = v;
                        continue;
                    }
                    // ROADMAP cache-tier fix: an Exact entry of the same
                    // backend-override class legally serves any ε request —
                    // probe without touching the exact shard's statistics.
                    if let Some(exact) = exact_guard.as_deref() {
                        if let Some(v) = exact.peek(s, t) {
                            p.cache_hits += 1;
                            p.values[pos] = v;
                            continue;
                        }
                    }
                    let key = (s.min(t), s.max(t));
                    match miss_index.get(&key) {
                        Some(&slot) => {
                            p.cache_hits += 1;
                            p.resolve.push((pos, slot));
                        }
                        None => {
                            let slot = items.len();
                            miss_index.insert(key, slot);
                            // Canonical orientation: r(s, t) = r(t, s), but
                            // sampling backends draw different (equally
                            // valid) bits per orientation. Computing every
                            // miss as (min, max) keeps a pair's bits
                            // identical no matter which orientation reaches
                            // the plan first — without this, cross-request
                            // dedup of (s, t) with a later (t, s) would make
                            // the answer depend on arrival order.
                            items.push(PlanItem { s: key.0, t: key.1 });
                            streams.push(pair_stream(s, t));
                            p.owned_items += 1;
                            p.owned_slots.push(slot);
                            p.resolve.push((pos, slot));
                        }
                    }
                }
                pending.push(p);
            }
        }

        // Fully cache-served groups never touch (or build) a backend.
        if items.is_empty() {
            return Ok(pending
                .into_iter()
                .map(|p| Response {
                    values: p.values,
                    nodes: Vec::new(),
                    backend: backend_name,
                    cost: er_core::CostBreakdown::default(),
                    shared_cost: er_core::CostBreakdown::default(),
                    item_costs: Vec::new(),
                    cache_hits: p.cache_hits,
                    backend_calls: 0,
                    trivial_queries: p.trivial_queries,
                })
                .collect());
        }

        // One shape for the merged plan: edge-set groups stay edge-sets (the
        // HAY/MC2 capability), anything else is a batch.
        let plan_shape = if requests.len() == 1 {
            first.query.shape()
        } else if requests
            .iter()
            .all(|r| r.query.shape() == QueryShape::EdgeSet)
        {
            QueryShape::EdgeSet
        } else {
            QueryShape::Batch
        };
        let plan = Plan::for_items(plan_shape, accuracy, items);
        let stream_plan = StreamPlan {
            streams,
            threads: self.core.config.threads,
        };
        let backend: Arc<dyn Backend> = match router {
            Some(r) => Arc::clone(r),
            None => self.backend_instance(choice, accuracy)?,
        };
        let answer = backend.answer(&plan, &stream_plan)?;
        {
            let mut cache = shard.lock().expect("cache shard poisoned");
            for (item, &value) in plan.items.iter().zip(&answer.values) {
                cache.insert(item.s, item.t, value);
            }
        }
        Ok(pending
            .into_iter()
            .map(|p| {
                let mut values = p.values;
                for &(pos, slot) in &p.resolve {
                    values[pos] = answer.values[slot];
                }
                // Cost split (satellite of the batched-GEER work): `cost`
                // keeps its historical meaning — the whole shared
                // computation, attributed to every member — while
                // `shared_cost` + the member's owned `item_costs` let
                // metrics aggregate a coalesced group without overstating
                // work: Σ members' owned + one shared = the true total.
                let item_costs: Vec<er_core::CostBreakdown> = p
                    .owned_slots
                    .iter()
                    .map(|&slot| answer.item_costs.get(slot).copied().unwrap_or_default())
                    .collect();
                Response {
                    values,
                    nodes: Vec::new(),
                    backend: backend_name,
                    cost: answer.cost,
                    shared_cost: answer.shared_cost,
                    item_costs,
                    cache_hits: p.cache_hits,
                    backend_calls: p.owned_items,
                    trivial_queries: p.trivial_queries,
                }
            })
            .collect())
    }

    fn submit_source(
        &self,
        request: &Request,
        source: NodeId,
        k: usize,
    ) -> Result<Response, ServiceError> {
        self.core.context.check_pair(source, source)?;
        let shape = request.query.shape();
        let choice = self.plan(request);
        if !choice.capabilities().contains(shape) {
            return Err(ServiceError::UnsupportedShape {
                backend: choice.name(),
                shape,
            });
        }
        let backend = self.backend_instance(choice, request.accuracy)?;
        let plan = Plan {
            shape,
            accuracy: request.accuracy,
            items: vec![],
            source: Some(source),
            k,
        };
        let streams = StreamPlan {
            streams: vec![],
            threads: self.core.config.threads,
        };
        backend.answer(&plan, &streams)
    }

    fn submit_diagonal(&self, request: &Request) -> Result<Response, ServiceError> {
        let choice = self.plan(request);
        if !choice.capabilities().contains(QueryShape::Diagonal) {
            return Err(ServiceError::UnsupportedShape {
                backend: choice.name(),
                shape: QueryShape::Diagonal,
            });
        }
        let backend = self.backend_instance(choice, request.accuracy)?;
        let plan = Plan {
            shape: QueryShape::Diagonal,
            accuracy: request.accuracy,
            items: vec![],
            source: None,
            k: 0,
        };
        let streams = StreamPlan {
            streams: vec![],
            threads: self.core.config.threads,
        };
        backend.answer(&plan, &streams)
    }

    /// The estimator configuration a backend prototype should run with under
    /// the given accuracy: ε-targets override the service's default ε/δ.
    fn effective_config(&self, accuracy: Accuracy) -> ApproxConfig {
        match accuracy {
            Accuracy::Epsilon { eps, delta } => ApproxConfig {
                epsilon: eps,
                delta,
                ..self.core.config
            },
            _ => self.core.config,
        }
    }

    /// Builds (or fetches the memoized instance of) the backend for a
    /// routing choice. The index, landmark, dense-exact and RP backends
    /// carry expensive preprocessing and are memoized behind per-slot locks
    /// (concurrent requests wait for one build instead of duplicating it);
    /// the remaining estimator prototypes are free to construct and are
    /// rebuilt per request so they pick up the request's accuracy target.
    fn backend_instance(
        &self,
        choice: BackendChoice,
        accuracy: Accuracy,
    ) -> Result<Arc<dyn Backend>, ServiceError> {
        use crate::capability::QueryShapeSet;
        let cfg = self.effective_config(accuracy);
        let budget = match accuracy {
            Accuracy::WalkBudget(b) => Some(b),
            _ => None,
        };
        let ctx = &self.core.context;
        Ok(match choice {
            BackendChoice::Geer => {
                // GEER is batch-native: one shared SMM frontier per distinct
                // endpoint of the plan, bit-identical to per-pair forks.
                let mut backend = GeerBackend::new(ctx, cfg);
                if let Some(b) = budget {
                    backend = backend.with_walk_budget(b);
                }
                Arc::new(backend)
            }
            BackendChoice::Amc => {
                let mut proto = Amc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "AMC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Smm => Arc::new(EstimatorBackend::new(
                Smm::new(ctx, cfg),
                "SMM",
                QueryShapeSet::PAIRWISE,
            )),
            BackendChoice::Tp => {
                let mut proto = Tp::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "TP", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Tpc => {
                let mut proto = Tpc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "TPC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Rp => {
                // RP pays its preprocessing (a multi-row sketch of Laplacian
                // solves) up front; rebuild only when the operating point
                // changes.
                let key = (cfg.epsilon.to_bits(), cfg.delta.to_bits());
                let mut slot = self.backends.rp.lock().expect("rp slot poisoned");
                match slot.as_ref() {
                    Some((k, backend)) if *k == key => backend.clone(),
                    _ => {
                        let backend = Arc::new(EstimatorBackend::new(
                            Rp::with_entry_budget(ctx, cfg, 10_000_000)?,
                            "RP",
                            QueryShapeSet::PAIRWISE,
                        ));
                        *slot = Some((key, backend.clone()));
                        backend
                    }
                }
            }
            BackendChoice::Mc => {
                let mut proto = Mc::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(proto, "MC", QueryShapeSet::PAIRWISE))
            }
            BackendChoice::Mc2 => {
                let mut proto = Mc2::new(ctx, cfg);
                if let Some(b) = budget {
                    proto = proto.with_walk_budget(b);
                }
                Arc::new(EstimatorBackend::new(
                    proto,
                    "MC2",
                    QueryShapeSet::EDGE_ONLY,
                ))
            }
            BackendChoice::Hay => Arc::new(HayBatchBackend::new(ctx, cfg)),
            BackendChoice::ExactCg => Arc::new(EstimatorBackend::new(
                Exact::with_solver(ctx),
                "EXACT-CG",
                QueryShapeSet::PAIRWISE,
            )),
            BackendChoice::ExactDense => {
                let mut slot = self
                    .backends
                    .exact_dense
                    .lock()
                    .expect("exact-dense slot poisoned");
                if slot.is_none() {
                    *slot = Some(Arc::new(EstimatorBackend::new(
                        Exact::new(ctx)?,
                        "EXACT",
                        QueryShapeSet::PAIRWISE,
                    )));
                }
                slot.clone().expect("memoized above")
            }
            BackendChoice::Index => {
                let mut slot = self.backends.index.lock().expect("index slot poisoned");
                if slot.is_none() {
                    let index = ErIndex::build_with_threads(
                        self.core.context.graph_arc().clone(),
                        DiagonalStrategy::ExactSolves,
                        self.core.config.seed,
                        self.core.config.threads,
                    )?;
                    *slot = Some(Arc::new(IndexBackend::new(index)));
                    self.backends
                        .index_ready
                        .store(true, std::sync::atomic::Ordering::Release);
                }
                slot.clone().expect("memoized above")
            }
            BackendChoice::Landmark => {
                let mut slot = self
                    .backends
                    .landmark
                    .lock()
                    .expect("landmark slot poisoned");
                if slot.is_none() {
                    let index = if self.core.required_landmarks.is_empty() {
                        LandmarkIndex::build(
                            self.core.context.graph(),
                            self.core.landmark_count,
                            LandmarkSelection::Mixed,
                            self.core.config.seed,
                        )?
                    } else {
                        // Required landmarks (e.g. a shard's boundary portals)
                        // claim the leading positions; the mixed selection
                        // tops the set up to the configured count.
                        let extra = self
                            .core
                            .landmark_count
                            .saturating_sub(self.core.required_landmarks.len());
                        LandmarkIndex::build_with_required(
                            self.core.context.graph(),
                            &self.core.required_landmarks,
                            extra,
                            LandmarkSelection::Mixed,
                            self.core.config.seed,
                        )?
                    };
                    *slot = Some(Arc::new(LandmarkBackend::new(index)));
                }
                slot.clone().expect("memoized above")
            }
        })
    }

    /// Hit/miss statistics of the cache tier, summed over accuracy classes:
    /// `(hits, misses, entries)`.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut entries = 0;
        for shard in self
            .caches
            .shards
            .read()
            .expect("cache tier lock poisoned")
            .values()
        {
            let cache = shard.lock().expect("cache shard poisoned");
            hits += cache.hits();
            misses += cache.misses();
            entries += cache.len();
        }
        (hits, misses, entries)
    }

    /// Hint that upcoming requests are repeated-source workloads: builds the
    /// index tier now so the planner can route to it immediately.
    pub fn warm_index(&self) -> Result<(), ServiceError> {
        self.backend_instance(BackendChoice::Index, Accuracy::Exact)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn service(n: usize) -> ResistanceService {
        let g = generators::social_network_like(n, 8.0, 7).unwrap();
        ResistanceService::new(&g).unwrap()
    }

    #[test]
    fn service_is_send_and_sync_and_shareable() {
        fn check<T: Send + Sync>(_: &T) {}
        let s = service(80);
        check(&s);
        // Two threads submit through one &self concurrently.
        let s = Arc::new(s);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || {
                    s.submit(&Request::new(Query::pair(i, 40 + i)))
                        .unwrap()
                        .value()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() > 0.0);
        }
    }

    #[test]
    fn pair_streams_are_symmetric_and_content_addressed() {
        assert_eq!(pair_stream(3, 9), pair_stream(9, 3));
        assert_ne!(pair_stream(3, 9), pair_stream(3, 10));
        // A pair's stream does not depend on anything but the pair.
        let a = pair_stream(123, 456);
        assert_eq!(a, pair_stream(123, 456));
    }

    #[test]
    fn pair_and_batch_round_trip_with_cache() {
        let s = service(200);
        let response = s
            .submit(&Request::new(Query::batch(vec![
                (0, 10),
                (10, 0),
                (3, 3),
                (0, 10),
            ])))
            .unwrap();
        assert_eq!(response.values.len(), 4);
        assert_eq!(response.values[0], response.values[1]);
        assert_eq!(response.values[2], 0.0);
        assert_eq!(response.backend_calls, 1, "one distinct non-trivial pair");
        assert_eq!(response.cache_hits, 2);
        assert_eq!(response.trivial_queries, 1);
        // Same pair again: served from the cache, zero backend calls.
        let again = s.submit(&Request::new(Query::pair(10, 0))).unwrap();
        assert_eq!(again.backend_calls, 0);
        assert_eq!(again.cache_hits, 1);
        assert_eq!(again.value(), response.values[0]);
        // QueryCache-level statistics count only cross-request reuse: the
        // in-batch repeats above were resolved by the dedup pass before
        // reaching the cache, so exactly one lookup hit.
        let (hits, _, entries) = s.cache_stats();
        assert_eq!(hits, 1);
        assert!(entries >= 1);
    }

    #[test]
    fn cached_values_match_a_fresh_computation_bit_for_bit() {
        // Streams are content-derived, so a value served from the cache is
        // the same bits a fresh service computes for the same pair — the
        // property the serving plane's arrival-order invariance rests on.
        let g = generators::social_network_like(200, 8.0, 7).unwrap();
        let warm = ResistanceService::new(&g).unwrap();
        warm.submit(&Request::new(Query::batch(vec![(7, 90), (8, 120)])))
            .unwrap();
        let cached = warm
            .submit(&Request::new(Query::pair(8, 120)).with_accuracy(Accuracy::default()))
            .unwrap();
        assert_eq!(cached.backend_calls, 0, "served from cache");
        let fresh = ResistanceService::new(&g).unwrap();
        let computed = fresh.submit(&Request::new(Query::pair(8, 120))).unwrap();
        assert_eq!(computed.backend_calls, 1);
        assert_eq!(cached.value().to_bits(), computed.value().to_bits());
    }

    #[test]
    fn accuracy_classes_do_not_share_cache_entries() {
        let s = service(200);
        let coarse = s
            .submit(&Request::new(Query::pair(0, 50)).with_accuracy(Accuracy::epsilon(0.5)))
            .unwrap();
        let finer = s
            .submit(&Request::new(Query::pair(0, 50)).with_accuracy(Accuracy::epsilon(0.05)))
            .unwrap();
        // The finer request must not be served the coarse cached value: it
        // performed its own backend call.
        assert_eq!(finer.backend_calls, 1);
        assert_eq!(coarse.backend_calls, 1);
    }

    #[test]
    fn exact_entries_serve_later_epsilon_requests() {
        // ROADMAP cache-tier fix: a CG-exact value short-circuits a later ε
        // query in the same backend-override class.
        let s = service(200);
        let exact = s
            .submit(&Request::new(Query::pair(0, 50)).with_accuracy(Accuracy::Exact))
            .unwrap();
        assert_eq!(exact.backend_calls, 1);
        let eps = s
            .submit(&Request::new(Query::pair(50, 0)).with_accuracy(Accuracy::epsilon(0.3)))
            .unwrap();
        assert_eq!(eps.backend_calls, 0, "served from the Exact shard");
        assert_eq!(eps.cache_hits, 1);
        assert_eq!(eps.value().to_bits(), exact.value().to_bits());
        // The reverse direction must NOT hold: ε entries never serve Exact.
        let eps_first = s
            .submit(&Request::new(Query::pair(3, 90)).with_accuracy(Accuracy::epsilon(0.3)))
            .unwrap();
        assert_eq!(eps_first.backend_calls, 1);
        let exact_after = s
            .submit(&Request::new(Query::pair(3, 90)).with_accuracy(Accuracy::Exact))
            .unwrap();
        assert_eq!(exact_after.backend_calls, 1, "exact recomputes");
        // Nor across backend-override classes: a forced-GEER ε request must
        // not see the planner-class exact entry.
        let forced = s
            .submit(
                &Request::new(Query::pair(0, 50))
                    .with_accuracy(Accuracy::epsilon(0.3))
                    .with_backend(BackendChoice::Geer),
            )
            .unwrap();
        assert_eq!(forced.backend_calls, 1);
    }

    #[test]
    fn backend_overrides_do_not_share_cache_entries() {
        let s = service(200);
        let planned = s.submit(&Request::new(Query::pair(0, 50))).unwrap();
        let forced_geer = s
            .submit(&Request::new(Query::pair(0, 50)).with_backend(BackendChoice::Geer))
            .unwrap();
        let forced_amc = s
            .submit(&Request::new(Query::pair(0, 50)).with_backend(BackendChoice::Amc))
            .unwrap();
        // Each override must do its own work, not inherit another backend's
        // cached value.
        assert_eq!(planned.backend_calls, 1);
        assert_eq!(forced_geer.backend_calls, 1);
        assert_eq!(forced_amc.backend_calls, 1);
        assert_eq!(forced_geer.backend, "GEER");
        assert_eq!(forced_amc.backend, "AMC");
        // But a repeat of the same override is a cache hit.
        let repeat = s
            .submit(&Request::new(Query::pair(50, 0)).with_backend(BackendChoice::Amc))
            .unwrap();
        assert_eq!(repeat.backend_calls, 0);
        assert_eq!(repeat.value(), forced_amc.value());
    }

    #[test]
    fn coalesced_submission_is_value_identical_to_solo_submission() {
        let g = generators::social_network_like(200, 8.0, 7).unwrap();
        let solo = ResistanceService::new(&g).unwrap();
        let a = Request::new(Query::pair(0, 100)).with_backend(BackendChoice::Geer);
        let b = Request::new(Query::batch(vec![(5, 60), (0, 100), (7, 7)]))
            .with_backend(BackendChoice::Geer);
        let solo_a = solo.submit(&a).unwrap();
        let solo_b = solo.submit(&b).unwrap();

        let grouped = ResistanceService::new(&g).unwrap();
        let responses = grouped.submit_coalesced(&[&a, &b]).unwrap();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].values, solo_a.values);
        assert_eq!(responses[1].values, solo_b.values);
        assert_eq!(responses[0].backend, "GEER");
        // The shared pair (0, 100) is computed once: request b sees it as a
        // group-level hit.
        assert_eq!(responses[0].backend_calls, 1);
        assert_eq!(responses[1].backend_calls, 1, "only (5, 60) is new");
        assert_eq!(responses[1].cache_hits, 1);
        assert_eq!(responses[1].trivial_queries, 1);
    }

    #[test]
    fn coalesced_submission_rejects_mixed_classes() {
        let s = service(150);
        let a = Request::new(Query::pair(0, 75));
        let mismatched_accuracy =
            Request::new(Query::pair(0, 76)).with_accuracy(Accuracy::epsilon(0.4));
        assert!(matches!(
            s.submit_coalesced(&[&a, &mismatched_accuracy]),
            Err(ServiceError::InvalidRequest { .. })
        ));
        let source_shaped = Request::new(Query::single_source(0));
        assert!(matches!(
            s.submit_coalesced(&[&a, &source_shaped]),
            Err(ServiceError::InvalidRequest { .. })
        ));
        let mismatched_backend = Request::new(Query::pair(0, 76)).with_backend(BackendChoice::Amc);
        assert!(matches!(
            s.submit_coalesced(&[&a, &mismatched_backend]),
            Err(ServiceError::InvalidRequest { .. })
        ));
        assert!(s.submit_coalesced(&[]).unwrap().is_empty());
    }

    #[test]
    fn small_graph_epsilon_requests_are_answered_exactly() {
        let s = service(150);
        let response = s.submit(&Request::new(Query::pair(0, 75))).unwrap();
        assert_eq!(response.backend, "EXACT-CG");
        // Cross-check against the index tier.
        let row = s.single_source(0).unwrap();
        assert!((row[75] - response.value()).abs() < 1e-6);
    }

    #[test]
    fn override_knob_forces_a_backend() {
        let s = service(150);
        let forced = s
            .submit(&Request::new(Query::pair(0, 75)).with_backend(BackendChoice::Geer))
            .unwrap();
        assert_eq!(forced.backend, "GEER");
        assert!(forced.cost.random_walks > 0 || forced.cost.matvec_ops > 0);
        // An estimator that cannot answer the shape is rejected.
        let err = s
            .submit(&Request::new(Query::single_source(0)).with_backend(BackendChoice::Geer))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnsupportedShape { .. }));
    }

    #[test]
    fn edge_sets_validate_membership() {
        let s = service(150);
        let g_edges: Vec<_> = s.context().graph().edges().take(4).collect();
        let ok = s.submit(&Request::new(Query::edge_set(g_edges))).unwrap();
        assert_eq!(ok.values.len(), 4);
        let mut non_edge = None;
        let g = s.context().graph();
        'outer: for u in 0..g.num_nodes() {
            for v in (u + 1)..g.num_nodes() {
                if !g.has_edge(u, v) {
                    non_edge = Some((u, v));
                    break 'outer;
                }
            }
        }
        let err = s
            .submit(&Request::new(Query::edge_set(vec![non_edge.unwrap()])))
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidRequest { .. }));
    }

    #[test]
    fn source_shapes_route_to_the_index_and_kirchhoff_matches() {
        let s = service(150);
        let request = Request::new(Query::top_k(0, 5));
        assert_eq!(s.plan(&request), BackendChoice::Index);
        let top = s.submit(&request).unwrap();
        assert_eq!(top.backend, "INDEX");
        assert_eq!(top.nodes.len(), 5);
        assert!(top.values.windows(2).all(|w| w[0] <= w[1]));
        let kf = s.kirchhoff_index().unwrap();
        assert!(kf > 0.0);
        // After the index is built the planner observes it.
        assert!(s.planner_state().index_ready);
        assert_eq!(
            s.plan(&Request::new(Query::pair(0, 1)).with_accuracy(Accuracy::Exact)),
            BackendChoice::Index
        );
    }

    #[test]
    fn static_capabilities_match_backend_instances() {
        // The early-rejection policy on BackendChoice must agree with what
        // each constructed backend actually declares.
        let s = service(120);
        for choice in [
            BackendChoice::Geer,
            BackendChoice::Amc,
            BackendChoice::Smm,
            BackendChoice::Tp,
            BackendChoice::Tpc,
            BackendChoice::Rp,
            BackendChoice::Mc,
            BackendChoice::Mc2,
            BackendChoice::Hay,
            BackendChoice::ExactDense,
            BackendChoice::ExactCg,
            BackendChoice::Index,
            BackendChoice::Landmark,
        ] {
            let backend = s.backend_instance(choice, Accuracy::epsilon(0.5)).unwrap();
            assert_eq!(backend.capabilities(), choice.capabilities(), "{choice:?}");
            assert_eq!(backend.name(), choice.name(), "{choice:?}");
        }
    }

    #[test]
    fn out_of_range_nodes_are_rejected_up_front() {
        let s = service(100);
        assert!(s.submit(&Request::new(Query::pair(0, 5_000))).is_err());
        assert!(s
            .submit(&Request::new(Query::single_source(5_000)))
            .is_err());
    }

    #[test]
    fn walk_budget_is_forwarded() {
        let s = service(150);
        let response = s
            .submit(
                &Request::new(Query::pair(0, 75))
                    .with_accuracy(Accuracy::WalkBudget(500))
                    .with_backend(BackendChoice::Amc),
            )
            .unwrap();
        assert_eq!(response.backend, "AMC");
        assert!(response.cost.random_walks <= 500);
    }

    /// Test double for the router seam: answers every plan item with a
    /// recognisable constant so routed responses are easy to tell apart.
    struct ConstantRouter;

    impl Backend for ConstantRouter {
        fn name(&self) -> &'static str {
            "CONST-ROUTER"
        }

        fn capabilities(&self) -> crate::capability::QueryShapeSet {
            crate::capability::QueryShapeSet::PAIRWISE
        }

        fn answer(&self, plan: &Plan, _streams: &StreamPlan) -> Result<Response, ServiceError> {
            Ok(Response {
                values: vec![42.0; plan.items.len()],
                nodes: Vec::new(),
                backend: self.name(),
                cost: er_core::CostBreakdown::default(),
                shared_cost: er_core::CostBreakdown::default(),
                item_costs: vec![er_core::CostBreakdown::default(); plan.items.len()],
                cache_hits: 0,
                backend_calls: plan.items.len() as u64,
                trivial_queries: 0,
            })
        }
    }

    #[test]
    fn pair_router_intercepts_planner_routed_requests_only() {
        let s = service(100).with_pair_router(Arc::new(ConstantRouter));

        // Planner-routed pair: the router answers.
        let routed = s.submit(&Request::new(Query::pair(0, 50))).unwrap();
        assert_eq!(routed.backend, "CONST-ROUTER");
        assert_eq!(routed.value(), 42.0);

        // Batches are pair-shaped too and go through the same seam.
        let batch = s
            .submit(&Request::new(Query::batch(vec![(0, 1), (2, 3)])))
            .unwrap();
        assert_eq!(batch.backend, "CONST-ROUTER");
        assert_eq!(batch.values, vec![42.0, 42.0]);

        // An explicit backend override bypasses the router.
        let forced = s
            .submit(&Request::new(Query::pair(0, 50)).with_backend(BackendChoice::ExactCg))
            .unwrap();
        assert_eq!(forced.backend, "EXACT-CG");
        assert!(forced.value() < 42.0);

        // A repeat of the routed pair is served from the cache but still
        // reports the router as its backend.
        let cached = s.submit(&Request::new(Query::pair(0, 50))).unwrap();
        assert_eq!(cached.backend, "CONST-ROUTER");
        assert_eq!(cached.cache_hits, 1);
        assert_eq!(cached.value(), 42.0);

        // Source-shaped queries never touch the pair router.
        let source = s
            .submit(&Request::new(Query::single_source(0)).with_accuracy(Accuracy::Exact))
            .unwrap();
        assert_ne!(source.backend, "CONST-ROUTER");
    }

    #[test]
    fn required_landmarks_reach_the_landmark_backend() {
        let g = generators::social_network_like(90, 8.0, 11).unwrap();
        let s = ResistanceService::new(&g)
            .unwrap()
            .with_required_landmarks(vec![3, 7]);
        // An exact landmark pair: r(3, 7) upper == lower when one endpoint
        // is itself a landmark, so the bound midpoint is exact there.
        let response = s
            .submit(&Request::new(Query::pair(3, 7)).with_backend(BackendChoice::Landmark))
            .unwrap();
        assert_eq!(response.backend, "LANDMARK");
        let exact = s
            .submit(&Request::new(Query::pair(3, 7)).with_accuracy(Accuracy::Exact))
            .unwrap();
        assert!(
            (response.value() - exact.value()).abs() < 1e-6,
            "landmark endpoint pairs are exact: {} vs {}",
            response.value(),
            exact.value()
        );
    }

    #[test]
    fn planner_config_builder_reaches_the_routing_table() {
        let g = generators::social_network_like(150, 8.0, 7).unwrap();
        // Threshold below the graph size: the ε request goes to sampling.
        let s = ResistanceService::new(&g)
            .unwrap()
            .with_planner_config(PlannerConfig::default().with_exact_node_threshold(10));
        assert_eq!(
            s.plan(&Request::new(Query::pair(0, 75))),
            BackendChoice::Geer
        );
        assert_eq!(s.planner().config().exact_node_threshold, 10);
    }
}
