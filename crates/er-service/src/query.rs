//! Typed queries, accuracy specifications and requests.

use crate::capability::QueryShape;
use crate::planner::BackendChoice;
use er_graph::NodeId;

/// A typed effective-resistance query — *what* is being asked, decoupled from
/// *how* it will be answered (that is the [`Planner`](crate::Planner)'s job).
///
/// ```
/// use er_service::{Query, ResistanceService};
/// use er_graph::generators;
///
/// let graph = generators::social_network_like(300, 8.0, 7).unwrap();
/// let service = ResistanceService::new(&graph).unwrap();
///
/// // One pair.
/// let r = service.submit(&Query::pair(0, 120).into()).unwrap();
/// assert!(r.values[0] > 0.0);
///
/// // A batch: values come back in request order, repeats and self-pairs are
/// // deduplicated/short-circuited internally.
/// let batch = Query::batch(vec![(0, 120), (120, 0), (5, 5)]);
/// let response = service.submit(&batch.into()).unwrap();
/// assert_eq!(response.values.len(), 3);
/// assert_eq!(response.values[0], response.values[1]);
/// assert_eq!(response.values[2], 0.0);
///
/// // One source against every node (answered from one Laplacian column).
/// let profile = service.submit(&Query::single_source(0).into()).unwrap();
/// assert_eq!(profile.values.len(), graph.num_nodes());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// One ε-approximate PER query for `(s, t)`.
    Pair {
        /// Query source.
        s: NodeId,
        /// Query target.
        t: NodeId,
    },
    /// A batch of pair queries answered as one unit of work (deduplicated,
    /// cached, fanned out across worker threads).
    Batch {
        /// The query pairs, in the order values are wanted back.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// `r(source, v)` for every node `v` (the value at `source` is 0).
    SingleSource {
        /// The fixed source node.
        source: NodeId,
    },
    /// The diagonal of the Laplacian pseudo-inverse, `L†(v, v)` for every
    /// node. The Kirchhoff index follows as `n · Σ_v L†(v, v)`.
    Diagonal,
    /// Resistance of edges of the graph. Every pair must satisfy
    /// `(s, t) ∈ E`; this is the shape tree-sampling backends (HAY) answer
    /// natively, amortising one pool of spanning trees over the whole set.
    EdgeSet {
        /// The query edges, in the order values are wanted back.
        edges: Vec<(NodeId, NodeId)>,
    },
    /// The `k` nodes nearest to `source` in effective-resistance distance
    /// (excluding `source` itself), closest first.
    TopK {
        /// The fixed source node.
        source: NodeId,
        /// How many neighbours to return.
        k: usize,
    },
}

impl Query {
    /// Convenience constructor for [`Query::Pair`].
    pub fn pair(s: NodeId, t: NodeId) -> Query {
        Query::Pair { s, t }
    }

    /// Convenience constructor for [`Query::Batch`].
    pub fn batch(pairs: Vec<(NodeId, NodeId)>) -> Query {
        Query::Batch { pairs }
    }

    /// Convenience constructor for [`Query::SingleSource`].
    pub fn single_source(source: NodeId) -> Query {
        Query::SingleSource { source }
    }

    /// Convenience constructor for [`Query::EdgeSet`].
    pub fn edge_set(edges: Vec<(NodeId, NodeId)>) -> Query {
        Query::EdgeSet { edges }
    }

    /// Convenience constructor for [`Query::TopK`].
    pub fn top_k(source: NodeId, k: usize) -> Query {
        Query::TopK { source, k }
    }

    /// The shape of this query (what capability a backend needs to answer it).
    pub fn shape(&self) -> QueryShape {
        match self {
            Query::Pair { .. } => QueryShape::Pair,
            Query::Batch { .. } => QueryShape::Batch,
            Query::SingleSource { .. } => QueryShape::SingleSource,
            Query::Diagonal => QueryShape::Diagonal,
            Query::EdgeSet { .. } => QueryShape::EdgeSet,
            Query::TopK { .. } => QueryShape::TopK,
        }
    }

    /// The pair list of a pair-shaped query (`Pair`, `Batch`, `EdgeSet`);
    /// empty for the source-shaped queries.
    pub fn pairs(&self) -> std::borrow::Cow<'_, [(NodeId, NodeId)]> {
        use std::borrow::Cow;
        match self {
            Query::Pair { s, t } => Cow::Owned(vec![(*s, *t)]),
            Query::Batch { pairs } => Cow::Borrowed(pairs.as_slice()),
            Query::EdgeSet { edges } => Cow::Borrowed(edges.as_slice()),
            _ => Cow::Borrowed(&[]),
        }
    }
}

/// How accurate the answer must be — Definition 2.2 of the paper, plus the
/// two pragmatic alternatives a serving system needs.
///
/// ```
/// use er_service::Accuracy;
///
/// // The paper's ε-approximate guarantee (default: ε = 0.1, δ = 0.01).
/// let eps = Accuracy::default();
/// assert!(matches!(eps, Accuracy::Epsilon { .. }));
///
/// // A hard cap on sampling work: "spend at most 50k walks per query".
/// let budgeted = Accuracy::WalkBudget(50_000);
///
/// // Exact answers (up to solver tolerance), whatever the cost.
/// let exact = Accuracy::Exact;
/// assert_ne!(budgeted, exact);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Accuracy {
    /// Additive error at most `eps` with probability at least `1 − delta`
    /// (Eq. 2 of the paper).
    Epsilon {
        /// Additive error threshold ε.
        eps: f64,
        /// Failure probability δ.
        delta: f64,
    },
    /// Spend at most this many random walks (or spanning trees) per query;
    /// accuracy is whatever that budget buys.
    WalkBudget(u64),
    /// Exact values, up to linear-solver tolerance.
    Exact,
}

impl Default for Accuracy {
    /// The paper's default operating point: ε = 0.1, δ = 0.01.
    fn default() -> Self {
        Accuracy::Epsilon {
            eps: 0.1,
            delta: 0.01,
        }
    }
}

impl Accuracy {
    /// An ε target with the paper's default δ = 0.01.
    pub fn epsilon(eps: f64) -> Accuracy {
        Accuracy::Epsilon { eps, delta: 0.01 }
    }
}

/// An estimator configuration maps onto its ε/δ operating point, so callers
/// holding an [`ApproxConfig`](er_core::ApproxConfig) can forward it as the
/// request accuracy unchanged.
impl From<er_core::ApproxConfig> for Accuracy {
    fn from(config: er_core::ApproxConfig) -> Accuracy {
        Accuracy::Epsilon {
            eps: config.epsilon,
            delta: config.delta,
        }
    }
}

/// A full request: a [`Query`], an [`Accuracy`] target and an optional
/// explicit backend override (the planner picks when `backend` is `None`).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// What is being asked.
    pub query: Query,
    /// How accurate the answer must be.
    pub accuracy: Accuracy,
    /// Explicit backend override; `None` lets the [`Planner`](crate::Planner)
    /// choose the cheapest capable backend.
    pub backend: Option<BackendChoice>,
}

impl Request {
    /// A request with the default accuracy and automatic backend choice.
    pub fn new(query: Query) -> Request {
        Request {
            query,
            accuracy: Accuracy::default(),
            backend: None,
        }
    }

    /// Sets the accuracy target.
    #[must_use]
    pub fn with_accuracy(mut self, accuracy: Accuracy) -> Request {
        self.accuracy = accuracy;
        self
    }

    /// Forces a specific backend (validated against its capabilities at
    /// submit time).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Request {
        self.backend = Some(backend);
        self
    }
}

impl From<Query> for Request {
    fn from(query: Query) -> Request {
        Request::new(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_variants() {
        assert_eq!(Query::pair(0, 1).shape(), QueryShape::Pair);
        assert_eq!(Query::batch(vec![]).shape(), QueryShape::Batch);
        assert_eq!(Query::single_source(3).shape(), QueryShape::SingleSource);
        assert_eq!(Query::Diagonal.shape(), QueryShape::Diagonal);
        assert_eq!(Query::edge_set(vec![(0, 1)]).shape(), QueryShape::EdgeSet);
        assert_eq!(Query::top_k(0, 5).shape(), QueryShape::TopK);
    }

    #[test]
    fn request_builder_chain() {
        let request = Request::new(Query::pair(1, 2))
            .with_accuracy(Accuracy::Exact)
            .with_backend(BackendChoice::ExactCg);
        assert_eq!(request.accuracy, Accuracy::Exact);
        assert_eq!(request.backend, Some(BackendChoice::ExactCg));
        let from: Request = Query::pair(1, 2).into();
        assert_eq!(from.backend, None);
        assert_eq!(from.accuracy, Accuracy::default());
    }

    #[test]
    fn default_accuracy_is_the_papers_operating_point() {
        match Accuracy::default() {
            Accuracy::Epsilon { eps, delta } => {
                assert_eq!(eps, 0.1);
                assert_eq!(delta, 0.01);
            }
            other => panic!("unexpected default {other:?}"),
        }
        assert_eq!(
            Accuracy::epsilon(0.05),
            Accuracy::Epsilon {
                eps: 0.05,
                delta: 0.01
            }
        );
    }
}
