//! The answer to a request.

use er_core::CostBreakdown;
use er_graph::NodeId;

/// An answered request: the values, which backend produced them and what the
/// work cost.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The resistance values, laid out by query shape:
    ///
    /// * `Pair` — one value.
    /// * `Batch` / `EdgeSet` — one value per input pair, in input order.
    /// * `SingleSource` — `r(source, v)` indexed by node id `v`.
    /// * `Diagonal` — `L†(v, v)` indexed by node id `v`.
    /// * `TopK` — one value per returned neighbour, aligned with
    ///   [`Response::nodes`], closest first.
    pub values: Vec<f64>,
    /// For `TopK` responses, the neighbour ids aligned with `values`; empty
    /// for every other shape.
    pub nodes: Vec<NodeId>,
    /// Short stable name of the backend that answered ("GEER", "EXACT-CG",
    /// "INDEX", …) — the observable outcome of planning.
    pub backend: &'static str,
    /// Work performed, broken down by primitive (walks, matvec ops, solver
    /// iterations, spanning trees). For a request answered as part of a
    /// coalesced server batch this is the cost of the *shared* computation
    /// (the whole point of coalescing is that members split it), attributed
    /// to every member.
    pub cost: CostBreakdown,
    /// Pair queries served from the service's cache tier (including repeats
    /// inside this request).
    pub cache_hits: u64,
    /// Distinct pair queries the backend actually answered.
    pub backend_calls: u64,
    /// Self-pair queries answered as 0 without backend or cache work.
    pub trivial_queries: u64,
}

impl Response {
    /// The single value of a `Pair` response (first value otherwise).
    ///
    /// # Panics
    ///
    /// Panics when the response carries no values (empty batch).
    pub fn value(&self) -> f64 {
        self.values[0]
    }

    /// Fraction of non-trivial pair queries served from the cache.
    pub fn cache_savings(&self) -> f64 {
        let total = self.cache_hits + self.backend_calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_savings() {
        let response = Response {
            values: vec![0.25, 0.5],
            nodes: vec![],
            backend: "GEER",
            cost: CostBreakdown::default(),
            cache_hits: 1,
            backend_calls: 1,
            trivial_queries: 0,
        };
        assert_eq!(response.value(), 0.25);
        assert!((response.cache_savings() - 0.5).abs() < 1e-12);
        let empty = Response {
            values: vec![],
            nodes: vec![],
            backend: "INDEX",
            cost: CostBreakdown::default(),
            cache_hits: 0,
            backend_calls: 0,
            trivial_queries: 0,
        };
        assert_eq!(empty.cache_savings(), 0.0);
    }
}
