//! The answer to a request.

use er_core::CostBreakdown;
use er_graph::NodeId;

/// An answered request: the values, which backend produced them and what the
/// work cost.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The resistance values, laid out by query shape:
    ///
    /// * `Pair` — one value.
    /// * `Batch` / `EdgeSet` — one value per input pair, in input order.
    /// * `SingleSource` — `r(source, v)` indexed by node id `v`.
    /// * `Diagonal` — `L†(v, v)` indexed by node id `v`.
    /// * `TopK` — one value per returned neighbour, aligned with
    ///   [`Response::nodes`], closest first.
    pub values: Vec<f64>,
    /// For `TopK` responses, the neighbour ids aligned with `values`; empty
    /// for every other shape.
    pub nodes: Vec<NodeId>,
    /// Short stable name of the backend that answered ("GEER", "EXACT-CG",
    /// "INDEX", …) — the observable outcome of planning.
    pub backend: &'static str,
    /// Work performed, broken down by primitive (walks, matvec ops, solver
    /// iterations, spanning trees). For a request answered as part of a
    /// coalesced server batch this is the cost of the *whole shared*
    /// computation, attributed to every member — summing it over members
    /// overstates the work done. Metrics-style reporting should use the
    /// [`shared_cost`](Self::shared_cost) / [`item_costs`](Self::item_costs)
    /// split instead: `shared_cost` (counted once per group) plus the
    /// members' [`owned_cost`](Self::owned_cost) values adds up to the true
    /// total.
    pub cost: CostBreakdown,
    /// The group-level component of [`cost`](Self::cost): work paid **once**
    /// for the whole (possibly coalesced) plan regardless of how many items
    /// or members rode on it — the batched GEER backend's shared SMM
    /// frontier expansion, HAY's spanning-tree pool, the index's solves.
    /// Every member of a coalesced group carries the same `shared_cost`;
    /// count it once per group when aggregating.
    pub shared_cost: CostBreakdown,
    /// Per-item private cost, aligned with the items *this request owned* in
    /// the plan (the distinct uncached pairs it contributed first; length =
    /// [`backend_calls`](Self::backend_calls)). For batched GEER these are
    /// the per-pair AMC tails; backends whose work is entirely shared report
    /// zero breakdowns here.
    pub item_costs: Vec<CostBreakdown>,
    /// Pair queries served from the service's cache tier (including repeats
    /// inside this request).
    pub cache_hits: u64,
    /// Distinct pair queries the backend actually answered.
    pub backend_calls: u64,
    /// Self-pair queries answered as 0 without backend or cache work.
    pub trivial_queries: u64,
}

impl Response {
    /// The single value of a `Pair` response (first value otherwise).
    ///
    /// # Panics
    ///
    /// Panics when the response carries no values (empty batch).
    pub fn value(&self) -> f64 {
        self.values[0]
    }

    /// The private cost attributable to this request alone: the sum of its
    /// [`item_costs`](Self::item_costs). Group-wide accounting that adds
    /// members' `owned_cost` and one [`shared_cost`](Self::shared_cost) per
    /// group never double-counts coalesced work.
    pub fn owned_cost(&self) -> CostBreakdown {
        let mut total = CostBreakdown::default();
        for cost in &self.item_costs {
            total += *cost;
        }
        total
    }

    /// Fraction of non-trivial pair queries served from the cache.
    pub fn cache_savings(&self) -> f64 {
        let total = self.cache_hits + self.backend_calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_savings() {
        let response = Response {
            values: vec![0.25, 0.5],
            nodes: vec![],
            backend: "GEER",
            cost: CostBreakdown::default(),
            shared_cost: CostBreakdown::default(),
            item_costs: vec![],
            cache_hits: 1,
            backend_calls: 1,
            trivial_queries: 0,
        };
        assert_eq!(response.value(), 0.25);
        assert!((response.cache_savings() - 0.5).abs() < 1e-12);
        let empty = Response {
            values: vec![],
            nodes: vec![],
            backend: "INDEX",
            cost: CostBreakdown::default(),
            shared_cost: CostBreakdown::default(),
            item_costs: vec![],
            cache_hits: 0,
            backend_calls: 0,
            trivial_queries: 0,
        };
        assert_eq!(empty.cache_savings(), 0.0);
    }

    #[test]
    fn owned_cost_sums_item_costs_only() {
        let item = CostBreakdown {
            random_walks: 10,
            walk_steps: 100,
            ..CostBreakdown::default()
        };
        let shared = CostBreakdown {
            matvec_ops: 777,
            ..CostBreakdown::default()
        };
        let mut full = shared;
        full += item;
        full += item;
        let response = Response {
            values: vec![0.1, 0.2],
            nodes: vec![],
            backend: "GEER",
            cost: full,
            shared_cost: shared,
            item_costs: vec![item, item],
            cache_hits: 0,
            backend_calls: 2,
            trivial_queries: 0,
        };
        let owned = response.owned_cost();
        assert_eq!(owned.random_walks, 20);
        assert_eq!(owned.walk_steps, 200);
        assert_eq!(owned.matvec_ops, 0, "shared matvec work is not owned");
        let mut recombined = response.shared_cost;
        recombined += owned;
        assert_eq!(recombined, response.cost, "shared + owned = full cost");
    }
}
