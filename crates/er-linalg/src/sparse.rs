//! Explicit compressed-sparse-row matrices.
//!
//! Most of the library works with the matrix-free operators in [`crate::ops`],
//! but a few places want an explicit matrix: building shifted operators,
//! materialising `P` for repeated SMM runs over the same graph, and tests that
//! compare matrix-free and explicit products.

use crate::ops::LinearOperator;
use er_graph::Graph;

/// A square sparse matrix in CSR format.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    n: usize,
    offsets: Vec<usize>,
    columns: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` triples.
    ///
    /// Rows must be supplied in order `0..n`; entries within a row may be in
    /// any order and are kept as given (duplicates are summed).
    pub fn from_rows(n: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(rows.len(), n, "one entry list per row required");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut columns = Vec::new();
        let mut values = Vec::new();
        offsets.push(0);
        for mut row in rows {
            row.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                match merged.last_mut() {
                    Some(last) if last.0 == c => last.1 += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                assert!(c < n, "column {c} out of range");
                columns.push(c);
                values.push(v);
            }
            offsets.push(columns.len());
        }
        CsrMatrix {
            n,
            offsets,
            columns,
            values,
        }
    }

    /// The random-walk transition matrix `P = D⁻¹A` of a graph.
    pub fn transition_matrix(g: &Graph) -> Self {
        let n = g.num_nodes();
        let rows = g
            .nodes()
            .map(|u| {
                let d = g.degree(u).max(1) as f64;
                g.neighbors(u).iter().map(|&v| (v, 1.0 / d)).collect()
            })
            .collect();
        CsrMatrix::from_rows(n, rows)
    }

    /// The combinatorial Laplacian `L = D − A` of a graph.
    pub fn laplacian(g: &Graph) -> Self {
        let n = g.num_nodes();
        let rows = g
            .nodes()
            .map(|u| {
                let mut row: Vec<(usize, f64)> =
                    g.neighbors(u).iter().map(|&v| (v, -1.0)).collect();
                row.push((u, g.degree(u) as f64));
                row
            })
            .collect();
        CsrMatrix::from_rows(n, rows)
    }

    /// The adjacency matrix `A` of a graph.
    pub fn adjacency(g: &Graph) -> Self {
        let n = g.num_nodes();
        let rows = g
            .nodes()
            .map(|u| g.neighbors(u).iter().map(|&v| (v, 1.0)).collect())
            .collect();
        CsrMatrix::from_rows(n, rows)
    }

    /// Number of rows (= columns).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.offsets[i];
        let hi = self.offsets[i + 1];
        match self.columns[lo..hi].binary_search(&j) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Adds `alpha` to every diagonal entry, returning a new matrix.
    pub fn shift_diagonal(&self, alpha: f64) -> Self {
        let rows = (0..self.n)
            .map(|i| {
                let mut row: Vec<(usize, f64)> = self.row(i).collect();
                row.push((i, alpha));
                row
            })
            .collect();
        CsrMatrix::from_rows(self.n, rows)
    }

    /// Iterates over the stored `(column, value)` entries of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[i];
        let hi = self.offsets[i + 1];
        self.columns[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, out) in y.iter_mut().enumerate().take(self.n) {
            let mut acc = 0.0;
            for (c, v) in self.row(i) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{LaplacianOp, TransitionOp};
    use er_graph::generators;

    #[test]
    fn from_rows_merges_duplicates_and_sorts() {
        let m = CsrMatrix::from_rows(2, vec![vec![(1, 2.0), (0, 1.0), (1, 3.0)], vec![(0, 4.0)]]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn explicit_transition_matches_matrix_free() {
        let g = generators::barabasi_albert(80, 3, 4).unwrap();
        let n = g.num_nodes();
        let explicit = CsrMatrix::transition_matrix(&g);
        let free = TransitionOp::new(&g);
        let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) / 7.0).collect();
        let a = explicit.apply_vec(&x);
        let b = free.apply_vec(&x);
        assert!(crate::vector::max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn explicit_laplacian_matches_matrix_free() {
        let g = generators::grid(6, 7).unwrap();
        let n = g.num_nodes();
        let explicit = CsrMatrix::laplacian(&g);
        let free = LaplacianOp::new(&g);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert!(crate::vector::max_abs_diff(&explicit.apply_vec(&x), &free.apply_vec(&x)) < 1e-12);
    }

    #[test]
    fn adjacency_row_sums_are_degrees() {
        let g = generators::social_network_like(100, 6.0, 1).unwrap();
        let a = CsrMatrix::adjacency(&g);
        let ones = vec![1.0; g.num_nodes()];
        let sums = a.apply_vec(&ones);
        for v in g.nodes() {
            assert!((sums[v] - g.degree(v) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_diagonal_adds_identity_multiple() {
        let g = generators::complete(4).unwrap();
        let l = CsrMatrix::laplacian(&g);
        let shifted = l.shift_diagonal(2.5);
        for i in 0..4 {
            assert!((shifted.get(i, i) - (l.get(i, i) + 2.5)).abs() < 1e-12);
        }
        assert_eq!(shifted.get(0, 1), l.get(0, 1));
    }

    #[test]
    #[should_panic(expected = "one entry list per row")]
    fn from_rows_checks_row_count() {
        let _ = CsrMatrix::from_rows(3, vec![vec![], vec![]]);
    }
}
