//! Rank-1 Sherman–Morrison updates of Laplacian pseudo-inverse state.
//!
//! Inserting or deleting an edge `e = {u, v}` changes the Laplacian by a
//! rank-1 term: `L' = L ± b_e b_eᵀ` with `b_e = e_u − e_v`. As long as the
//! graph stays connected (the null space is still `span{1}`), the
//! pseudo-inverse moves by Sherman–Morrison:
//!
//! ```text
//! L'⁺ = L⁺ ∓ (w wᵀ) / (1 ± bᵀw),   w = L⁺ b_e
//! ```
//!
//! so *everything the serving stack keeps resident* — L⁺ columns in the
//! INDEX tier, the L⁺ diagonal, landmark resistance tables — updates in
//! `O(n)` per resident vector instead of a CG re-solve from scratch. Note
//! `bᵀw = w[u] − w[v] = r(u, v)`, the effective resistance of the mutated
//! edge in the *old* graph: insertion denominators are `1 + r > 1` (always
//! safe), deletion denominators are `1 − r`, which approaches zero exactly
//! when the deleted edge carries all current between its endpoints (a
//! bridge). [`RankOneUpdate::for_delete`] therefore refuses near-singular
//! deletions and the caller falls back to fresh CG solves.
//!
//! Drift: each update multiplies the resident state's error by a modest
//! factor (`1/den` in the worst case), so callers cap the number of chained
//! updates with a re-solve-every-K refresh. The dynamic service does both —
//! K-bounded refresh for bit-identity, residual-checked CG fallback for
//! safety.

use crate::vector;

/// Default floor for the deletion denominator `1 − r(u, v)`. Deleting an
/// edge whose resistance is within this floor of 1 (a bridge or near-bridge)
/// is numerically unstable under Sherman–Morrison; callers should re-solve.
pub const MIN_DELETE_DENOMINATOR: f64 = 1e-6;

/// A prepared rank-1 Laplacian-pseudo-inverse update for one edge mutation.
///
/// Build one per mutation from `w = L⁺ (e_u − e_v)` (either a difference of
/// two resident columns or one CG solve), then apply it to every resident
/// vector in `O(n)` each.
///
/// ```
/// use er_graph::generators;
/// use er_linalg::{LaplacianSolver, RankOneUpdate};
///
/// let g = generators::complete(6).unwrap();
/// let solver = LaplacianSolver::for_ground_truth(&g);
/// let n = g.num_nodes();
/// let (u, v) = (0, 3);
/// let mut b = vec![0.0; n];
/// b[u] = 1.0;
/// b[v] = -1.0;
/// let (w, _) = solver.solve(&b);
///
/// // Deleting {0, 3} from K_6: the denominator 1 − r(0, 3) = 1 − 1/3 is
/// // comfortably positive, so the update is accepted...
/// let update = RankOneUpdate::for_delete(w, u, v, 1e-6).expect("not a bridge");
/// // ...and the updated resistance matches K_6 minus one edge.
/// let r_new = update.apply_resistance(update.edge_resistance(), u, v);
/// assert!((r_new - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RankOneUpdate {
    w: Vec<f64>,
    den: f64,
    /// `+1.0` for an insertion (`L' = L + b bᵀ`), `−1.0` for a deletion.
    sign: f64,
    u: usize,
    v: usize,
}

impl RankOneUpdate {
    /// Prepares the update for inserting edge `{u, v}`, given `w = L⁺ b_e`
    /// on the graph *before* the insertion. Always well-conditioned: the
    /// denominator is `1 + r(u, v) ≥ 1`.
    pub fn for_insert(w: Vec<f64>, u: usize, v: usize) -> RankOneUpdate {
        let den = 1.0 + (w[u] - w[v]);
        RankOneUpdate {
            w,
            den,
            sign: 1.0,
            u,
            v,
        }
    }

    /// Prepares the update for deleting edge `{u, v}`, given `w = L⁺ b_e` on
    /// the graph *before* the deletion. Returns `None` when the denominator
    /// `1 − r(u, v)` is at or below `min_denominator` — the edge is a bridge
    /// (deletion disconnects) or close enough that Sherman–Morrison would
    /// amplify error unacceptably; the caller should re-solve with CG.
    pub fn for_delete(
        w: Vec<f64>,
        u: usize,
        v: usize,
        min_denominator: f64,
    ) -> Option<RankOneUpdate> {
        let den = 1.0 - (w[u] - w[v]);
        if den <= min_denominator {
            return None;
        }
        Some(RankOneUpdate {
            w,
            den,
            sign: -1.0,
            u,
            v,
        })
    }

    /// The effective resistance `r(u, v) = bᵀw` of the mutated edge in the
    /// pre-mutation graph.
    pub fn edge_resistance(&self) -> f64 {
        self.w[self.u] - self.w[self.v]
    }

    /// The Sherman–Morrison denominator `1 ± r(u, v)`.
    pub fn denominator(&self) -> f64 {
        self.den
    }

    /// The solve vector `w = L⁺ b_e` the update was built from.
    pub fn w(&self) -> &[f64] {
        &self.w
    }

    /// Updates a resident L⁺ column (or any vector of the form `L⁺ y`) in
    /// place: `x' = x − σ · ((x[u] − x[v]) / den) · w`. `O(n)`; a centred
    /// input stays centred because `w` is centred.
    pub fn apply_column(&self, x: &mut [f64]) {
        let coeff = self.sign * (x[self.u] - x[self.v]) / self.den;
        vector::axpy(-coeff, &self.w, x);
    }

    /// Updates the resident L⁺ diagonal in place:
    /// `diag'(i) = diag(i) − σ · w(i)² / den`. `O(n)`.
    pub fn apply_diagonal(&self, diag: &mut [f64]) {
        let scale = self.sign / self.den;
        for (d, &wi) in diag.iter_mut().zip(&self.w) {
            *d -= scale * wi * wi;
        }
    }

    /// Updates one effective-resistance value `r(s, t)` to its post-mutation
    /// value in `O(1)`: `r' = r − σ · (w[s] − w[t])² / den`. This is how the
    /// landmark distance tables ride along without reconstructing columns.
    pub fn apply_resistance(&self, r: f64, s: usize, t: usize) -> f64 {
        let bw = self.w[s] - self.w[t];
        r - self.sign * bw * bw / self.den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::LaplacianSolver;
    use er_graph::{generators, GraphBuilder};

    fn solve_b(g: &er_graph::Graph, u: usize, v: usize) -> Vec<f64> {
        let mut b = vec![0.0; g.num_nodes()];
        b[u] = 1.0;
        b[v] = -1.0;
        LaplacianSolver::for_ground_truth(g).solve(&b).0
    }

    #[test]
    fn insert_update_matches_fresh_solve() {
        let g = generators::social_network_like(80, 6.0, 3).unwrap();
        let (u, v) = (5, 61);
        assert!(!g.has_edge(u, v));
        let w = solve_b(&g, u, v);
        let update = RankOneUpdate::for_insert(w, u, v);
        assert!(update.denominator() > 1.0);

        // Maintain the column of node 12 and the resistance r(7, 40).
        let mut e = vec![0.0; g.num_nodes()];
        e[12] = 1.0;
        let (mut col, _) = LaplacianSolver::for_ground_truth(&g).solve(&e);
        update.apply_column(&mut col);
        let w_740 = solve_b(&g, 7, 40);
        let r_old = w_740[7] - w_740[40];
        let r_new = update.apply_resistance(r_old, 7, 40);

        let mut edges: Vec<(usize, usize)> = g.edges().collect();
        edges.push((u.min(v), u.max(v)));
        let g2 = GraphBuilder::from_edges(g.num_nodes(), edges)
            .build()
            .unwrap();
        let solver2 = LaplacianSolver::for_ground_truth(&g2);
        let (fresh_col, _) = solver2.solve(&e);
        assert!(
            crate::vector::max_abs_diff(&col, &fresh_col) < 1e-7,
            "column drift {}",
            crate::vector::max_abs_diff(&col, &fresh_col)
        );
        let r_fresh = solver2.effective_resistance(7, 40);
        assert!((r_new - r_fresh).abs() < 1e-8);
    }

    #[test]
    fn delete_update_matches_fresh_solve() {
        // Complete graph: every deletion is far from disconnecting.
        let g = generators::complete(10).unwrap();
        let (u, v) = (2, 7);
        let w = solve_b(&g, u, v);
        let update = RankOneUpdate::for_delete(w, u, v, MIN_DELETE_DENOMINATOR).unwrap();

        let mut diag = vec![0.0; g.num_nodes()];
        let solver = LaplacianSolver::for_ground_truth(&g);
        for i in 0..g.num_nodes() {
            let mut e = vec![0.0; g.num_nodes()];
            e[i] = 1.0;
            diag[i] = solver.solve(&e).0[i];
        }
        update.apply_diagonal(&mut diag);

        let edges: Vec<(usize, usize)> = g
            .edges()
            .filter(|&(a, b)| (a, b) != (u.min(v), u.max(v)))
            .collect();
        let g2 = GraphBuilder::from_edges(g.num_nodes(), edges)
            .build()
            .unwrap();
        let solver2 = LaplacianSolver::for_ground_truth(&g2);
        for i in 0..g.num_nodes() {
            let mut e = vec![0.0; g.num_nodes()];
            e[i] = 1.0;
            let fresh = solver2.solve(&e).0[i];
            assert!((diag[i] - fresh).abs() < 1e-8, "diag[{i}]");
        }
        // r' via apply_resistance agrees with the fresh graph too.
        let r_old = solve_b(&g, 0, 1)[0] - solve_b(&g, 0, 1)[1];
        let r_new = update.apply_resistance(r_old, 0, 1);
        assert!((r_new - solver2.effective_resistance(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn bridge_deletion_is_refused() {
        // A path graph: every edge is a bridge, r(u, u+1) = 1 exactly.
        let g = generators::path(8).unwrap();
        let w = solve_b(&g, 3, 4);
        assert!(RankOneUpdate::for_delete(w, 3, 4, MIN_DELETE_DENOMINATOR).is_none());
    }

    #[test]
    fn near_bridge_deletion_is_refused_at_loose_threshold() {
        // Two cliques joined by two parallel paths: deleting one of them
        // leaves the graph connected but the denominator is small.
        let mut edges = Vec::new();
        for a in 0..4usize {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((0, 4)); // link 1
        edges.push((1, 5)); // link 2
        let g = GraphBuilder::from_edges(8, edges).build().unwrap();
        let w = solve_b(&g, 0, 4);
        let r = w[0] - w[4];
        assert!(r > 0.5, "two parallel links: r(0,4) = {r}");
        // Tight threshold accepts; a loose "stability" threshold refuses.
        assert!(RankOneUpdate::for_delete(w.clone(), 0, 4, 1e-6).is_some());
        assert!(RankOneUpdate::for_delete(w, 0, 4, 0.5).is_none());
    }

    #[test]
    fn chained_updates_stay_close_then_refresh_restores_exactness() {
        let g = generators::social_network_like(60, 6.0, 9).unwrap();
        let n = g.num_nodes();
        let mut edges: std::collections::BTreeSet<(usize, usize)> = g.edges().collect();
        let mut current = g.clone();
        let mut e0 = vec![0.0; n];
        e0[17] = 1.0;
        let mut col = LaplacianSolver::for_ground_truth(&current).solve(&e0).0;

        let stream = [(0usize, 30usize), (1, 45), (2, 50), (3, 33), (8, 59)];
        for &(u, v) in &stream {
            let key = (u.min(v), u.max(v));
            let insert = !edges.contains(&key);
            let w = solve_b(&current, u, v);
            let update = if insert {
                edges.insert(key);
                RankOneUpdate::for_insert(w, u, v)
            } else {
                edges.remove(&key);
                RankOneUpdate::for_delete(w, u, v, MIN_DELETE_DENOMINATOR).unwrap()
            };
            update.apply_column(&mut col);
            current = GraphBuilder::from_edges(n, edges.iter().copied())
                .build()
                .unwrap();
        }
        let fresh = LaplacianSolver::for_ground_truth(&current).solve(&e0).0;
        let drift = crate::vector::max_abs_diff(&col, &fresh);
        assert!(drift < 1e-6, "drift after 5 chained updates: {drift}");
        // A refresh (re-solve) is exact by construction.
        col = fresh.clone();
        assert_eq!(crate::vector::max_abs_diff(&col, &fresh), 0.0);
    }
}
