//! Linear-algebra substrate for pairwise effective-resistance estimation.
//!
//! Everything the estimators need beyond the raw graph lives here:
//!
//! * [`vector`] — dense vector helpers (dot products, `max1`/`max2` used by
//!   AMC's ψ bound in Eq. (9) of the paper, norms).
//! * [`ops`] — matrix-free linear operators over a [`er_graph::Graph`]:
//!   the random-walk transition matrix `P = D⁻¹A` (Algorithm 2 / SMM), the
//!   symmetric normalised adjacency `N = D^{-1/2} A D^{-1/2}` (same spectrum
//!   as `P`, used for eigenvalue estimation), the Laplacian `L = D − A` and
//!   the adjacency operator itself.
//! * [`sparse`] — an explicit CSR matrix type for callers that want to
//!   materialise a matrix (e.g. to add diagonal shifts).
//! * [`dense`] — small dense symmetric matrices, Jacobi eigendecomposition and
//!   the Moore–Penrose pseudo-inverse (the EXACT baseline, Definition 2.1).
//! * [`lanczos`] — Lanczos with full reorthogonalization plus a symmetric
//!   tridiagonal eigensolver; this substitutes for ARPACK when computing
//!   λ = max{|λ₂|, |λₙ|} in the preprocessing step of Section 3.1.
//! * [`solver`] — a conjugate-gradient Laplacian solver (for ground truth,
//!   the EXACT-via-solves path and the RP sketch).
//! * [`sketch`] — the Spielman–Srivastava random-projection sketch used by
//!   the RP baseline.
//! * [`update`] — rank-1 Sherman–Morrison updates of resident pseudo-inverse
//!   state (columns, diagonal, resistance tables) for edge insert/delete,
//!   the linear-algebra core of incremental dynamic serving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod lanczos;
pub mod ops;
pub mod sketch;
pub mod solver;
pub mod sparse;
pub mod update;
pub mod vector;

pub use dense::DenseMatrix;
pub use lanczos::{lanczos_with_start, spectral_bounds, spectral_bounds_warm, LanczosResult};
pub use ops::{
    AdjacencyOp, LaplacianOp, LinearOperator, NormalizedAdjacencyOp, OverlayLaplacianOp,
    TransitionOp,
};
pub use sketch::ResistanceSketch;
pub use solver::{solve_overlay_laplacian, solve_preconditioned, CgOutcome, LaplacianSolver};
pub use sparse::CsrMatrix;
pub use update::{RankOneUpdate, MIN_DELETE_DENOMINATOR};
