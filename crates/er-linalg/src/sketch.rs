//! Spielman–Srivastava random-projection sketch for effective resistance.
//!
//! The RP baseline of the paper \[62\] preprocesses the graph into a
//! `k × n` matrix `Z ≈ Q W^{1/2} B L†` with `k = ⌈c·ln n / ε²⌉` rows, where
//! `B` is the edge–node incidence matrix, `W` the (identity) edge-weight
//! matrix and `Q` a random ±1/√k matrix. Afterwards every pairwise query is
//! answered in O(k) time as `‖Z(e_s − e_t)‖²`.
//!
//! Building the sketch requires `k` Laplacian solves (here: CG from
//! [`crate::solver`]) and `k·n` floats of memory — which is exactly why the
//! paper reports RP going out of memory on the larger datasets; the
//! [`ResistanceSketch::build_with_limit`] constructor reproduces that failure
//! mode by refusing to allocate past a configurable budget.

use crate::solver::LaplacianSolver;
use er_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error raised when the sketch would exceed its memory budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchMemoryExceeded {
    /// Rows the sketch would need.
    pub rows_needed: usize,
    /// Entry budget (rows × n) that was exceeded.
    pub entry_budget: usize,
}

impl std::fmt::Display for SketchMemoryExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "random-projection sketch needs {} rows, exceeding the entry budget {}",
            self.rows_needed, self.entry_budget
        )
    }
}

impl std::error::Error for SketchMemoryExceeded {}

/// A built random-projection sketch: `rows` vectors of length `n`.
#[derive(Clone, Debug)]
pub struct ResistanceSketch {
    rows: Vec<Vec<f64>>,
}

impl ResistanceSketch {
    /// Number of projection rows `k`.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Builds a sketch with `k = ⌈scale · ln n / ε²⌉` rows.
    ///
    /// The classic analysis uses `scale = 24`; the paper's experiments use the
    /// same constant. Each row is one Laplacian solve.
    pub fn build(graph: &Graph, epsilon: f64, scale: f64, seed: u64) -> Self {
        let k = Self::rows_for(graph, epsilon, scale);
        Self::build_rows(graph, k, seed)
    }

    /// Same as [`build`](Self::build) but fails (like the paper's
    /// out-of-memory runs) if `k·n` would exceed `entry_budget` floats.
    pub fn build_with_limit(
        graph: &Graph,
        epsilon: f64,
        scale: f64,
        seed: u64,
        entry_budget: usize,
    ) -> Result<Self, SketchMemoryExceeded> {
        let k = Self::rows_for(graph, epsilon, scale);
        if k.saturating_mul(graph.num_nodes()) > entry_budget {
            return Err(SketchMemoryExceeded {
                rows_needed: k,
                entry_budget,
            });
        }
        Ok(Self::build_rows(graph, k, seed))
    }

    /// Number of rows required for a given `epsilon` and `scale`.
    pub fn rows_for(graph: &Graph, epsilon: f64, scale: f64) -> usize {
        let n = graph.num_nodes().max(2) as f64;
        ((scale * n.ln()) / (epsilon * epsilon)).ceil() as usize
    }

    fn build_rows(graph: &Graph, k: usize, seed: u64) -> Self {
        let n = graph.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        let solver = LaplacianSolver::new(graph, 1e-8, 20 * n.max(100));
        let inv_sqrt_k = 1.0 / (k.max(1) as f64).sqrt();
        let mut rows = Vec::with_capacity(k);
        for _ in 0..k {
            // y = (Q W^{1/2} B)_i as a length-n vector: every edge contributes
            // ±1/√k to its two endpoints with opposite signs.
            let mut y = vec![0.0; n];
            for (u, v) in graph.edges() {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                y[u] += sign * inv_sqrt_k;
                y[v] -= sign * inv_sqrt_k;
            }
            // z_i solves L z_i = y (y ⊥ 1 by construction).
            let (z, _) = solver.solve(&y);
            rows.push(z);
        }
        ResistanceSketch { rows }
    }

    /// Approximate effective resistance `‖Z(e_s − e_t)‖²`.
    pub fn query(&self, s: usize, t: usize) -> f64 {
        if s == t {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|z| {
                let d = z[s] - z[t];
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::LaplacianSolver;
    use er_graph::generators;

    #[test]
    fn rows_for_scales_inverse_quadratically_in_epsilon() {
        let g = generators::complete(100).unwrap();
        let coarse = ResistanceSketch::rows_for(&g, 0.5, 24.0);
        let fine = ResistanceSketch::rows_for(&g, 0.05, 24.0);
        assert!(fine > 90 * coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn sketch_approximates_er_on_small_graph() {
        let g = generators::social_network_like(80, 8.0, 3).unwrap();
        // generous row count so the multiplicative error is small
        let sketch = ResistanceSketch::build(&g, 0.3, 24.0, 7);
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &(s, t) in &[(0usize, 5usize), (10, 60), (33, 34)] {
            let exact = solver.effective_resistance(s, t);
            let approx = sketch.query(s, t);
            let rel = (approx - exact).abs() / exact.max(1e-12);
            assert!(rel < 0.5, "({s},{t}): exact {exact} approx {approx}");
        }
        assert_eq!(sketch.query(4, 4), 0.0);
    }

    #[test]
    fn memory_limit_is_enforced() {
        let g = generators::complete(50).unwrap();
        let err = ResistanceSketch::build_with_limit(&g, 0.01, 24.0, 1, 10_000).unwrap_err();
        assert!(err.rows_needed > 0);
        assert!(err.to_string().contains("exceeding"));
        // and a generous budget succeeds
        let ok = ResistanceSketch::build_with_limit(&g, 0.5, 24.0, 1, 10_000_000).unwrap();
        assert!(ok.num_rows() > 0);
    }
}
