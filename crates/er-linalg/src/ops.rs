//! Matrix-free linear operators over a graph.
//!
//! The estimators never need an explicit matrix for the operators below; they
//! only need `y = Op · x`. Keeping them matrix-free means SMM's iterations
//! (Algorithm 2) scan each adjacency list sequentially — the cache-friendly
//! access pattern the paper credits for SMM's advantage over naïve traversal —
//! and the Lanczos/CG routines can run on graphs where an explicit `f64`
//! matrix would be wasteful.

use er_graph::{Graph, OverlayGraph};

/// A real linear operator on `R^n`.
pub trait LinearOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`. `y` is overwritten and must have length `dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocation wrapper around [`apply`](Self::apply).
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// The adjacency operator `A`: `(Ax)(u) = Σ_{v ∈ N(u)} x(v)`.
pub struct AdjacencyOp<'g> {
    graph: &'g Graph,
}

impl<'g> AdjacencyOp<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        AdjacencyOp { graph }
    }
}

impl LinearOperator for AdjacencyOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for u in self.graph.nodes() {
            let mut acc = 0.0;
            for &v in self.graph.neighbors(u) {
                acc += x[v];
            }
            y[u] = acc;
        }
    }
}

/// The random-walk transition operator `P = D⁻¹A`:
/// `(Px)(u) = (1 / d(u)) Σ_{v ∈ N(u)} x(v)`.
///
/// Applied to the one-hot vector `e_s`, `i` applications give the vector
/// `v ↦ p_i(v, s)` used by SMM (Eq. (15) of the paper).
pub struct TransitionOp<'g> {
    graph: &'g Graph,
}

impl<'g> TransitionOp<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        TransitionOp { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

impl LinearOperator for TransitionOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for u in self.graph.nodes() {
            let d = self.graph.degree(u);
            if d == 0 {
                y[u] = 0.0;
                continue;
            }
            let mut acc = 0.0;
            for &v in self.graph.neighbors(u) {
                acc += x[v];
            }
            y[u] = acc / d as f64;
        }
    }
}

/// The symmetric normalised adjacency `N = D^{-1/2} A D^{-1/2}`:
/// `(Nx)(u) = Σ_{v ∈ N(u)} x(v) / √(d(u) d(v))`.
///
/// `N` is similar to `P` (`N = D^{1/2} P D^{-1/2}`), so they share the same
/// spectrum; being symmetric, `N` is the operator we hand to Lanczos when
/// estimating λ₂ and λₙ for the refined walk length of Theorem 3.1.
pub struct NormalizedAdjacencyOp<'g> {
    graph: &'g Graph,
    inv_sqrt_deg: Vec<f64>,
}

impl<'g> NormalizedAdjacencyOp<'g> {
    /// Wraps a graph, precomputing `1/√d(v)`.
    pub fn new(graph: &'g Graph) -> Self {
        let inv_sqrt_deg = graph
            .nodes()
            .map(|v| {
                let d = graph.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        NormalizedAdjacencyOp {
            graph,
            inv_sqrt_deg,
        }
    }

    /// The (unit-norm) Perron eigenvector of `N`, `φ₁(v) = √(d(v) / 2m)`,
    /// associated with eigenvalue 1. Known in closed form, which lets the
    /// Lanczos driver deflate it and expose λ₂ as the new extreme eigenvalue.
    pub fn perron_vector(&self) -> Vec<f64> {
        let two_m = self.graph.num_directed_edges() as f64;
        self.graph
            .nodes()
            .map(|v| (self.graph.degree(v) as f64 / two_m).sqrt())
            .collect()
    }
}

impl LinearOperator for NormalizedAdjacencyOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for u in self.graph.nodes() {
            let mut acc = 0.0;
            for &v in self.graph.neighbors(u) {
                acc += x[v] * self.inv_sqrt_deg[v];
            }
            y[u] = acc * self.inv_sqrt_deg[u];
        }
    }
}

/// The combinatorial Laplacian `L = D − A`:
/// `(Lx)(u) = d(u)·x(u) − Σ_{v ∈ N(u)} x(v)`.
pub struct LaplacianOp<'g> {
    graph: &'g Graph,
}

impl<'g> LaplacianOp<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        LaplacianOp { graph }
    }
}

impl LinearOperator for LaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.graph.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for u in self.graph.nodes() {
            let mut acc = 0.0;
            for &v in self.graph.neighbors(u) {
                acc += x[v];
            }
            y[u] = self.graph.degree(u) as f64 * x[u] - acc;
        }
    }
}

/// The combinatorial Laplacian of an [`OverlayGraph`]:
/// `(Lx)(u) = d(u)·x(u) − Σ_{v ∈ N(u)} x(v)` with degrees and neighbour sets
/// read through the overlay's merged view (base CSR ± per-node deltas).
///
/// This is the solve substrate of incremental dynamic serving: between
/// snapshot refreshes the evolving edge set lives only in the overlay, and
/// the one CG solve a Sherman–Morrison update needs (`w = L⁺ b_e`) runs
/// against this operator without materialising a CSR.
pub struct OverlayLaplacianOp<'g> {
    overlay: &'g OverlayGraph,
    degrees: Vec<f64>,
}

impl<'g> OverlayLaplacianOp<'g> {
    /// Wraps an overlay, precomputing current (merged) degrees.
    pub fn new(overlay: &'g OverlayGraph) -> Self {
        let degrees = (0..overlay.num_nodes())
            .map(|v| overlay.degree(v) as f64)
            .collect();
        OverlayLaplacianOp { overlay, degrees }
    }

    /// Jacobi preconditioner entries `1 / max(d(v), 1)` for the CG solver.
    pub fn inv_degrees(&self) -> Vec<f64> {
        self.degrees.iter().map(|&d| 1.0 / d.max(1.0)).collect()
    }
}

impl LinearOperator for OverlayLaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.overlay.num_nodes()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for u in 0..self.overlay.num_nodes() {
            let mut acc = 0.0;
            self.overlay.for_each_neighbor(u, |v| acc += x[v]);
            y[u] = self.degrees[u] * x[u] - acc;
        }
    }
}

/// A deflated operator `A − λ q qᵀ` (used to strip the known Perron pair from
/// `N` so that Lanczos converges to λ₂ rather than to the trivial eigenvalue 1).
pub struct DeflatedOp<'a, Op: LinearOperator> {
    inner: &'a Op,
    q: Vec<f64>,
    lambda: f64,
}

impl<'a, Op: LinearOperator> DeflatedOp<'a, Op> {
    /// Wraps `inner`, removing the rank-one component `lambda · q qᵀ`.
    /// `q` should be unit-norm.
    pub fn new(inner: &'a Op, q: Vec<f64>, lambda: f64) -> Self {
        debug_assert_eq!(inner.dim(), q.len());
        DeflatedOp { inner, q, lambda }
    }
}

impl<Op: LinearOperator> LinearOperator for DeflatedOp<'_, Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        let proj: f64 = crate::vector::dot(&self.q, x) * self.lambda;
        for (yi, qi) in y.iter_mut().zip(&self.q) {
            *yi -= proj * qi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use er_graph::generators;

    #[test]
    fn transition_rows_sum_to_one() {
        let g = generators::barabasi_albert(100, 3, 5).unwrap();
        let op = TransitionOp::new(&g);
        let ones = vec![1.0; g.num_nodes()];
        let y = op.apply_vec(&ones);
        for (v, &val) in y.iter().enumerate() {
            assert!((val - 1.0).abs() < 1e-12, "row {v} sums to {val}");
        }
    }

    #[test]
    fn transition_preserves_probability_mass_under_transpose_dynamics() {
        // Applying P to e_s gives p_1(v, s) over v; by reversibility the total
        // mass is sum_v p_1(v,s) which need not be 1, but p_1(s, v) summed over
        // v is 1. Check the reversibility identity d(s) p_i(s,v) = d(v) p_i(v,s)
        // for i = 1 explicitly.
        let g = generators::social_network_like(200, 8.0, 2).unwrap();
        let op = TransitionOp::new(&g);
        let s = 3;
        let p1_to_s = op.apply_vec(&vector::unit(g.num_nodes(), s)); // v -> p_1(v, s)
        for v in g.nodes() {
            let p_sv = if g.has_edge(s, v) {
                1.0 / g.degree(s) as f64
            } else {
                0.0
            };
            let lhs = g.degree(s) as f64 * p_sv;
            let rhs = g.degree(v) as f64 * p1_to_s[v];
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn adjacency_and_laplacian_are_consistent() {
        let g = generators::complete(5).unwrap();
        let n = g.num_nodes();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let a = AdjacencyOp::new(&g).apply_vec(&x);
        let l = LaplacianOp::new(&g).apply_vec(&x);
        for v in 0..n {
            let expected = g.degree(v) as f64 * x[v] - a[v];
            assert!((l[v] - expected).abs() < 1e-12);
        }
        // L applied to the constant vector is zero.
        let ones = vec![1.0; n];
        let lz = LaplacianOp::new(&g).apply_vec(&ones);
        assert!(vector::norm2(&lz) < 1e-12);
    }

    #[test]
    fn normalized_adjacency_perron_pair() {
        let g = generators::social_network_like(150, 10.0, 7).unwrap();
        let op = NormalizedAdjacencyOp::new(&g);
        let phi = op.perron_vector();
        assert!((vector::norm2(&phi) - 1.0).abs() < 1e-9, "unit norm");
        let y = op.apply_vec(&phi);
        assert!(
            vector::max_abs_diff(&y, &phi) < 1e-9,
            "N phi = phi for the Perron vector"
        );
    }

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let g = generators::barabasi_albert(60, 4, 9).unwrap();
        let n = g.num_nodes();
        let op = NormalizedAdjacencyOp::new(&g);
        // <N x, y> == <x, N y> for a couple of random-ish vectors
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 / 17.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 23) as f64 / 23.0).collect();
        let nx = op.apply_vec(&x);
        let ny = op.apply_vec(&y);
        assert!((vector::dot(&nx, &y) - vector::dot(&x, &ny)).abs() < 1e-9);
    }

    #[test]
    fn deflation_removes_perron_direction() {
        let g = generators::complete(6).unwrap();
        let op = NormalizedAdjacencyOp::new(&g);
        let phi = op.perron_vector();
        let defl = DeflatedOp::new(&op, phi.clone(), 1.0);
        let y = defl.apply_vec(&phi);
        assert!(
            vector::norm2(&y) < 1e-9,
            "deflated operator annihilates phi"
        );
    }

    #[test]
    fn overlay_laplacian_matches_collapsed_laplacian() {
        let g = generators::social_network_like(120, 6.0, 4).unwrap();
        let mut overlay = OverlayGraph::new(std::sync::Arc::new(g));
        overlay.insert_edge(0, 60);
        overlay.insert_edge(7, 91);
        let removable = overlay.neighbors(3);
        overlay.remove_edge(3, removable[0]);
        let collapsed = overlay.collapse();
        let n = collapsed.num_nodes();
        let x: Vec<f64> = (0..n).map(|i| ((i * 29 + 3) % 13) as f64 / 13.0).collect();
        let via_overlay = OverlayLaplacianOp::new(&overlay).apply_vec(&x);
        let via_csr = LaplacianOp::new(&collapsed).apply_vec(&x);
        assert!(vector::max_abs_diff(&via_overlay, &via_csr) < 1e-12);
    }

    #[test]
    fn apply_vec_matches_apply() {
        let g = generators::cycle(9).unwrap();
        let op = TransitionOp::new(&g);
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let mut y = vec![0.0; 9];
        op.apply(&x, &mut y);
        assert_eq!(y, op.apply_vec(&x));
        assert_eq!(op.dim(), 9);
        assert_eq!(op.graph().num_nodes(), 9);
    }
}
