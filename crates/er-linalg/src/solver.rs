//! Conjugate-gradient solver for graph Laplacian systems.
//!
//! The Laplacian `L = D − A` of a connected graph is positive semi-definite
//! with a one-dimensional null space spanned by the all-ones vector. For a
//! right-hand side `b ⊥ 1` the system `L x = b` has a unique solution in
//! `1⊥`, and plain CG converges to it as long as iterates are kept centred.
//!
//! Effective resistance follows directly:
//! `r(s, t) = (e_s − e_t)ᵀ L† (e_s − e_t) = (e_s − e_t)ᵀ x` where
//! `L x = e_s − e_t`. This solver therefore doubles as a high-precision
//! ground-truth oracle (cross-checking the SMM-based ground truth of the
//! paper's Section 5.1) and as the Laplacian-solve primitive of the RP sketch.

use crate::ops::{LaplacianOp, LinearOperator, OverlayLaplacianOp};
use crate::vector;
use er_graph::{Graph, OverlayGraph};

/// Outcome of a CG solve.
#[derive(Clone, Debug, PartialEq)]
pub struct CgOutcome {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − Lx‖₂`.
    pub residual_norm: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
}

/// Conjugate-gradient Laplacian solver with Jacobi (diagonal) preconditioning.
pub struct LaplacianSolver<'g> {
    graph: &'g Graph,
    op: LaplacianOp<'g>,
    tolerance: f64,
    max_iterations: usize,
}

impl<'g> LaplacianSolver<'g> {
    /// Creates a solver with the given relative tolerance and iteration cap.
    pub fn new(graph: &'g Graph, tolerance: f64, max_iterations: usize) -> Self {
        LaplacianSolver {
            graph,
            op: LaplacianOp::new(graph),
            tolerance,
            max_iterations,
        }
    }

    /// Creates a solver with defaults suitable for ground-truth computation
    /// (tolerance 1e-10, iteration cap 10·n).
    pub fn for_ground_truth(graph: &'g Graph) -> Self {
        LaplacianSolver::new(graph, 1e-10, 10 * graph.num_nodes().max(100))
    }

    /// Solves `L x = b`, returning the minimum-norm solution (centred so that
    /// `Σ x(v) = 0`) and the solve outcome. The right-hand side is centred
    /// internally, so callers may pass any `b`.
    pub fn solve(&self, b: &[f64]) -> (Vec<f64>, CgOutcome) {
        let n = self.graph.num_nodes();
        assert_eq!(b.len(), n);
        let inv_diag: Vec<f64> = self
            .graph
            .nodes()
            .map(|v| 1.0 / (self.graph.degree(v).max(1) as f64))
            .collect();
        solve_preconditioned(&self.op, &inv_diag, b, self.tolerance, self.max_iterations)
    }

    /// Computes the exact effective resistance `r(s, t)` by a single Laplacian
    /// solve with right-hand side `e_s − e_t`.
    pub fn effective_resistance(&self, s: usize, t: usize) -> f64 {
        if s == t {
            return 0.0;
        }
        let n = self.graph.num_nodes();
        let mut b = vec![0.0; n];
        b[s] = 1.0;
        b[t] = -1.0;
        let (x, _) = self.solve(&b);
        x[s] - x[t]
    }
}

/// Jacobi-preconditioned CG for a singular-consistent system `Op x = b` over
/// any matrix-free [`LinearOperator`] whose null space is spanned by the
/// all-ones vector (a graph Laplacian in any representation). The right-hand
/// side is centred internally and iterates are kept in `1⊥`, exactly as
/// [`LaplacianSolver::solve`] — which delegates here, so the float-op
/// sequence (and therefore every bit of every ground-truth answer) is shared
/// between the CSR path and the overlay path.
pub fn solve_preconditioned<Op: LinearOperator>(
    op: &Op,
    inv_diag: &[f64],
    b: &[f64],
    tolerance: f64,
    max_iterations: usize,
) -> (Vec<f64>, CgOutcome) {
    let n = op.dim();
    assert_eq!(b.len(), n);
    assert_eq!(inv_diag.len(), n);
    let mut rhs = b.to_vec();
    vector::remove_mean(&mut rhs);

    let mut x = vec![0.0; n];
    let mut r = rhs.clone();
    let mut z: Vec<f64> = r.iter().zip(inv_diag).map(|(ri, di)| ri * di).collect();
    vector::remove_mean(&mut z);
    let mut p = z.clone();
    let mut rz = vector::dot(&r, &z);
    let b_norm = vector::norm2(&rhs).max(1e-300);

    let mut iterations = 0;
    let mut converged = vector::norm2(&r) / b_norm <= tolerance;
    while !converged && iterations < max_iterations {
        iterations += 1;
        let ap = op.apply_vec(&p);
        let p_ap = vector::dot(&p, &ap);
        if p_ap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / p_ap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        if vector::norm2(&r) / b_norm <= tolerance {
            converged = true;
            break;
        }
        z = r.iter().zip(inv_diag).map(|(ri, di)| ri * di).collect();
        vector::remove_mean(&mut z);
        let rz_new = vector::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    vector::remove_mean(&mut x);
    let mut residual = op.apply_vec(&x);
    for i in 0..n {
        residual[i] = rhs[i] - residual[i];
    }
    let residual_norm = vector::norm2(&residual);
    (
        x,
        CgOutcome {
            iterations,
            residual_norm,
            converged: converged || residual_norm / b_norm <= tolerance,
        },
    )
}

/// Solves `L x = b` against the merged view of an [`OverlayGraph`] — no CSR
/// materialisation, same CG sequence as the ground-truth solver. This is how
/// a Sherman–Morrison update obtains `w = L⁺ b_e` when one of the edge's
/// endpoint columns is not resident.
pub fn solve_overlay_laplacian(
    overlay: &OverlayGraph,
    b: &[f64],
    tolerance: f64,
    max_iterations: usize,
) -> (Vec<f64>, CgOutcome) {
    let op = OverlayLaplacianOp::new(overlay);
    let inv_diag = op.inv_degrees();
    solve_preconditioned(&op, &inv_diag, b, tolerance, max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn solves_laplacian_system_on_path() {
        let g = generators::path(10).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for (s, t, expected) in [(0, 9, 9.0), (2, 5, 3.0), (4, 4, 0.0)] {
            let r = solver.effective_resistance(s, t);
            assert!((r - expected).abs() < 1e-7, "r({s},{t}) = {r}");
        }
    }

    #[test]
    fn effective_resistance_on_complete_graph() {
        let n = 12;
        let g = generators::complete(n).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let r = solver.effective_resistance(0, 5);
        assert!((r - 2.0 / n as f64).abs() < 1e-8);
    }

    #[test]
    fn effective_resistance_on_cycle() {
        // r(s, t) on C_n with hop distance k is k (n - k) / n.
        let n = 9;
        let g = generators::cycle(n).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for k in 1..n {
            let r = solver.effective_resistance(0, k);
            let hops = k.min(n - k) as f64;
            let expected = (k as f64) * (n as f64 - k as f64) / n as f64;
            // either direction around the cycle gives the same value
            let _ = hops;
            assert!((r - expected).abs() < 1e-7, "r(0,{k}) = {r} vs {expected}");
        }
    }

    #[test]
    fn cg_reports_convergence_metadata() {
        let g = generators::social_network_like(200, 8.0, 4).unwrap();
        let solver = LaplacianSolver::new(&g, 1e-8, 2000);
        let mut b = vec![0.0; g.num_nodes()];
        b[0] = 1.0;
        b[17] = -1.0;
        let (x, outcome) = solver.solve(&b);
        assert!(outcome.converged, "outcome {outcome:?}");
        assert!(outcome.iterations > 0);
        assert!(outcome.residual_norm < 1e-6);
        // solution is centred
        assert!(crate::vector::sum(&x).abs() < 1e-8);
    }

    #[test]
    fn agreement_with_dense_pseudo_inverse() {
        let g = generators::social_network_like(60, 6.0, 8).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let pinv = crate::dense::DenseMatrix::laplacian(&g).pseudo_inverse(1e-9);
        let n = g.num_nodes();
        for &(s, t) in &[(0usize, 1usize), (3, 40), (10, 59), (25, 26)] {
            let mut x = vec![0.0; n];
            x[s] += 1.0;
            x[t] -= 1.0;
            let y = pinv.mat_vec(&x);
            let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let cg = solver.effective_resistance(s, t);
            assert!((exact - cg).abs() < 1e-6, "({s},{t}): {exact} vs {cg}");
        }
    }

    #[test]
    fn overlay_solve_is_bit_identical_to_csr_solve() {
        // A clean overlay over g must reproduce the CSR solver bit-for-bit:
        // same operator values, same preconditioner, same CG sequence.
        let g = generators::social_network_like(150, 7.0, 6).unwrap();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[4] = 1.0;
        b[99] = -1.0;
        let (x_csr, out_csr) = LaplacianSolver::for_ground_truth(&g).solve(&b);
        let overlay = er_graph::OverlayGraph::new(std::sync::Arc::new(g));
        let (x_ovl, out_ovl) = solve_overlay_laplacian(&overlay, &b, 1e-10, 10 * n.max(100));
        assert_eq!(out_csr, out_ovl);
        for i in 0..n {
            assert_eq!(x_csr[i].to_bits(), x_ovl[i].to_bits(), "component {i}");
        }
    }

    #[test]
    fn overlay_solve_tracks_mutated_resistance() {
        // After overlay mutations, the overlay solve must agree with a
        // ground-truth solve on the collapsed graph to solver precision.
        let g = generators::social_network_like(120, 6.0, 11).unwrap();
        let mut overlay = er_graph::OverlayGraph::new(std::sync::Arc::new(g));
        overlay.insert_edge(2, 87);
        overlay.insert_edge(30, 55);
        let nbrs = overlay.neighbors(10);
        overlay.remove_edge(10, nbrs[0]);
        let collapsed = overlay.collapse();
        let n = collapsed.num_nodes();
        let mut b = vec![0.0; n];
        b[2] = 1.0;
        b[87] = -1.0;
        let (x_ovl, out) = solve_overlay_laplacian(&overlay, &b, 1e-10, 10 * n);
        assert!(out.converged);
        let solver = LaplacianSolver::for_ground_truth(&collapsed);
        let r_direct = solver.effective_resistance(2, 87);
        assert!((x_ovl[2] - x_ovl[87] - r_direct).abs() < 1e-8);
    }

    #[test]
    fn triangle_inequality_of_effective_resistance() {
        // ER is a metric; spot-check the triangle inequality via CG solves.
        let g = generators::barabasi_albert(150, 4, 10).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let (a, b, c) = (3, 77, 120);
        let rab = solver.effective_resistance(a, b);
        let rbc = solver.effective_resistance(b, c);
        let rac = solver.effective_resistance(a, c);
        assert!(rac <= rab + rbc + 1e-9);
    }
}
