//! Dense vector helpers.
//!
//! These are the handful of BLAS-1 style kernels the estimators need, plus
//! the order statistics `max1`/`max2` that appear in the ψ bound of AMC
//! (Eq. (9) of the paper) and the `min` of Lemma 3.3.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Largest element of a non-empty slice (`max1(x)` in the paper's notation).
#[inline]
pub fn max1(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Second-largest element of a slice with at least two entries
/// (`max2(x)` in the paper's notation: the 2nd largest *value*, counting
/// duplicates separately — so `max2([5, 5, 1]) = 5`).
#[inline]
pub fn max2(x: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &v in x {
        if v > best {
            second = best;
            best = v;
        } else if v > second {
            second = v;
        }
    }
    second
}

/// Smallest element of a non-empty slice (`min(x)` in the paper's notation).
#[inline]
pub fn min(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Sum of all elements.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// The standard basis vector `e_i` of length `n`.
pub fn unit(n: usize, i: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[i] = 1.0;
    v
}

/// Projects `x` onto the orthogonal complement of the all-ones vector,
/// i.e. subtracts the mean. The Laplacian is singular exactly along `1`, so
/// CG iterates are kept in `1⊥` with this projection.
pub fn remove_mean(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = sum(x) / x.len() as f64;
    for xi in x {
        *xi -= mean;
    }
}

/// Maximum absolute difference between two vectors (`‖a − b‖_∞`).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, -0.5]);
    }

    #[test]
    fn order_statistics() {
        let x = [0.3, 0.7, 0.1, 0.7, 0.5];
        assert_eq!(max1(&x), 0.7);
        assert_eq!(max2(&x), 0.7, "duplicates count separately");
        assert_eq!(min(&x), 0.1);
        let y = [2.0, 1.0];
        assert_eq!(max2(&y), 1.0);
    }

    #[test]
    fn unit_vector() {
        let e = unit(4, 2);
        assert_eq!(e, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn remove_mean_centres() {
        let mut x = vec![1.0, 2.0, 3.0, 6.0];
        remove_mean(&mut x);
        assert!(sum(&x).abs() < 1e-12);
        assert!((x[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
