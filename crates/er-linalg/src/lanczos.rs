//! Lanczos iteration for extreme eigenvalues of symmetric operators.
//!
//! The refined walk length of Theorem 3.1 (Eq. (6)) and Peng et al.'s length
//! (Eq. (5)) both need `λ = max{|λ₂|, |λₙ|}`, the second-largest-magnitude
//! eigenvalue of the transition matrix `P`. The paper computes it once per
//! graph with ARPACK; we substitute a Lanczos iteration with full
//! reorthogonalization applied to the symmetric normalised adjacency
//! `N = D^{-1/2} A D^{-1/2}` (similar to `P`, hence the same spectrum),
//! after deflating the known Perron pair `(1, φ₁)` so the extreme Ritz values
//! converge to λ₂ and λₙ instead of the trivial eigenvalue 1.
//!
//! For small graphs (n ≤ 256) the dense Jacobi eigendecomposition is used
//! instead, which is exact and fast at that size.

use crate::dense::DenseMatrix;
use crate::ops::{DeflatedOp, LinearOperator, NormalizedAdjacencyOp};
use crate::vector;
use er_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// Ritz values (approximate eigenvalues), sorted in descending order.
    pub ritz_values: Vec<f64>,
    /// Number of Lanczos iterations actually performed.
    pub iterations: usize,
    /// Whether the Krylov space became invariant (β ≈ 0) before `max_iter`.
    pub invariant_subspace: bool,
}

impl LanczosResult {
    /// Largest Ritz value.
    pub fn max(&self) -> f64 {
        self.ritz_values.first().copied().unwrap_or(0.0)
    }

    /// Smallest Ritz value.
    pub fn min(&self) -> f64 {
        self.ritz_values.last().copied().unwrap_or(0.0)
    }
}

/// Runs the Lanczos iteration with full reorthogonalization on a symmetric
/// operator and returns the Ritz values of the resulting tridiagonal matrix.
///
/// `max_iter` bounds the Krylov dimension; `seed` fixes the random start
/// vector so results are reproducible.
pub fn lanczos<Op: LinearOperator>(op: &Op, max_iter: usize, seed: u64) -> LanczosResult {
    let q = seeded_start(op.dim(), seed);
    lanczos_core(op, max_iter, q, false).0
}

/// Like [`lanczos`], but takes an optional warm-start vector and returns a
/// Ritz vector alongside the result, for warm-starting the *next* run.
///
/// `start` is used (normalised) when it has the right dimension and a
/// nonzero norm; otherwise the seeded random start of [`lanczos`] is used.
/// The returned vector is the normalised sum of the extreme Ritz vectors
/// (largest + smallest Ritz value) — a Krylov start that re-converges to
/// both spectral extremes in a handful of iterations when the operator has
/// only drifted slightly, which is exactly the incremental-refresh situation
/// after a small mutation burst.
pub fn lanczos_with_start<Op: LinearOperator>(
    op: &Op,
    max_iter: usize,
    seed: u64,
    start: Option<&[f64]>,
) -> (LanczosResult, Option<Vec<f64>>) {
    let n = op.dim();
    let q = match start {
        Some(s) if s.len() == n && vector::norm2(s) > 1e-12 => {
            let mut q = s.to_vec();
            let norm = vector::norm2(&q);
            vector::scale(1.0 / norm, &mut q);
            q
        }
        _ => seeded_start(n, seed),
    };
    lanczos_core(op, max_iter, q, true)
}

/// The reproducible random start vector shared by the cold and warm drivers.
fn seeded_start(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let norm = vector::norm2(&q);
    vector::scale(1.0 / norm, &mut q);
    q
}

fn lanczos_core<Op: LinearOperator>(
    op: &Op,
    max_iter: usize,
    mut q: Vec<f64>,
    want_ritz_vector: bool,
) -> (LanczosResult, Option<Vec<f64>>) {
    let n = op.dim();
    let k_max = max_iter.min(n);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k_max);
    let mut alphas: Vec<f64> = Vec::with_capacity(k_max);
    let mut betas: Vec<f64> = Vec::with_capacity(k_max);
    let mut invariant = false;

    let mut q_prev: Vec<f64> = vec![0.0; n];
    let mut beta_prev = 0.0_f64;

    for _ in 0..k_max {
        basis.push(q.clone());
        let mut w = op.apply_vec(&q);
        // w -= beta_prev * q_prev
        vector::axpy(-beta_prev, &q_prev, &mut w);
        let alpha = vector::dot(&q, &w);
        vector::axpy(-alpha, &q, &mut w);
        // Full reorthogonalization against every stored basis vector. O(k·n)
        // per step but rock-solid against the loss of orthogonality that
        // plain Lanczos suffers, and cheap at the Krylov sizes we use.
        for b in &basis {
            let proj = vector::dot(b, &w);
            vector::axpy(-proj, b, &mut w);
        }
        alphas.push(alpha);
        let beta = vector::norm2(&w);
        if beta < 1e-12 {
            invariant = true;
            break;
        }
        betas.push(beta);
        q_prev = std::mem::replace(&mut q, w);
        vector::scale(1.0 / beta, &mut q);
        beta_prev = beta;
    }

    // Eigenvalues of the k×k symmetric tridiagonal matrix via dense Jacobi
    // (k is small, ≤ max_iter).
    let k = alphas.len();
    let mut t = DenseMatrix::zeros(k);
    for i in 0..k {
        t.set(i, i, alphas[i]);
        if i + 1 < k {
            t.set(i, i + 1, betas[i]);
            t.set(i + 1, i, betas[i]);
        }
    }
    let (ritz_values, tridiag_vectors) = t.symmetric_eigen();
    // Ritz vector for a tridiagonal eigenpair (θ, s): y = Σ_i basis[i]·s(i).
    // The warm-start vector combines the extreme pairs so the next Krylov
    // space reaches both ends of the spectrum immediately.
    let ritz_vector = if want_ritz_vector && k > 0 {
        let mut y = vec![0.0; n];
        for (i, b) in basis.iter().enumerate() {
            let coeff = tridiag_vectors.get(i, 0) + tridiag_vectors.get(i, k - 1);
            vector::axpy(coeff, b, &mut y);
        }
        let norm = vector::norm2(&y);
        if norm > 1e-12 {
            vector::scale(1.0 / norm, &mut y);
            Some(y)
        } else {
            None
        }
    } else {
        None
    };
    (
        LanczosResult {
            ritz_values,
            iterations: k,
            invariant_subspace: invariant,
        },
        ritz_vector,
    )
}

/// Spectral bounds of the random-walk transition matrix `P` of a graph:
/// returns `(λ₂, λₙ)`, the second-largest and the smallest eigenvalue.
///
/// This is the preprocessing step of Section 3.1 in the paper; the caller
/// derives `λ = max{|λ₂|, |λₙ|}` and plugs it into Eq. (5) or Eq. (6).
pub fn spectral_bounds(g: &Graph, max_iter: usize, seed: u64) -> (f64, f64) {
    let n = g.num_nodes();
    if n <= 256 {
        // Exact dense path for small graphs: eigenvalues of N.
        let mut nmat = DenseMatrix::zeros(n);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let w = 1.0 / ((g.degree(u) as f64).sqrt() * (g.degree(v) as f64).sqrt());
                nmat.set(u, v, w);
            }
        }
        let (vals, _) = nmat.symmetric_eigen();
        let lambda2 = vals.get(1).copied().unwrap_or(0.0);
        let lambdan = vals.last().copied().unwrap_or(0.0);
        return (lambda2, lambdan);
    }
    let op = NormalizedAdjacencyOp::new(g);
    let phi = op.perron_vector();
    let deflated = DeflatedOp::new(&op, phi, 1.0);
    let res = lanczos(&deflated, max_iter, seed);
    (res.max().min(1.0), res.min().max(-1.0))
}

/// Warm-startable variant of [`spectral_bounds`]: returns the `(λ₂, λₙ)`
/// bounds plus a Ritz vector for warm-starting the next call.
///
/// With `start = None` and the same `max_iter`, the bounds are identical to
/// [`spectral_bounds`] (same seeded start, same iteration). With a `start`
/// carried over from the previous call on a slightly-mutated graph, a much
/// smaller `max_iter` (a third of the cold budget) reaches the same accuracy
/// — this is how the dynamic index refreshes λ after a mutation burst
/// without paying 120 cold iterations. On the dense exact path (n ≤ 256)
/// there is no iteration to warm, so the returned vector is `None`.
pub fn spectral_bounds_warm(
    g: &Graph,
    max_iter: usize,
    seed: u64,
    start: Option<&[f64]>,
) -> ((f64, f64), Option<Vec<f64>>) {
    let n = g.num_nodes();
    if n <= 256 {
        return (spectral_bounds(g, max_iter, seed), None);
    }
    let op = NormalizedAdjacencyOp::new(g);
    let phi = op.perron_vector();
    let deflated = DeflatedOp::new(&op, phi, 1.0);
    let (res, ritz_vector) = lanczos_with_start(&deflated, max_iter, seed, start);
    ((res.max().min(1.0), res.min().max(-1.0)), ritz_vector)
}

/// `λ = max{|λ₂|, |λₙ|}` for a graph, clamped away from 1 for numerical
/// safety (a value of exactly 1 would make the walk lengths of Eq. (5)/(6)
/// infinite; connected non-bipartite graphs always have λ < 1).
pub fn lambda_max_magnitude(g: &Graph, max_iter: usize, seed: u64) -> f64 {
    let (l2, ln) = spectral_bounds(g, max_iter, seed);
    let lambda = l2.abs().max(ln.abs());
    lambda.clamp(1e-9, 1.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn lanczos_finds_extremes_of_dense_matrix() {
        // Use the Laplacian of K_6: eigenvalues {0, 6, 6, 6, 6, 6}.
        let g = generators::complete(6).unwrap();
        let l = crate::sparse::CsrMatrix::laplacian(&g);
        let res = lanczos(&l, 6, 1);
        assert!((res.max() - 6.0).abs() < 1e-6, "max ritz {}", res.max());
        assert!(res.min().abs() < 1e-6, "min ritz {}", res.min());
    }

    #[test]
    fn spectral_bounds_of_complete_graph() {
        // P of K_n has eigenvalues 1 and -1/(n-1) (with multiplicity n-1).
        let g = generators::complete(10).unwrap();
        let (l2, ln) = spectral_bounds(&g, 30, 2);
        assert!((l2 - (-1.0 / 9.0)).abs() < 1e-8, "lambda2 {l2}");
        assert!((ln - (-1.0 / 9.0)).abs() < 1e-8, "lambdan {ln}");
    }

    #[test]
    fn spectral_bounds_of_cycle() {
        // P of the n-cycle has eigenvalues cos(2 pi k / n).
        let n = 11;
        let g = generators::cycle(n).unwrap();
        let (l2, ln) = spectral_bounds(&g, 30, 3);
        let expected_l2 = (2.0 * std::f64::consts::PI / n as f64).cos();
        let expected_ln = (2.0 * std::f64::consts::PI * 5.0 / n as f64).cos();
        assert!((l2 - expected_l2).abs() < 1e-8, "{l2} vs {expected_l2}");
        assert!((ln - expected_ln).abs() < 1e-8, "{ln} vs {expected_ln}");
    }

    #[test]
    fn lanczos_path_matches_dense_path_on_midsize_graph() {
        // Force the Lanczos path by checking a graph just above the dense
        // cutoff against the dense Jacobi result computed here directly.
        let g = generators::social_network_like(300, 8.0, 9).unwrap();
        let n = g.num_nodes();
        let mut nmat = DenseMatrix::zeros(n);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let w = 1.0 / ((g.degree(u) as f64).sqrt() * (g.degree(v) as f64).sqrt());
                nmat.set(u, v, w);
            }
        }
        let (vals, _) = nmat.symmetric_eigen();
        let dense_l2 = vals[1];
        let dense_ln = *vals.last().unwrap();
        let (l2, ln) = spectral_bounds(&g, 120, 7);
        assert!(
            (l2 - dense_l2).abs() < 1e-4,
            "lanczos {l2} dense {dense_l2}"
        );
        assert!(
            (ln - dense_ln).abs() < 1e-4,
            "lanczos {ln} dense {dense_ln}"
        );
    }

    #[test]
    fn lambda_is_strictly_inside_unit_interval() {
        for seed in 0..3 {
            let g = generators::barabasi_albert(400, 3, seed).unwrap();
            let lambda = lambda_max_magnitude(&g, 80, seed);
            assert!(lambda > 0.0 && lambda < 1.0, "lambda {lambda}");
        }
    }

    #[test]
    fn warm_variant_without_start_matches_cold_bounds_bitwise() {
        let g = generators::barabasi_albert(500, 3, 13).unwrap();
        let cold = spectral_bounds(&g, 60, 21);
        let (warm, ritz) = spectral_bounds_warm(&g, 60, 21, None);
        assert_eq!(cold.0.to_bits(), warm.0.to_bits());
        assert_eq!(cold.1.to_bits(), warm.1.to_bits());
        assert!(ritz.is_some(), "large graph returns a warm-start vector");
    }

    #[test]
    fn warm_start_reaches_cold_accuracy_with_a_third_of_the_iterations() {
        let g = generators::social_network_like(600, 8.0, 5).unwrap();
        let (reference, ritz) = spectral_bounds_warm(&g, 120, 0xd1a, None);
        let start = ritz.expect("warm vector");
        // Re-run on the same graph with a much smaller budget from the warm
        // start: the extremes are already in the start vector's Krylov space.
        let (warm, _) = spectral_bounds_warm(&g, 40, 0xd1a, Some(&start));
        assert!(
            (warm.0 - reference.0).abs() < 1e-6,
            "{} vs {}",
            warm.0,
            reference.0
        );
        assert!(
            (warm.1 - reference.1).abs() < 1e-6,
            "{} vs {}",
            warm.1,
            reference.1
        );
        // And a cold run at the same reduced budget is (weakly) worse.
        let cold_small = spectral_bounds(&g, 40, 0xd1a);
        assert!((warm.0 - reference.0).abs() <= (cold_small.0 - reference.0).abs() + 1e-9);
    }

    #[test]
    fn dense_path_returns_no_warm_vector() {
        let g = generators::complete(10).unwrap();
        let (bounds, ritz) = spectral_bounds_warm(&g, 30, 2, None);
        assert!(ritz.is_none());
        assert!((bounds.0 - (-1.0 / 9.0)).abs() < 1e-8);
    }

    #[test]
    fn lanczos_reports_invariant_subspace_on_tiny_rank() {
        // The star graph's normalised adjacency has rank 2; starting Lanczos
        // on it should terminate early with an invariant subspace.
        let g = generators::star(50).unwrap();
        let op = NormalizedAdjacencyOp::new(&g);
        let res = lanczos(&op, 40, 5);
        assert!(res.iterations < 40);
        assert!(res.invariant_subspace);
        // extreme eigenvalues of N for the star are +1 and -1
        assert!((res.max() - 1.0).abs() < 1e-8);
        assert!((res.min() + 1.0).abs() < 1e-8);
    }
}
