//! Small dense matrices, symmetric eigendecomposition and the Moore–Penrose
//! pseudo-inverse.
//!
//! The EXACT baseline of the paper (Definition 2.1) computes
//! `r(s, t) = (e_s − e_t) L† (e_s − e_t)ᵀ` from the pseudo-inverse of the
//! Laplacian. Materialising `L†` needs O(n²) memory and O(n³) time, which is
//! exactly why the paper reports EXACT running out of memory beyond the
//! smallest dataset — the harness reproduces that behaviour by capping the
//! size this module accepts. The eigendecomposition uses the cyclic Jacobi
//! method: slower than LAPACK but dependency-free, simple to verify and
//! perfectly adequate for n ≤ a few thousand.

use er_graph::Graph;
use std::fmt;

/// A dense, row-major `n × n` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n.min(8) {
            for j in 0..self.n.min(8) {
                write!(f, "{:9.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl DenseMatrix {
    /// The `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// The dense combinatorial Laplacian `D − A` of a graph.
    pub fn laplacian(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n);
        for v in g.nodes() {
            m.set(v, v, g.degree(v) as f64);
            for &u in g.neighbors(v) {
                m.set(v, u, -1.0);
            }
        }
        m
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
    }

    /// Matrix–vector product.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j) * x[j]).sum())
            .collect()
    }

    /// Matrix–matrix product `self * other`.
    pub fn mat_mul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = DenseMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += aik * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Maximum absolute off-diagonal entry (Jacobi convergence criterion).
    fn max_off_diagonal(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    best = best.max(self.get(i, j).abs());
                }
            }
        }
        best
    }

    /// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
    ///
    /// Returns `(eigenvalues, eigenvectors)` where column `k` of the returned
    /// matrix is the eigenvector for `eigenvalues[k]`. Eigenvalues are sorted
    /// in descending order. The input must be symmetric (checked loosely in
    /// debug builds).
    pub fn symmetric_eigen(&self) -> (Vec<f64>, DenseMatrix) {
        let n = self.n;
        let mut a = self.clone();
        let mut v = DenseMatrix::identity(n);
        let max_sweeps = 100;
        let tol = 1e-12;
        for _ in 0..max_sweeps {
            if a.max_off_diagonal() < tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation J(p, q, θ) on both sides of A and
                    // accumulate it into V.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|k| (a.get(k, k), k)).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        let eigenvalues: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
        let mut vectors = DenseMatrix::zeros(n);
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for row in 0..n {
                vectors.set(row, new_col, v.get(row, old_col));
            }
        }
        (eigenvalues, vectors)
    }

    /// Moore–Penrose pseudo-inverse of a symmetric matrix, computed from the
    /// eigendecomposition by inverting every eigenvalue above `tol` and
    /// zeroing the rest.
    pub fn pseudo_inverse(&self, tol: f64) -> DenseMatrix {
        let n = self.n;
        let (vals, vecs) = self.symmetric_eigen();
        let mut out = DenseMatrix::zeros(n);
        for (k, &val) in vals.iter().enumerate() {
            if val.abs() <= tol {
                continue;
            }
            let inv = 1.0 / val;
            for i in 0..n {
                let vik = vecs.get(i, k);
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += inv * vik * vecs.get(j, k);
                }
            }
        }
        out
    }

    /// Frobenius-norm distance to another matrix (testing helper).
    pub fn frobenius_distance(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn identity_and_matvec() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.mat_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(i.dim(), 3);
    }

    #[test]
    fn matmul_and_transpose() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 3.0);
        a.set(1, 1, 4.0);
        let at = a.transpose();
        assert_eq!(at.get(0, 1), 3.0);
        let aa = a.mat_mul(&at);
        // [1 2; 3 4] * [1 3; 2 4] = [5 11; 11 25]
        assert_eq!(aa.get(0, 0), 5.0);
        assert_eq!(aa.get(0, 1), 11.0);
        assert_eq!(aa.get(1, 1), 25.0);
    }

    #[test]
    fn jacobi_eigenvalues_of_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 2.0);
        let (vals, vecs) = m.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Eigenvector check: M v = lambda v
        for (k, &val) in vals.iter().enumerate() {
            let v: Vec<f64> = (0..2).map(|i| vecs.get(i, k)).collect();
            let mv = m.mat_vec(&v);
            for i in 0..2 {
                assert!((mv[i] - val * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn laplacian_eigenvalues_of_complete_graph() {
        // L of K_n has eigenvalues {0, n, n, ..., n}.
        let g = generators::complete(5).unwrap();
        let l = DenseMatrix::laplacian(&g);
        let (vals, _) = l.symmetric_eigen();
        assert!((vals[0] - 5.0).abs() < 1e-9);
        assert!((vals[3] - 5.0).abs() < 1e-9);
        assert!(vals[4].abs() < 1e-9);
    }

    #[test]
    fn pseudo_inverse_satisfies_penrose_identity() {
        let g = generators::social_network_like(30, 6.0, 3).unwrap();
        let l = DenseMatrix::laplacian(&g);
        let pinv = l.pseudo_inverse(1e-9);
        // L L+ L == L
        let recon = l.mat_mul(&pinv).mat_mul(&l);
        assert!(recon.frobenius_distance(&l) < 1e-6);
        // L+ L L+ == L+
        let recon2 = pinv.mat_mul(&l).mat_mul(&pinv);
        assert!(recon2.frobenius_distance(&pinv) < 1e-6);
    }

    #[test]
    fn exact_er_on_path_via_pseudo_inverse() {
        // On the path graph r(s, t) = |s - t| exactly.
        let g = generators::path(6).unwrap();
        let pinv = DenseMatrix::laplacian(&g).pseudo_inverse(1e-9);
        let n = g.num_nodes();
        for s in 0..n {
            for t in 0..n {
                let mut x = vec![0.0; n];
                x[s] += 1.0;
                x[t] -= 1.0;
                let y = pinv.mat_vec(&x);
                let r: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                let expected = (s as f64 - t as f64).abs();
                assert!(
                    (r - expected).abs() < 1e-8,
                    "r({s},{t}) = {r}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn debug_format_does_not_panic() {
        let m = DenseMatrix::identity(3);
        let s = format!("{m:?}");
        assert!(s.contains("DenseMatrix(3x3)"));
    }
}
