//! `er` — command-line interface to the effective-resistance workspace.
//!
//! The binary wires three pieces together: flag parsing ([`args`]), graph
//! acquisition ([`input`], SNAP edge lists or synthetic benchmark graphs) and
//! the subcommand implementations ([`commands`]), which are plain functions
//! over `&Graph` so they are unit-tested without process spawning.
//!
//! ```text
//! er query 17 905 --graph data/facebook.txt --epsilon 0.05 --check
//! er critical --graph community:2000:12 --top 20
//! er sparsify --graph social:3000:20 --scores geer --quality-epsilon 0.3
//! er cluster --graph community:1000:10 --k 4 --stability
//! ```

mod args;
mod commands;
mod input;

use args::ParsedArgs;
use input::GraphSource;
use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    let command = parsed.command.clone().unwrap_or_else(|| "help".to_string());
    if command == "help" || parsed.is_set("help") {
        println!("{}", commands::usage());
        return ExitCode::SUCCESS;
    }

    let source = GraphSource::from_flag(&parsed.flag_str("graph", "social:2000"));
    let (graph, description) = match source.load() {
        Ok(loaded) => loaded,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{description}");

    let result = match command.as_str() {
        "stats" => commands::stats(&graph, &parsed),
        "query" => commands::query(&graph, &parsed),
        "profile" => commands::profile(&graph, &parsed),
        "critical" => commands::critical(&graph, &parsed),
        "sparsify" => commands::sparsify(&graph, &parsed),
        "cluster" => commands::cluster(&graph, &parsed),
        "serve" => commands::serve(graph, &parsed),
        other => Err(format!(
            "unknown command '{other}'\n\n{}",
            commands::usage()
        )),
    };
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
