//! Minimal flag parsing for the `er` binary.
//!
//! The workspace deliberately avoids a CLI-parsing dependency (see DESIGN.md:
//! only the offline-approved numeric crates are used), so this module provides
//! the small amount of structure the subcommands need: `--flag value` pairs,
//! positional arguments and typed accessors with readable error messages.

use std::collections::HashMap;

/// Parsed command line: a subcommand, its positional arguments and its flags.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// The subcommand name (first non-flag argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` flags (a trailing flag with no value maps to "true").
    pub flags: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag name '--'".into());
                }
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                parsed.flags.insert(name.to_string(), value);
            } else if parsed.command.is_none() {
                parsed.command = Some(arg);
            } else {
                parsed.positional.push(arg);
            }
        }
        Ok(parsed)
    }

    /// String flag with a default.
    pub fn flag_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Typed flag with a default.
    pub fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("flag --{name}: '{raw}' is not a valid value")),
        }
    }

    /// Whether a boolean flag was passed.
    pub fn is_set(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> ParsedArgs {
        ParsedArgs::parse(line.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn subcommand_positionals_and_flags() {
        let args = parse("query data.txt --epsilon 0.05 --pairs 10 extra --verbose");
        assert_eq!(args.command.as_deref(), Some("query"));
        assert_eq!(
            args.positional,
            vec!["data.txt".to_string(), "extra".to_string()]
        );
        assert_eq!(args.flag("epsilon", 0.1).unwrap(), 0.05);
        assert_eq!(args.flag("pairs", 0usize).unwrap(), 10);
        assert!(args.is_set("verbose"));
        assert!(!args.is_set("quiet"));
    }

    #[test]
    fn defaults_and_required_flags() {
        let args = parse("stats");
        assert_eq!(args.flag("epsilon", 0.1).unwrap(), 0.1);
        assert_eq!(args.flag_str("graph", "synthetic"), "synthetic");
        assert!(!args.is_set("input"));
    }

    #[test]
    fn invalid_values_are_reported() {
        let args = parse("query --epsilon abc");
        let err = args.flag("epsilon", 0.1_f64).unwrap_err();
        assert!(err.contains("epsilon"));
        assert!(ParsedArgs::parse(vec!["--".to_string()]).is_err());
    }
}
