//! Implementation of the `er` subcommands.
//!
//! Each command takes the already-loaded graph plus its parsed flags and
//! returns the report it would print, so the command logic is unit-testable
//! without spawning processes or capturing stdout.

use crate::args::ParsedArgs;
use er_apps::{
    adjusted_rand_index, edge_criticality, modularity, ClusteringConfig, ResistanceClustering,
};
use er_core::{ApproxConfig, GraphContext, GroundTruth, GroundTruthMethod};
use er_graph::{Graph, GraphStats, NodePairQuerySet};
use er_service::{Accuracy, BackendChoice, Query, Request, ResistanceService};
use er_sparsify::{sample_sparsifier, EdgeScores, QualityEvaluator, SampleBudget, ScoreMethod};
use std::fmt::Write as _;

/// Shared estimator configuration from the common flags.
///
/// The defaults are [`ApproxConfig::default`] — in particular the seed, so
/// the CLI, the library and the benches all start from the same RNG state
/// unless `--seed` is passed.
pub fn approx_config(args: &ParsedArgs) -> Result<ApproxConfig, String> {
    let defaults = ApproxConfig::default();
    let config = ApproxConfig {
        epsilon: args.flag("epsilon", defaults.epsilon)?,
        delta: args.flag("delta", defaults.delta)?,
        tau: args.flag("tau", defaults.tau)?,
        seed: args.flag("seed", defaults.seed)?,
        threads: args.flag("threads", defaults.threads)?,
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// The [`Accuracy`] requested by the common flags: `--exact`, or
/// `--walk-budget N`, or the ε/δ of the estimator configuration.
pub fn accuracy_from(args: &ParsedArgs, config: &ApproxConfig) -> Result<Accuracy, String> {
    if args.is_set("exact") {
        return Ok(Accuracy::Exact);
    }
    let budget: u64 = args.flag("walk-budget", 0u64)?;
    if budget > 0 {
        return Ok(Accuracy::WalkBudget(budget));
    }
    Ok(Accuracy::Epsilon {
        eps: config.epsilon,
        delta: config.delta,
    })
}

/// Builds the serving plane for the common `--shards N` flag: the ordinary
/// single service at `N <= 1`, the partitioned [`er_shard::ShardedService`]
/// (same front-door interface, plus a router handle for stats) otherwise.
fn service_from(
    graph: &Graph,
    config: ApproxConfig,
    args: &ParsedArgs,
) -> Result<
    (
        ResistanceService,
        Option<std::sync::Arc<er_shard::ShardRouter>>,
    ),
    String,
> {
    let shards: usize = args.flag("shards", 1usize)?;
    if shards <= 1 {
        let service = ResistanceService::with_config(graph, config).map_err(|e| e.to_string())?;
        return Ok((service, None));
    }
    let shard_config = er_shard::ShardConfig::with_shards(shards).with_seed(config.seed);
    let sharded =
        er_shard::ShardedService::build(graph, shard_config, config).map_err(|e| e.to_string())?;
    let router = sharded.router().clone();
    Ok((sharded.into_service(), Some(router)))
}

/// The `--backend` override, if any.
pub fn backend_from(args: &ParsedArgs) -> Result<Option<BackendChoice>, String> {
    match args.flags.get("backend") {
        None => Ok(None),
        Some(raw) => BackendChoice::parse(raw)
            .map(Some)
            .ok_or_else(|| format!("unknown --backend '{raw}'")),
    }
}

/// `er stats`: structural and spectral summary of the graph.
pub fn stats(graph: &Graph, _args: &ParsedArgs) -> Result<String, String> {
    let stats = GraphStats::compute(graph);
    let context = GraphContext::preprocess(graph).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{stats:#?}");
    let _ = writeln!(
        out,
        "spectral bound lambda = max(|lambda_2|, |lambda_n|) = {:.6}",
        context.lambda()
    );
    let _ = writeln!(
        out,
        "  (lambda_2 = {:.6}, lambda_n = {:.6})",
        context.lambda2(),
        context.lambda_n()
    );
    Ok(out)
}

/// `er query s t [more pairs…]`: PER queries through the unified
/// [`ResistanceService`] — the planner picks the backend (override with
/// `--backend`, request exact answers with `--exact` or budgeted sampling
/// with `--walk-budget N`), and the report names the backend used and
/// itemises its cost. `--check` cross-checks against the exact solver.
pub fn query(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    if let Some(path) = args.flags.get("stream") {
        return query_stream(graph, args, path);
    }
    let config = approx_config(args)?;
    let accuracy = accuracy_from(args, &config)?;
    let backend = backend_from(args)?;
    let (service, router) = service_from(graph, config, args)?;

    // Pairs come from positionals ("s t s t …") or --random N.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let positional: Vec<usize> = args
        .positional
        .iter()
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("'{p}' is not a node id"))
        })
        .collect::<Result<_, _>>()?;
    for chunk in positional.chunks(2) {
        if let [s, t] = chunk {
            pairs.push((*s, *t));
        } else {
            return Err("query expects an even number of node ids (s t pairs)".into());
        }
    }
    let random: usize = args.flag("random", 0usize)?;
    if random > 0 {
        let set = NodePairQuerySet::uniform(graph, random, config.seed);
        pairs.extend(set.pairs().iter().map(|p| (p.s, p.t)));
    }
    if pairs.is_empty() {
        return Err("no query pairs: pass node ids or --random N".into());
    }

    // Edge-only backends (MC2, HAY) answer the edge-set shape; everything
    // else gets a batch.
    let query = match backend {
        Some(BackendChoice::Mc2) | Some(BackendChoice::Hay) => Query::edge_set(pairs.clone()),
        _ => Query::batch(pairs.clone()),
    };
    let request = Request {
        query,
        accuracy,
        backend,
    };
    let response = service.submit(&request).map_err(|e| e.to_string())?;

    let check = args.is_set("check");
    let truth = GroundTruth::with_method(graph, GroundTruthMethod::LaplacianSolve);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>12}",
        "s",
        "t",
        "r'(s,t)",
        if check { "exact" } else { "" }
    );
    for (&(s, t), &value) in pairs.iter().zip(&response.values) {
        let exact = if check {
            format!("{:.6}", truth.resistance(s, t).map_err(|e| e.to_string())?)
        } else {
            String::new()
        };
        let _ = writeln!(out, "{s:>8} {t:>8} {value:>12.6} {exact:>12}");
    }
    let cost = response.cost;
    let _ = writeln!(
        out,
        "backend: {} | walks {} | walk-steps {} | matvec-ops {} | solver-its {} | trees {} | cache-hits {}",
        response.backend,
        cost.random_walks,
        cost.walk_steps,
        cost.matvec_ops,
        cost.solver_iterations,
        cost.spanning_trees,
        response.cache_hits
    );
    if let Some(router) = router {
        let stats = router.stats();
        let _ = writeln!(
            out,
            "shards: {} | intra {} | cross {} | escalated {} | edge-cut {}",
            router.num_shards(),
            stats.intra,
            stats.cross,
            stats.escalated,
            router.partition().edge_cut
        );
    }
    Ok(out)
}

/// `er query --stream <file>`: replays an edge-mutation/query trace through
/// the incremental [`er_service::DynamicResistanceService`].
///
/// Trace format, one op per line (`#` comments and blank lines skipped):
///
/// ```text
/// + u v    insert the undirected edge {u, v}
/// - u v    remove it
/// ? s t    query r(s, t) on the current graph
/// ```
///
/// Mutations between queries ride the Sherman–Morrison/overlay path (full
/// cold rebuild only every `--refresh-interval K` mutations, default 64);
/// the closing report splits the work into incremental vs full refreshes so
/// the savings over rebuild-per-burst are visible.
fn query_stream(graph: &Graph, args: &ParsedArgs, path: &str) -> Result<String, String> {
    let config = approx_config(args)?;
    let accuracy = accuracy_from(args, &config)?;
    let interval: u64 = args.flag("refresh-interval", 64u64)?;
    let trace = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read stream trace '{path}': {e}"))?;
    let dynamic = er_service::DynamicResistanceService::from_graph(graph, config)
        .with_refresh_interval(interval);
    let mut out = String::new();
    let (mut inserts, mut deletes, mut queries) = (0u64, 0u64, 0u64);
    let _ = writeln!(out, "{:>6} {:>8} {:>8} {:>12}", "op", "s", "t", "r'(s,t)");
    for (lineno, raw) in trace.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line");
        let mut node = |what: &str| -> Result<usize, String> {
            parts
                .next()
                .ok_or_else(|| format!("line {}: missing {what} node id", lineno + 1))?
                .parse::<usize>()
                .map_err(|_| format!("line {}: {what} is not a node id", lineno + 1))
        };
        let u = node("first")?;
        let v = node("second")?;
        match op {
            "+" | "insert" => {
                dynamic.insert_edge(u, v).map_err(|e| e.to_string())?;
                inserts += 1;
            }
            "-" | "remove" | "delete" => {
                dynamic.remove_edge(u, v).map_err(|e| e.to_string())?;
                deletes += 1;
            }
            "?" | "query" => {
                let response = dynamic
                    .submit(&Request::new(Query::pair(u, v)).with_accuracy(accuracy))
                    .map_err(|e| e.to_string())?;
                queries += 1;
                let _ = writeln!(out, "{:>6} {u:>8} {v:>8} {:>12.6}", "?", response.value());
            }
            other => {
                return Err(format!(
                    "line {}: unknown op '{other}' (use + / - / ?)",
                    lineno + 1
                ))
            }
        }
    }
    let _ = writeln!(
        out,
        "stream: {} mutations ({inserts} inserts, {deletes} deletes), {queries} queries",
        inserts + deletes
    );
    let _ = writeln!(
        out,
        "refreshes: snapshot {} ({} full + {} incremental) | service {} | sm-updates {} | cg-fallbacks {}",
        dynamic.snapshot_rebuilds(),
        dynamic.snapshot_full_rebuilds(),
        dynamic.incremental_refreshes(),
        dynamic.service_refreshes(),
        dynamic.sm_updates(),
        dynamic.cg_fallbacks()
    );
    Ok(out)
}

/// `er serve`: runs the HTTP/1.1 front end over a [`er_service::ResistanceServer`]
/// until the process is killed (or the listener fails to bind).
///
/// The listen address is announced on stdout as `listening on <addr>` so
/// scripts (and the CI smoke step) can scrape the bound port when `--addr`
/// asked for port 0.
pub fn serve(graph: Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let (service, router) = service_from(&graph, config, args)?;
    if let Some(router) = &router {
        println!(
            "sharded: {} shards, edge cut {}",
            router.num_shards(),
            router.partition().edge_cut
        );
    }
    let server_config = er_service::ServerConfig {
        workers: args.flag("workers", 0usize)?,
        queue_depth: args.flag("queue-depth", 1024usize)?,
        ..er_service::ServerConfig::default()
    };
    let handle = er_service::ResistanceServer::spawn(service, server_config);
    let http_config = er_http::HttpConfig {
        addr: args.flag_str("addr", "127.0.0.1:7411"),
        max_connections: args.flag("max-connections", 256usize)?,
        read_timeout: std::time::Duration::from_millis(args.flag("read-timeout-ms", 10_000u64)?),
        ..er_http::HttpConfig::default()
    };
    let server = er_http::HttpServer::bind(handle, http_config)
        .map_err(|e| format!("failed to bind listener: {e}"))?;
    println!("listening on {}", server.local_addr());
    // Stdout may be piped (the CI smoke step scrapes the port) — flush so
    // the announcement isn't stuck in a block buffer while we park.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.join();
    Ok("server stopped".to_string())
}

/// `er critical`: the top `--top K` most critical (highest-resistance) edges.
pub fn critical(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let top: usize = args.flag("top", 10usize)?;
    let ranking = edge_criticality(graph, config).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>8} {:>12}", "u", "v", "r(u,v)");
    for edge in ranking.iter().take(top) {
        let _ = writeln!(out, "{:>8} {:>8} {:>12.4}", edge.u, edge.v, edge.resistance);
    }
    let bridges = ranking.iter().filter(|e| e.resistance > 0.99).count();
    let _ = writeln!(
        out,
        "\n{} of {} edges are (near-)bridges (r > 0.99)",
        bridges,
        ranking.len()
    );
    Ok(out)
}

/// `er sparsify`: build a spectral sparsifier and report its quality.
pub fn sparsify(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let method = match args.flag_str("scores", "geer").as_str() {
        "exact" => ScoreMethod::Exact,
        "geer" => ScoreMethod::Geer {
            epsilon: config.epsilon,
        },
        "trees" => ScoreMethod::SpanningTrees {
            samples: args.flag("samples", 200usize)?,
        },
        other => {
            return Err(format!(
                "unknown --scores method '{other}' (exact, geer, trees)"
            ))
        }
    };
    let quality_epsilon: f64 = args.flag("quality-epsilon", 0.4)?;
    let scores = EdgeScores::compute_with_threads(graph, method, config.seed, config.threads)
        .map_err(|e| e.to_string())?;
    let output = sample_sparsifier(
        graph,
        &scores,
        SampleBudget::SpectralGuarantee {
            epsilon: quality_epsilon,
            scale: 1.5,
        },
        config.seed,
    )
    .map_err(|e| e.to_string())?;
    let report = QualityEvaluator::new(graph).evaluate(&output.sparsifier);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edge scores:       {:?} (Foster total {:.1}, n-1 = {})",
        method,
        scores.total(),
        graph.num_nodes() - 1
    );
    let _ = writeln!(out, "samples drawn:     {}", output.samples_drawn);
    let _ = writeln!(
        out,
        "edges kept:        {} of {} ({:.1}%)",
        output.distinct_edges,
        graph.num_edges(),
        100.0 * output.keep_fraction(graph)
    );
    let _ = writeln!(out, "connected:         {}", report.connected);
    let _ = writeln!(
        out,
        "max quad. distortion: {:.3}",
        report.max_quadratic_distortion
    );
    let _ = writeln!(
        out,
        "max cut distortion:   {:.3}",
        report.max_cut_distortion
    );
    let _ = writeln!(
        out,
        "meets epsilon {:.2}:   {}",
        quality_epsilon,
        report.satisfies(quality_epsilon)
    );
    Ok(out)
}

/// `er cluster`: resistance k-medoids clustering.
pub fn cluster(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let k: usize = args.flag("k", 2usize)?;
    let config = ClusteringConfig {
        num_clusters: k,
        max_iterations: args.flag("iterations", 12usize)?,
        seed: args.flag("seed", ApproxConfig::default().seed)?,
        ..ClusteringConfig::default()
    };
    let result = ResistanceClustering::new(graph, config)
        .run()
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "clusters:   {}", result.num_clusters());
    let _ = writeln!(out, "sizes:      {:?}", result.sizes());
    let _ = writeln!(out, "medoids:    {:?}", result.medoids);
    let _ = writeln!(
        out,
        "iterations: {} (converged: {})",
        result.iterations, result.converged
    );
    let _ = writeln!(
        out,
        "modularity: {:.3}",
        modularity(graph, &result.assignments)
    );
    if args.is_set("print-assignments") {
        let _ = writeln!(out, "assignments: {:?}", result.assignments);
    }
    // Self-consistency diagnostic: clustering twice with different seeds
    // should give essentially the same partition on well-separated graphs.
    if args.is_set("stability") {
        let alt = ResistanceClustering::new(
            graph,
            ClusteringConfig {
                seed: config.seed.wrapping_add(1),
                ..config
            },
        )
        .run()
        .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "stability (ARI vs reseeded run): {:.3}",
            adjusted_rand_index(&result.assignments, &alt.assignments)
        );
    }
    Ok(out)
}

/// `er profile s`: single-source resistance profile and nearest neighbours.
pub fn profile(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let source: usize = match args.positional.first() {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("'{raw}' is not a node id"))?,
        None => return Err("profile expects a source node id".into()),
    };
    let top: usize = args.flag("top", 10usize)?;
    let config = approx_config(args)?;
    let service = ResistanceService::with_config(graph, config)
        .map_err(|e| e.to_string())?
        .with_landmarks(args.flag("landmarks", 8usize)?);
    let nearest = service
        .submit(&Request::new(Query::top_k(source, top)))
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "nearest {} nodes to {} by effective resistance:",
        nearest.nodes.len(),
        source
    );
    let _ = writeln!(out, "{:>8} {:>12} {:>8}", "node", "r", "degree");
    for (node, r) in nearest.nodes.iter().zip(&nearest.values) {
        let _ = writeln!(out, "{node:>8} {r:>12.4} {:>8}", graph.degree(*node));
    }
    let kirchhoff = service.kirchhoff_index().map_err(|e| e.to_string())?;
    let _ = writeln!(out, "\nKirchhoff index: {kirchhoff:.1}");
    // The landmark tier answers distant pairs in O(landmarks) with no
    // per-query solves — shown here against the service's planned answer.
    let far = graph.num_nodes() - 1;
    let planned = service
        .submit(&Request::new(Query::pair(source, far)))
        .map_err(|e| e.to_string())?;
    let landmark = service
        .submit(&Request::new(Query::pair(source, far)).with_backend(BackendChoice::Landmark))
        .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "r({source}, {far}) = {:.4} via {} | landmark point estimate {:.4}",
        planned.value(),
        planned.backend,
        landmark.value()
    );
    Ok(out)
}

/// The usage string printed by `er help` or on errors.
pub fn usage() -> String {
    "er — effective-resistance toolkit (SIGMOD 2023 reproduction)

USAGE:
    er <command> [args] [--graph <edge-list-path | family:n[:deg[:seed]]>] [flags]

COMMANDS:
    stats                       structural + spectral summary of the graph
    query <s> <t> […]           PER queries through the ResistanceService planner
                                (--random N, --check, --exact, --walk-budget N,
                                --backend geer|amc|smm|tp|tpc|rp|mc|mc2|hay|
                                          exact|exact-cg|index|landmark)
                                --stream <file> replays an edge-mutation/query
                                trace ('+ u v' | '- u v' | '? s t' per line)
                                through the incremental dynamic service and
                                reports incremental-vs-full refresh counters
                                (--refresh-interval K, default 64)
    profile <s>                 single-source resistance profile (--top K, --landmarks K)
    critical                    rank edges by criticality (--top K)
    sparsify                    build and evaluate a spectral sparsifier (--scores exact|geer|trees)
    cluster                     resistance k-medoids clustering (--k K, --stability)
    serve                       HTTP/1.1 front end over a ResistanceServer
                                (--addr HOST:PORT, --workers N, --queue-depth N,
                                --max-connections N, --read-timeout-ms N)
    help                        print this message

COMMON FLAGS:
    --graph <source>            edge-list file or synthetic spec (default: social:2000)
    --epsilon <f>               additive error ε (default 0.1)
    --delta <f>                 failure probability δ (default 0.01)
    --tau <n>                   AMC/GEER batches τ (default 5)
    --seed <n>                  RNG seed (default: the library default, 0x5eed)
    --threads <n>               worker threads for parallel sampling (default 0 = all
                                cores; results are identical at any thread count)
    --shards <n>                serve over an n-way graph partition (query/serve):
                                intra-shard answers are bit-identical to unsharded,
                                cross-shard answers come from sound boundary-landmark
                                intervals with exact escalation
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn args(line: &str) -> ParsedArgs {
        ParsedArgs::parse(line.split_whitespace().map(str::to_string)).unwrap()
    }

    fn graph() -> Graph {
        generators::community_social_network(240, 10.0, 2, 0.01, 5).unwrap()
    }

    #[test]
    fn stats_reports_structure_and_spectrum() {
        let out = stats(&graph(), &args("stats")).unwrap();
        assert!(out.contains("lambda"));
        assert!(out.contains("num_nodes") || out.contains("GraphStats"));
    }

    #[test]
    fn query_supports_pairs_random_and_check() {
        let g = graph();
        let out = query(&g, &args("query 0 120 5 17 --epsilon 0.2 --check")).unwrap();
        assert_eq!(
            out.lines().count(),
            4,
            "header, two result rows, backend/cost summary"
        );
        assert!(out.contains("exact"));
        assert!(out.contains("backend:"));
        let out = query(&g, &args("query --random 3")).unwrap();
        assert_eq!(out.lines().count(), 5);
        assert!(query(&g, &args("query 1")).is_err(), "odd number of ids");
        assert!(query(&g, &args("query")).is_err(), "no pairs at all");
    }

    #[test]
    fn query_routes_through_shards() {
        let g = graph();
        let out = query(&g, &args("query 0 120 5 17 --shards 2 --epsilon 0.2")).unwrap();
        assert!(out.contains("backend: SHARD"), "{out}");
        assert!(out.contains("shards: 2"), "{out}");
        assert!(out.contains("edge-cut"), "{out}");
        // An explicit backend override bypasses the router even when sharded.
        let forced = query(&g, &args("query 0 120 --shards 2 --backend geer")).unwrap();
        assert!(forced.contains("backend: GEER"), "{forced}");
    }

    #[test]
    fn query_backend_override_and_accuracy_flags() {
        let g = graph();
        // The 240-node test graph sits below the planner's exact threshold.
        let auto = query(&g, &args("query 0 120")).unwrap();
        assert!(auto.contains("backend: EXACT-CG"), "{auto}");
        let forced = query(&g, &args("query 0 120 --backend geer")).unwrap();
        assert!(forced.contains("backend: GEER"), "{forced}");
        let exact = query(&g, &args("query 0 120 --exact")).unwrap();
        assert!(exact.contains("backend: EXACT-CG"), "{exact}");
        let budgeted = query(
            &g,
            &args("query 0 120 --epsilon 0.5 --walk-budget 100000 --backend amc"),
        )
        .unwrap();
        assert!(budgeted.contains("backend: AMC"), "{budgeted}");
        // Edge-only backends are reachable when the queried pairs are edges.
        let (s, t) = g.edges().next().unwrap();
        let hay = query(
            &g,
            &args(&format!("query {s} {t} --epsilon 0.3 --backend hay")),
        )
        .unwrap();
        assert!(hay.contains("backend: HAY"), "{hay}");
        assert!(
            query(&g, &args("query 0 120 --backend hay")).is_err(),
            "(0, 120) is not an edge"
        );
        assert!(query(&g, &args("query 0 120 --backend bogus")).is_err());
    }

    #[test]
    fn query_stream_replays_a_trace_and_reports_refresh_counters() {
        let g = graph();
        let path = std::env::temp_dir().join("er_cli_stream_trace.txt");
        std::fs::write(
            &path,
            "# mutation/query trace\n\
             ? 0 120\n\
             + 0 120\n\
             + 5 17\n\
             ? 0 120\n\
             - 0 120\n\
             ? 0 120\n",
        )
        .unwrap();
        let line = format!("query --stream {} --epsilon 0.2", path.display());
        let out = query(&g, &args(&line)).unwrap();
        assert_eq!(out.matches('?').count(), 3, "three query rows: {out}");
        assert!(out.contains("stream: 3 mutations (2 inserts, 1 deletes), 3 queries"));
        assert!(out.contains("refreshes: snapshot"), "{out}");
        assert!(out.contains("incremental) | service"), "{out}");
        assert!(out.contains("sm-updates"), "{out}");
        // Unknown ops and unreadable traces are reported, not panicked on.
        std::fs::write(&path, "! 0 1\n").unwrap();
        assert!(query(&g, &args(&line)).is_err());
        let _ = std::fs::remove_file(&path);
        assert!(query(&g, &args(&line)).is_err(), "missing trace file");
    }

    #[test]
    fn critical_and_sparsify_produce_reports() {
        let g = graph();
        let out = critical(&g, &args("critical --top 5 --epsilon 0.2")).unwrap();
        assert!(out.lines().count() >= 7);
        let out = sparsify(&g, &args("sparsify --scores trees --samples 60")).unwrap();
        assert!(out.contains("edges kept"));
        assert!(
            out.contains("true"),
            "the sparsifier of a small graph stays connected: {out}"
        );
        assert!(sparsify(&g, &args("sparsify --scores bogus")).is_err());
    }

    #[test]
    fn cluster_recovers_two_communities() {
        let g = graph();
        let out = cluster(&g, &args("cluster --k 2 --stability")).unwrap();
        assert!(out.contains("clusters:   2"));
        assert!(out.contains("modularity"));
        assert!(out.contains("stability"));
    }

    #[test]
    fn profile_lists_nearest_nodes() {
        let g = graph();
        let out = profile(&g, &args("profile 3 --top 4 --landmarks 4")).unwrap();
        assert!(out.contains("nearest 4 nodes"));
        assert!(out.contains("Kirchhoff"));
        assert!(profile(&g, &args("profile")).is_err());
        assert!(profile(&g, &args("profile notanode")).is_err());
    }

    #[test]
    fn config_flags_are_validated() {
        assert!(approx_config(&args("query --epsilon 0")).is_err());
        assert!(approx_config(&args("query --tau 0")).is_err());
        let config = approx_config(&args("query --epsilon 0.05 --seed 9 --threads 2")).unwrap();
        assert_eq!(config.epsilon, 0.05);
        assert_eq!(config.seed, 9);
        assert_eq!(config.threads, 2);
        assert_eq!(
            approx_config(&args("query")).unwrap().threads,
            0,
            "default: all cores"
        );
    }

    #[test]
    fn default_seed_is_the_library_default() {
        // The CLI must not invent its own seed default: the single source of
        // truth is ApproxConfig::default().
        assert_eq!(
            approx_config(&args("query")).unwrap().seed,
            ApproxConfig::default().seed
        );
        assert_eq!(
            approx_config(&args("query")).unwrap(),
            ApproxConfig::default()
        );
    }

    #[test]
    fn accuracy_and_backend_flags_parse() {
        let config = ApproxConfig::default();
        assert_eq!(
            accuracy_from(&args("query --exact"), &config).unwrap(),
            Accuracy::Exact
        );
        assert_eq!(
            accuracy_from(&args("query --walk-budget 500"), &config).unwrap(),
            Accuracy::WalkBudget(500)
        );
        assert_eq!(
            accuracy_from(&args("query"), &config).unwrap(),
            Accuracy::Epsilon {
                eps: config.epsilon,
                delta: config.delta
            }
        );
        assert_eq!(
            backend_from(&args("query --backend index")).unwrap(),
            Some(BackendChoice::Index)
        );
        assert_eq!(backend_from(&args("query")).unwrap(), None);
        assert!(backend_from(&args("query --backend nope")).is_err());
    }
}
